"""Event-driven fast datapath (the ``fast`` engine).

See :mod:`repro.sim.fastcore.simulator` for the design contract: the fast
engine shares every authoritative object with the reference engine and only
skips work it can prove the reference loop would not do.
"""

from repro.sim.fastcore.simulator import FastSimulator

__all__ = ["FastSimulator"]
