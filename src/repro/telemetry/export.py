"""Telemetry exporters: JSONL event log and Chrome ``trace_event`` JSON.

Two on-disk formats carry a recorded run out of the process
(docs/TELEMETRY.md documents both schemas):

* ``repro.telemetry/v1`` — a JSONL event log.  Line 1 is a ``header``
  record (format tag, the producing spec, run cycle count); then, in
  deterministic order: ``sample`` records (the observer's metric samples),
  ``span`` records (closed :class:`~repro.telemetry.spans.SpinSpan`
  dicts), ``hop``/``deliver`` records (only under ``packet_traces``), and
  one final ``summary`` record (registry counter totals + histogram
  summaries).  This is the format ``repro-sim report`` consumes.
* ``repro.chrome-trace/v1`` — Chrome ``trace_event`` JSON (object form:
  ``{"traceEvents": [...], "metadata": {...}}``), loadable in Perfetto or
  ``chrome://tracing``.  One trace *clock tick equals one simulation
  cycle* (events use the ``ts``/``dur`` microsecond fields as cycle
  counts).  SPIN episodes and FROZEN residencies become complete
  (``ph="X"``) slices on one track per router; spins inside an episode
  become instant (``ph="i"``) events; metric samples become counter
  (``ph="C"``) tracks.

:func:`validate_chrome_trace` is a dependency-free structural validator
for the Chrome format (the container ships no ``jsonschema``); CI invokes
it via ``python -m repro.telemetry.export <trace.json>``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError

#: Format tag of the JSONL event log (header record ``format`` field).
JSONL_FORMAT = "repro.telemetry/v1"

#: Format tag of the Chrome trace (``metadata.format`` field).
CHROME_FORMAT = "repro.chrome-trace/v1"

#: Record types a ``repro.telemetry/v1`` log may contain.
RECORD_TYPES = ("header", "sample", "span", "hop", "deliver", "summary")

#: Chrome event phases this exporter emits (and the validator accepts).
CHROME_PHASES = ("X", "i", "C", "M")


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def build_records(observer, meta: Optional[Dict[str, object]] = None
                  ) -> List[Dict[str, object]]:
    """Serialize one finalized observer into JSONL-ready records.

    Record order is deterministic: header, samples (cycle order), spans
    (close order), hops (record order), summary.
    """
    header: Dict[str, object] = {
        "type": "header",
        "format": JSONL_FORMAT,
        "sample_interval": observer.config.sample_interval,
        "packet_traces": observer.config.packet_traces,
    }
    if meta:
        header.update(meta)
    records: List[Dict[str, object]] = [header]
    records.extend(observer.samples)
    for span in observer.spans:
        record = {"type": "span"}
        record.update(span.to_dict())
        records.append(record)
    for cycle, kind, uid, router, port in observer.hops:
        records.append({"type": kind, "cycle": cycle, "uid": uid,
                        "router": router, "port": port})
    records.append(summary_record(observer))
    return records


def summary_record(observer) -> Dict[str, object]:
    """The closing ``summary`` record: registry roll-up of the run."""
    registry = observer.registry
    histograms: Dict[str, object] = {}
    for family in registry.families("histogram"):
        table = registry.family("histogram", family)
        histograms[family] = {
            repr(key): histogram.to_dict()
            for key, histogram in sorted(table.items(),
                                         key=lambda item: repr(item[0]))
        }
    return {
        "type": "summary",
        "counters": registry.counter_totals(),
        "histograms": histograms,
        "samples": len(observer.samples),
        "spans": len(observer.spans),
        "hops": len(observer.hops),
    }


def write_jsonl(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Write records as one-JSON-object-per-line; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a ``repro.telemetry/v1`` log back; validates the header."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    "telemetry log line is not valid JSON",
                    path=path, line=lineno, error=str(exc)) from None
            if not isinstance(record, dict) or "type" not in record:
                raise ConfigurationError(
                    "telemetry log records must be objects with a 'type'",
                    path=path, line=lineno)
            records.append(record)
    if not records or records[0].get("type") != "header":
        raise ConfigurationError(
            "telemetry log must start with a header record", path=path)
    header_format = records[0].get("format")
    if header_format != JSONL_FORMAT:
        raise ConfigurationError(
            "unsupported telemetry log format",
            path=path, format=header_format, expected=JSONL_FORMAT)
    return records


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Convert JSONL records into a Chrome ``trace_event`` document.

    Tracks (pid 0): tid 0 carries network-wide counters; tid ``router+1``
    carries that router's SPIN slices.  ``ts`` and ``dur`` are cycles.
    """
    header = records[0] if records and records[0].get("type") == "header" \
        else {}
    events: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "repro network"}},
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
         "args": {"name": "network counters"}},
    ]
    named_tracks = set()
    for record in records:
        kind = record.get("type")
        if kind == "sample":
            events.append({
                "ph": "C", "name": "packets", "pid": 0, "tid": 0,
                "ts": record["cycle"],
                "args": {"in_flight": record["in_flight"],
                         "backlog": record["backlog"],
                         "frozen": record["frozen"]},
            })
            events.append({
                "ph": "C", "name": "window_deltas", "pid": 0, "tid": 0,
                "ts": record["cycle"],
                "args": {"injected": record["injected"],
                         "delivered": record["delivered"],
                         "lost": record["lost"]},
            })
        elif kind == "span":
            tid = int(record["router"]) + 1
            if tid not in named_tracks:
                named_tracks.add(tid)
                events.append({
                    "ph": "M", "name": "thread_name", "pid": 0,
                    "tid": tid,
                    "args": {"name": f"router {record['router']}"},
                })
            start = int(record.get("start_cycle") or 0)
            end = record.get("end_cycle")
            duration = max(0, int(end) - start) if end is not None else 0
            args = {key: record[key] for key in sorted(record)
                    if key not in ("type",)}
            events.append({
                "ph": "X", "name": str(record.get("kind", "span")),
                "cat": "spin", "pid": 0, "tid": tid,
                "ts": start, "dur": duration, "args": args,
            })
            for cycle in record.get("spin_cycles") or ():
                events.append({
                    "ph": "i", "name": "spin", "cat": "spin",
                    "pid": 0, "tid": tid, "ts": int(cycle), "s": "t",
                })
        elif kind in ("hop", "deliver"):
            events.append({
                "ph": "i", "name": kind, "cat": "packet",
                "pid": 0, "tid": int(record["router"]) + 1,
                "ts": int(record["cycle"]), "s": "t",
                "args": {"uid": record["uid"], "port": record["port"]},
            })
    metadata = {"format": CHROME_FORMAT, "clock": "cycles"}
    for key in ("design", "seed", "injection_rate", "cycles"):
        if key in header:
            metadata[key] = header[key]
    return {"traceEvents": events, "metadata": metadata,
            "displayTimeUnit": "ns"}


def validate_chrome_trace(trace: object) -> List[str]:
    """Structurally validate a ``repro.chrome-trace/v1`` document.

    Returns a list of problems (empty = valid).  Dependency-free stand-in
    for a JSON-Schema check: asserts the object form, the metadata format
    tag, and per-event field presence/types for every phase this exporter
    emits (docs/TELEMETRY.md#chrome-trace-schema).
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object (object-form trace_event)"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents must be a list")
        events = []
    metadata = trace.get("metadata")
    if not isinstance(metadata, dict):
        problems.append("metadata must be an object")
    elif metadata.get("format") != CHROME_FORMAT:
        problems.append(
            f"metadata.format must be {CHROME_FORMAT!r}, "
            f"got {metadata.get('format')!r}")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in CHROME_PHASES:
            problems.append(f"{where}: ph must be one of "
                            f"{list(CHROME_PHASES)}, got {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: name must be a non-empty string")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an integer")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a number >= 0")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: dur must be a number >= 0")
        if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: s must be one of 't', 'p', 'g'")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.export <trace.json> [...]`` validator.

    Exits 0 when every file validates, 1 otherwise (problems on stderr).
    """
    import sys

    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.telemetry.export <trace.json> [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = validate_chrome_trace(trace)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            count = len(trace.get("traceEvents", []))
            print(f"{path}: valid {CHROME_FORMAT} ({count} events)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
