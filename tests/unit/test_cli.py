"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_designs_command(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "mesh:favors-min-spin-1vc" in out
        assert "dfly:ugal-dally-3vc" in out

    def test_run_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "x"])

    def test_area_command(self, capsys):
        assert main(["area", "--radix", "5", "--vcs", "3"]) == 0
        out = capsys.readouterr().out
        assert "router area" in out
        assert "SPIN modules" in out


class TestRunCommand:
    def test_small_run(self, capsys):
        code = main([
            "run", "--design", "mesh:favors-min-spin-1vc",
            "--pattern", "uniform", "--rate", "0.05",
            "--mesh-side", "4", "--warmup", "100", "--measure", "500",
            "--drain", "500", "--tdd", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean latency" in out
        assert "delivery ratio" in out

    def test_unknown_design_fails_loudly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "--design", "mesh:bogus", "--rate", "0.1"])


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        code = main([
            "sweep", "--design", "mesh:westfirst-3vc",
            "--pattern", "uniform", "--rates", "0.05,0.3",
            "--mesh-side", "4", "--warmup", "100", "--measure", "400",
            "--drain", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation rate" in out
