"""Golden-trace scenarios and fixture regeneration.

Three pinned scenarios anchor the behavioural regression suite:

* ``mesh4_xy_spin``   — 4x4 mesh, XY (dimension-order) routing with the
  SPIN control plane at an aggressively low ``tDD``.  XY on a mesh is
  deadlock-free, so every detection is a congestion false positive — the
  trace pins the *full* SPIN machinery (counters, probes, priority) on a
  substrate whose correct behaviour is known.
* ``mesh4_square_deadlock`` — 4x4 mesh, minimal adaptive routing + SPIN,
  a planted 4-packet square deadlock (paper Fig. 2) and *no* traffic
  source: pins one complete detection→probe→move→spin recovery and is the
  reference scenario for telemetry span reconstruction
  (tests/integration/test_telemetry_spans.py, ``repro-sim trace
  --scenario``).
* ``torus4_bubble``   — 4x4 torus under bubble flow control (localized
  avoidance), pinning the wraparound datapath and the bubble condition.

``python -m repro.verify.golden [--out DIR]`` regenerates the fixture
files; tests/integration/test_golden_traces.py replays the scenarios and
fails with a first-divergence diff (:func:`repro.verify.trace
.divergence_report`) when behaviour drifts.  Regenerate *only* when a
change intentionally alters cycle-level behaviour, and say so in the
commit message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import NetworkConfig, SpinParams
from repro.network.network import Network
from repro.sim import create_engine
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern
from repro.verify.oracle import InvariantOracle, OracleConfig
from repro.verify.trace import TraceRecorder, fixture_payload, save_fixture


@dataclass(frozen=True)
class GoldenScenario:
    """One pinned, fully deterministic simulation."""

    name: str
    description: str
    cycles: int
    params: Dict[str, object]
    builder: Callable[[], Tuple[Network, object]]

    def record(self, with_oracle: bool = True, engine: Optional[str] = None
               ) -> Tuple[TraceRecorder, Optional[InvariantOracle]]:
        """Simulate the scenario under a fresh recorder (and oracle).

        The oracle runs in raise mode: a golden scenario that trips an
        invariant is a bug regardless of what the digests say.

        ``engine`` names the :class:`~repro.sim.SimulatorEngine` to drive
        the scenario with (None = the usual precedence).  Fixtures are
        engine-independent: every engine must reproduce them byte for byte,
        which the engine-parity tests assert by replaying each scenario
        under each engine against the same fixture.
        """
        network, traffic = self.builder()
        simulator = create_engine(engine)
        if traffic is not None:
            simulator.register(traffic)
        simulator.register(network)
        oracle = None
        if with_oracle:
            oracle = InvariantOracle(network, OracleConfig(mode="raise"))
            oracle.attach(simulator)
        recorder = TraceRecorder(network)
        simulator.register_observer(recorder)
        simulator.run(self.cycles)
        return recorder, oracle


def _traffic(network: Network, rate: float, seed: int, cycles: int,
             cols: int):
    pattern = make_pattern("uniform", network.topology.num_nodes, cols)
    return SyntheticTraffic(network, pattern, rate, seed=seed,
                            stop_at=cycles)


def _build_mesh4_xy_spin() -> Tuple[Network, object]:
    from repro.routing.dor import DimensionOrderRouting

    params = SCENARIOS["mesh4_xy_spin"].params
    network = Network(
        topology=MeshTopology(4, 4),
        config=NetworkConfig(vcs_per_vnet=1),
        routing=DimensionOrderRouting(params["seed"]),
        spin=SpinParams(tdd=params["tdd"]),
        seed=params["seed"],
    )
    traffic = _traffic(network, params["rate"], params["seed"],
                       params["traffic_cycles"], cols=4)
    return network, traffic


def _build_torus4_bubble() -> Tuple[Network, object]:
    from repro.deadlock.bubble import BubbleFlowControlRouting

    params = SCENARIOS["torus4_bubble"].params
    network = Network(
        topology=TorusTopology(4, 4),
        config=NetworkConfig(vcs_per_vnet=1),
        routing=BubbleFlowControlRouting(params["seed"]),
        spin=None,
        seed=params["seed"],
    )
    traffic = _traffic(network, params["rate"], params["seed"],
                       params["traffic_cycles"], cols=4)
    return network, traffic


def _plant_packet(network: Network, router_id: int, inport: int,
                  dst_router: int, length: int = 1) -> None:
    """Place a fully-arrived packet directly into a router input VC.

    Mirrors the test-suite deadlock-crafting helper (tests/conftest.py) but
    lives here so fixture regeneration and ``repro-sim trace --scenario``
    need nothing from the test tree.
    """
    from repro.network.packet import Packet

    packet = Packet(src_node=router_id, dst_node=dst_router,
                    src_router=router_id, dst_router=dst_router,
                    length=length, create_cycle=0)
    packet.inject_cycle = 0
    router = network.routers[router_id]
    vc = router.inports[inport][0]
    vc.free_at = min(vc.free_at, 0)
    vc.reserve(packet, now=0, link_latency=0, router_latency=0)
    vc.head_arrival = 0
    vc.ready_at = 0
    vc.tail_arrival = 0
    network.note_vc_reserved(router)
    network.stats.record_creation(packet, 0)


def _build_mesh4_square_deadlock() -> Tuple[Network, object]:
    from repro.routing.adaptive import MinimalAdaptiveRouting
    from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

    params = SCENARIOS["mesh4_square_deadlock"].params
    network = Network(
        topology=MeshTopology(4, 4),
        config=NetworkConfig(vcs_per_vnet=1),
        routing=MinimalAdaptiveRouting(params["seed"]),
        spin=SpinParams(tdd=params["tdd"]),
        seed=params["seed"],
    )
    at = network.topology.router_at
    plan = [
        # (router, inport holding the packet, destination 2 hops ahead):
        # each packet's unique minimal port is the next clockwise edge of
        # the (1,1)-(2,2) square — paper Fig. 2's cyclic dependency.
        (at(1, 1), SOUTH, at(3, 1)),   # wants EAST
        (at(2, 1), WEST, at(2, 3)),    # wants SOUTH
        (at(2, 2), NORTH, at(0, 2)),   # wants WEST
        (at(1, 2), EAST, at(1, 0)),    # wants NORTH
    ]
    for router, inport, dst in plan:
        _plant_packet(network, router, inport, dst)
    return network, None


SCENARIOS: Dict[str, GoldenScenario] = {}


def _register(name: str, description: str, cycles: int,
              params: Dict[str, object], builder) -> None:
    SCENARIOS[name] = GoldenScenario(
        name=name, description=description, cycles=cycles,
        params=dict(params, cycles=cycles), builder=builder)


_register(
    "mesh4_xy_spin",
    "4x4 mesh, XY routing + SPIN (tdd=12) overdriven past saturation: "
    "pins detection/probe machinery on a deadlock-free substrate",
    cycles=600,
    params={"topology": "mesh4x4", "routing": "xy", "tdd": 12,
            "rate": 0.80, "seed": 7, "traffic_cycles": 500},
    builder=_build_mesh4_xy_spin,
)
_register(
    "mesh4_square_deadlock",
    "4x4 mesh, minimal adaptive routing + SPIN (tdd=8), a planted 4-packet "
    "square deadlock and no traffic source: pins one complete "
    "detection->probe->move->spin recovery, the telemetry span fixture",
    cycles=300,
    params={"topology": "mesh4x4", "routing": "minadaptive", "tdd": 8,
            "rate": 0.0, "seed": 5, "traffic_cycles": 0},
    builder=_build_mesh4_square_deadlock,
)
_register(
    "torus4_bubble",
    "4x4 torus under bubble flow control: pins the wraparound datapath "
    "and the bubble condition",
    cycles=600,
    params={"topology": "torus4x4", "routing": "bubble-dor",
            "rate": 0.30, "seed": 11, "traffic_cycles": 500},
    builder=_build_torus4_bubble,
)


def _build_model_design(name: str) -> Callable[[], Tuple[Network, object]]:
    """Builder for a model-checker design's planted-loop fabric.

    The fabrics come from :mod:`repro.verify.model.designs` — the same
    constructions ``cli model-check`` verifies exhaustively in the
    abstract — so these fixtures pin the cycle-level behaviour of runs
    the checker has proved deadlock-free and bounded.
    """

    def build() -> Tuple[Network, object]:
        from repro.verify.model.designs import DESIGNS

        seed = SCENARIOS[f"model_{name}_spin"].params["seed"]
        return DESIGNS[name].build_network(seed=seed), None

    return build


_register(
    "model_ring3_spin",
    "3-router unidirectional ring with the model checker's planted loop "
    "deadlock: the smallest fabric whose full SPIN control plane is "
    "exhaustively verified (repro.verify.model), pinned concretely",
    cycles=200,
    params={"topology": "ring3-uni", "routing": "minadaptive", "tdd": 8,
            "rate": 0.0, "seed": 3, "traffic_cycles": 0,
            "model_design": "ring3"},
    builder=_build_model_design("ring3"),
)
_register(
    "model_mesh2x2_spin",
    "2x2 mesh with the model checker's planted perimeter-loop deadlock: "
    "the smallest mesh deadlock, exhaustively verified in the abstract "
    "(repro.verify.model) and pinned concretely here",
    cycles=200,
    params={"topology": "mesh2x2", "routing": "minadaptive", "tdd": 8,
            "rate": 0.0, "seed": 3, "traffic_cycles": 0,
            "model_design": "mesh2x2"},
    builder=_build_model_design("mesh2x2"),
)


def regenerate(out_dir, names=None) -> Dict[str, str]:
    """Write fixture files for the named (default: all) scenarios.

    Returns ``{scenario: digest}`` of everything written.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    digests: Dict[str, str] = {}
    for name in names or sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        recorder, _ = scenario.record(with_oracle=True)
        payload = fixture_payload(name, scenario.params, recorder)
        save_fixture(os.path.join(out_dir, f"{name}.json"), payload)
        digests[name] = payload["digest"]
    return digests


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate golden-trace fixtures (docs/VERIFY.md)")
    parser.add_argument("--out", default="tests/fixtures/golden",
                        help="fixture directory (default: %(default)s)")
    parser.add_argument("scenarios", nargs="*",
                        help="scenario names (default: all)")
    args = parser.parse_args(argv)
    unknown = set(args.scenarios) - set(SCENARIOS)
    if unknown:
        parser.error(f"unknown scenario(s) {sorted(unknown)}; "
                     f"known: {sorted(SCENARIOS)}")
    for name, digest in regenerate(args.out, args.scenarios or None).items():
        print(f"{name}: {digest}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
