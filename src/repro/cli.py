"""Command-line interface.

Usage examples::

    python -m repro.cli designs
    python -m repro.cli run --design mesh:favors-min-spin-1vc \\
        --pattern transpose --rate 0.15
    python -m repro.cli sweep --design mesh:westfirst-3vc --pattern uniform \\
        --rates 0.05,0.1,0.15,0.2,0.3
    python -m repro.cli area --radix 5 --vcs 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import SimulationConfig
from repro.harness.configs import ALL_DESIGNS, get_design
from repro.harness.runner import latency_curve, run_design
from repro.harness.tables import format_table
from repro.power.model import AreaModel, EnergyModel, RouterSpec


def _sim_config(args) -> SimulationConfig:
    return SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        drain_cycles=args.drain,
        deadlock_abort_cycles=args.abort_cycles,
    )


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", required=True,
                        help="design name (see `designs`)")
    parser.add_argument("--pattern", default="uniform",
                        help="traffic pattern name")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mesh-side", type=int, default=8)
    parser.add_argument("--dragonfly", default="2,4,2",
                        help="p,a,h (paper scale: 4,8,4)")
    parser.add_argument("--tdd", type=int, default=None,
                        help="SPIN detection threshold override")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measure", type=int, default=3000)
    parser.add_argument("--drain", type=int, default=3000)
    parser.add_argument("--abort-cycles", type=int, default=2000)


def cmd_designs(args) -> int:
    rows = [
        [name, d.topology, d.vcs_per_vnet, d.theory, d.scheme, d.adaptive]
        for name, d in sorted(ALL_DESIGNS.items())
    ]
    print(format_table(
        ["Name", "Topology", "VCs", "Theory", "Scheme", "Adaptivity"],
        rows, title="Available designs (Table III registry)"))
    return 0


def cmd_run(args) -> int:
    get_design(args.design)  # fail fast with the full list on a typo
    dragonfly = tuple(int(x) for x in args.dragonfly.split(","))
    network, point = run_design(
        args.design, args.pattern, args.rate, _sim_config(args),
        seed=args.seed, mesh_side=args.mesh_side, dragonfly=dragonfly,
        tdd=args.tdd)
    print(format_table(
        ["Metric", "Value"],
        [
            ["offered load (flits/node/cycle)", args.rate],
            ["mean latency (cycles)", round(point.mean_latency, 2)],
            ["p99 latency (cycles)", round(point.p99_latency, 2)],
            ["received throughput", round(point.throughput, 4)],
            ["delivery ratio", round(point.delivery_ratio, 4)],
            ["wedged", point.wedged],
            ["spins", point.events.get("spins", 0)],
            ["probes sent", point.events.get("probes_sent", 0)],
            ["mean hops", round(network.stats.mean_hops(), 3)],
        ],
        title=f"{args.design} / {args.pattern} @ {args.rate}"))
    return 0


def cmd_sweep(args) -> int:
    rates = [float(x) for x in args.rates.split(",")]
    dragonfly = tuple(int(x) for x in args.dragonfly.split(","))
    points, saturation = latency_curve(
        args.design, args.pattern, rates, _sim_config(args), seed=args.seed,
        mesh_side=args.mesh_side, dragonfly=dragonfly, tdd=args.tdd)
    rows = [
        [p.injection_rate, round(p.mean_latency, 1), round(p.throughput, 4),
         round(p.delivery_ratio, 3), p.wedged, p.events.get("spins", 0)]
        for p in points
    ]
    print(format_table(
        ["Rate", "Mean latency", "Throughput", "Delivered", "Wedged",
         "Spins"],
        rows, title=f"{args.design} / {args.pattern}"))
    print(f"\nsaturation rate: {saturation}")
    return 0


def cmd_area(args) -> int:
    spec = RouterSpec(radix=args.radix, vcs=args.vcs,
                      buffer_depth=args.depth, flit_bits=args.flit_bits)
    area_model = AreaModel()
    energy_model = EnergyModel()
    rows = [
        ["router area (a.u.)", round(area_model.router_area(spec), 1)],
        ["router power (a.u.)", round(energy_model.router_power(spec), 1)],
        ["+ SPIN modules", round(area_model.spin_overhead(
            spec, args.routers), 1)],
        ["+ static bubble", round(area_model.static_bubble_overhead(spec), 1)],
        ["+ escape VC", round(area_model.escape_vc_overhead(spec), 1)],
    ]
    print(format_table(["Quantity", "Value"], rows,
                       title=f"radix={args.radix} vcs={args.vcs}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SPIN (ISCA 2018) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list design configurations")

    run_parser = sub.add_parser("run", help="simulate one design point")
    _add_run_args(run_parser)
    run_parser.add_argument("--rate", type=float, required=True,
                            help="offered load in flits/node/cycle")

    sweep_parser = sub.add_parser("sweep", help="latency-vs-injection sweep")
    _add_run_args(sweep_parser)
    sweep_parser.add_argument("--rates", required=True,
                              help="comma-separated offered loads")

    area_parser = sub.add_parser("area", help="router cost model")
    area_parser.add_argument("--radix", type=int, default=5)
    area_parser.add_argument("--vcs", type=int, default=3)
    area_parser.add_argument("--depth", type=int, default=5)
    area_parser.add_argument("--flit-bits", type=int, default=128)
    area_parser.add_argument("--routers", type=int, default=64)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "designs": cmd_designs,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "area": cmd_area,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
