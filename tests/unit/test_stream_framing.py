"""Wire-level tests for the ``repro.telemetry-stream/v1`` framing.

The decoder must distinguish *torn* frames (more bytes coming — wait)
from *corrupt* ones (bad prefix/JSON — resync at the next newline), and
the aggregator must tolerate out-of-order and duplicated sequence
numbers per worker (docs/OBSERVE.md).
"""

import json

from repro.telemetry.live import (
    STREAM_FORMAT,
    FrameDecoder,
    StreamAggregator,
    TelemetryShipper,
    encode_frame,
)


def frame(type_="heartbeat", worker=7, seq=1, **fields):
    payload = {"type": type_, "worker": worker, "seq": seq, "t": 1.0}
    payload.update(fields)
    return payload


class TestEncodeDecodeRoundtrip:
    def test_single_frame(self):
        decoder = FrameDecoder()
        original = frame("hello", schema=STREAM_FORMAT)
        out = decoder.feed(encode_frame(original))
        assert out == [original]
        assert decoder.frames_decoded == 1
        assert decoder.frames_corrupt == 0

    def test_many_frames_one_chunk(self):
        frames = [frame(seq=i) for i in range(1, 6)]
        blob = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_prefix_matches_body_length(self):
        encoded = encode_frame(frame())
        prefix, rest = encoded.split(b" ", 1)
        assert int(prefix) == len(rest) - 1  # body excludes trailing \n
        assert rest.endswith(b"\n")

    def test_unicode_payload_counts_bytes_not_chars(self):
        original = frame("event", name="café ☃")
        out = FrameDecoder().feed(encode_frame(original))
        assert out == [original]


class TestTornFrames:
    def test_every_byte_boundary(self):
        """Feed a multi-frame stream one byte at a time."""
        frames = [frame(seq=i, padding="x" * i) for i in range(1, 4)]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i:i + 1]))
        assert out == frames
        assert decoder.frames_corrupt == 0

    def test_torn_prefix_waits(self):
        decoder = FrameDecoder()
        encoded = encode_frame(frame())
        assert decoder.feed(encoded[:2]) == []
        assert decoder.frames_corrupt == 0
        assert decoder.feed(encoded[2:]) == [frame()]

    def test_torn_body_waits(self):
        decoder = FrameDecoder()
        encoded = encode_frame(frame())
        assert decoder.feed(encoded[:-3]) == []
        assert decoder.frames_corrupt == 0
        assert decoder.feed(encoded[-3:]) == [frame()]

    def test_split_across_arbitrary_chunks(self):
        frames = [frame(seq=i) for i in range(1, 8)]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(blob), 11):
            out.extend(decoder.feed(blob[start:start + 11]))
        assert out == frames


class TestCorruptFrames:
    def test_non_digit_prefix_resyncs(self):
        decoder = FrameDecoder()
        good = encode_frame(frame(seq=2))
        out = decoder.feed(b"garbage line\n" + good)
        assert out == [frame(seq=2)]
        assert decoder.frames_corrupt == 1

    def test_bad_json_body_counts_and_continues(self):
        body = b"not json!!"
        corrupt = b"%d %s\n" % (len(body), body)
        good = encode_frame(frame(seq=3))
        decoder = FrameDecoder()
        assert decoder.feed(corrupt + good) == [frame(seq=3)]
        assert decoder.frames_corrupt == 1

    def test_wrong_length_prefix_resyncs_at_newline(self):
        # Prefix claims 4 bytes but the body runs to the newline later:
        # the tail byte at the claimed end is not \n, so resync.
        good = encode_frame(frame(seq=4))
        decoder = FrameDecoder()
        out = decoder.feed(b"4 this-body-is-longer-than-four\n" + good)
        assert out == [frame(seq=4)]
        assert decoder.frames_corrupt == 1

    def test_oversized_prefix_resyncs(self):
        decoder = FrameDecoder()
        good = encode_frame(frame(seq=5))
        out = decoder.feed(b"9" * 40 + b"\n" + good)
        assert out == [frame(seq=5)]
        assert decoder.frames_corrupt >= 1

    def test_non_object_json_is_corrupt(self):
        body = json.dumps([1, 2, 3]).encode()
        blob = b"%d %s\n" % (len(body), body)
        decoder = FrameDecoder()
        assert decoder.feed(blob) == []
        assert decoder.frames_corrupt == 1


class TestShipperTransportFailures:
    def test_blocking_send_drops_and_counts(self):
        def send(data):
            raise BlockingIOError

        shipper = TelemetryShipper(send, worker=1)
        shipper.hello()
        assert shipper.frames_dropped == 1
        assert shipper.alive

    def test_oserror_goes_quiet_forever(self):
        calls = []

        def send(data):
            calls.append(data)
            raise OSError("supervisor gone")

        shipper = TelemetryShipper(send, worker=1)
        shipper.hello()
        assert not shipper.alive
        shipper.point_start("k", 0.1, 100)
        shipper.point_end("k", True, 0.5)
        assert len(calls) == 1  # nothing sent after the transport died

    def test_heartbeat_throttled(self):
        sent = []
        shipper = TelemetryShipper(sent.append, worker=1, interval=3600.0)
        shipper.heartbeat()
        shipper.heartbeat()
        shipper.heartbeat()
        assert len(sent) == 1


class TestOutOfOrderSequences:
    def test_stale_seq_refreshes_liveness_but_drops_payload(self):
        agg = StreamAggregator(keys=["k1"], rates=[0.1])
        agg.feed_frames([
            frame("point_start", worker=9, seq=5, key="k1", rate=0.1,
                  cycles_total=100),
            frame("progress", worker=9, seq=6, key="k1", cycles_done=80,
                  cycles_total=100, delivered=8, injected=9, spins=0),
            # A duplicated older progress frame arrives late: its payload
            # must not roll cycles_done back from 80 to 40.
            frame("progress", worker=9, seq=6, key="k1", cycles_done=40,
                  cycles_total=100, delivered=4, injected=5, spins=0),
        ])
        snap = agg.snapshot()
        assert snap["points"]["k1"]["cycles_done"] == 80
        assert agg.counters["frames_stale"] == 1
        assert agg.counters["frames_received"] == 3

    def test_fresh_seq_after_stale_applies(self):
        agg = StreamAggregator(keys=["k1"], rates=[0.1])
        agg.feed_frames([
            frame("point_start", worker=9, seq=2, key="k1", rate=0.1,
                  cycles_total=100),
            frame("heartbeat", worker=9, seq=1),  # stale
            frame("progress", worker=9, seq=3, key="k1", cycles_done=50),
        ])
        assert agg.snapshot()["points"]["k1"]["cycles_done"] == 50

    def test_corrupt_bytes_counted_by_aggregator(self):
        agg = StreamAggregator(keys=["k1"])
        good = encode_frame(frame("heartbeat", worker=3, seq=1))
        agg.feed_bytes("conn-1", b"junk\n" + good)
        assert agg.counters["frames_corrupt"] == 1
        assert agg.counters["frames_received"] == 1

    def test_independent_sequence_spaces_per_worker(self):
        agg = StreamAggregator()
        agg.feed_frames([
            frame("heartbeat", worker=1, seq=5),
            frame("heartbeat", worker=2, seq=1),  # different worker: fresh
        ])
        assert agg.counters.get("frames_stale", 0) == 0
