"""Unit tests for every spin-executor abort path (the safety guards)."""

from repro.config import SpinParams
from repro.sim.engine import Simulator
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE

from tests.conftest import craft_ring_deadlock, make_ring_network


def frozen_network(m=6, tdd=8):
    """A ring network advanced until all loop VCs are frozen."""
    network = make_ring_network(m=m, spin=SpinParams(tdd=tdd))
    packets = craft_ring_deadlock(network, dst_ahead=2)
    sim = Simulator()
    sim.register(network)
    sim.run_until(lambda: network.spin.frozen_vc_count() == m,
                  max_cycles=300)
    assert network.spin.frozen_vc_count() == m
    return network, packets, sim


def frozen_entries(network):
    return [vc for _, _, vc in network.occupied_vcs() if vc.frozen]


class TestAbortPaths:
    def test_undersized_group(self):
        network, packets, sim = frozen_network()
        # Unfreeze all but one entry: the survivor's group is undersized.
        entries = frozen_entries(network)
        for vc in entries[1:]:
            vc.clear_freeze()
        spin_cycle = entries[0].freeze_spin_cycle
        sim.run(spin_cycle - sim.cycle + 1)
        assert network.stats.events.get("spins_aborted_undersized", 0) >= 1
        assert network.spin.frozen_vc_count() == 0

    def test_broken_chain_indices(self):
        network, packets, sim = frozen_network()
        entries = frozen_entries(network)
        # Corrupt one entry's path index: indices are no longer 0..k-1.
        victim = max(entries, key=lambda vc: vc.freeze_path_index)
        victim.freeze_path_index = 99
        spin_cycle = victim.freeze_spin_cycle
        sim.run(spin_cycle - sim.cycle + 1)
        assert network.stats.events.get("spins_aborted_broken_chain", 0) >= 1
        # Nothing lost: all packets still resident or delivered.
        assert (network.stats.packets_delivered
                + network.packets_in_flight()) == len(packets)

    def test_busy_link(self):
        network, packets, sim = frozen_network()
        entries = frozen_entries(network)
        router = network.routers[entries[0].router]
        router.out_links[entries[0].freeze_outport].busy_until = 10 ** 6
        spin_cycle = entries[0].freeze_spin_cycle
        sim.run(spin_cycle - sim.cycle + 1)
        assert network.stats.events.get("spins_aborted_link_busy", 0) >= 1
        assert network.spin.frozen_vc_count() == 0

    def test_wrong_neighbor_chain(self):
        network, packets, sim = frozen_network()
        entries = frozen_entries(network)
        # Point one frozen entry at the wrong outport: the ring no longer
        # closes geometrically.
        victim = entries[2]
        victim.freeze_outport = (
            COUNTER_CLOCKWISE if victim.freeze_outport == CLOCKWISE
            else CLOCKWISE)
        spin_cycle = victim.freeze_spin_cycle
        sim.run(spin_cycle - sim.cycle + 1)
        assert network.stats.events.get("spins_aborted_broken_chain", 0) >= 1

    def test_recovery_retries_after_abort(self):
        # After any abort, detection restarts and the deadlock still gets
        # resolved eventually.
        network, packets, sim = frozen_network()
        entries = frozen_entries(network)
        entries[3].clear_freeze()  # force one abort round
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=3000)
        assert done
        assert network.stats.events.get("spins_aborted", 0) >= 1
        assert network.stats.events.get("spins", 0) >= 1


class TestLinkDedup:
    def test_two_groups_sharing_a_link_cannot_both_spin(self):
        # Construct two fake frozen groups that both claim the same link in
        # the same cycle; the executor must abort the second.
        network, packets, sim = frozen_network(m=6)
        entries = sorted(frozen_entries(network),
                         key=lambda vc: vc.freeze_path_index)
        spin_cycle = entries[0].freeze_spin_cycle
        # Two real groups cannot share occupied VCs, so verify the
        # executor's per-cycle links_used bookkeeping directly.
        executor = network.spin.executor
        links_used = set()
        ok_first = executor._spin_group(
            entries[0].freeze_source, list(entries), links_used, spin_cycle)
        assert ok_first
        # All ring links are now marked used for this cycle.
        assert len(links_used) == 6
