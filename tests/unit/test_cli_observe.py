"""CLI surfaces of the observability plane: watch, serve-metrics,
profile, campaign-level report/trace, and the sweep --no-stream flag."""

import json

import pytest

from repro.cli import main
from repro.telemetry.live import STATUS_NAME, STREAM_LOG_NAME

SWEEP_ARGS = ["sweep", "--design", "spin_mesh", "--pattern", "uniform",
              "--rates", "0.02,0.05", "--mesh-side", "4", "--tdd", "32",
              "--warmup", "50", "--measure", "200", "--drain", "150",
              "--abort-cycles", "300"]


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One completed, streamed serial campaign shared by the module."""
    directory = tmp_path_factory.mktemp("camp")
    assert main(SWEEP_ARGS + ["--campaign", str(directory)]) == 0
    return directory


class TestWatch:
    def test_once_renders_completed_campaign(self, campaign, capsys):
        assert main(["watch", str(campaign), "--once"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "2/2 points" in out
        assert "ok=2" in out

    def test_once_missing_directory(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope"), "--once"]) == 0
        assert "no status.json" in capsys.readouterr().out

    def test_bad_interval_rejected(self, campaign):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["watch", str(campaign), "--interval", "0"])

    def test_journal_fallback_for_no_stream_campaign(self, tmp_path,
                                                     capsys):
        directory = tmp_path / "quiet"
        assert main(SWEEP_ARGS + ["--campaign", str(directory),
                                  "--no-stream"]) == 0
        assert not (directory / STATUS_NAME).exists()
        assert not (directory / STREAM_LOG_NAME).exists()
        assert main(["watch", str(directory), "--once"]) == 0
        out = capsys.readouterr().out
        assert "journal view" in out
        assert "[##]" in out


class TestServeMetrics:
    def test_once_lints_clean(self, campaign, capsys):
        from repro.telemetry.prometheus import validate_exposition

        assert main(["serve-metrics", str(campaign), "--once"]) == 0
        out = capsys.readouterr().out
        assert validate_exposition(out) == []
        assert 'repro_campaign_points{state="ok"} 2' in out

    def test_once_without_status_fails(self, tmp_path, capsys):
        assert main(["serve-metrics", str(tmp_path), "--once"]) == 1
        assert "status.json" in capsys.readouterr().err


class TestProfileCommand:
    def test_both_engines_and_output(self, tmp_path, capsys):
        output = tmp_path / "profile.json"
        code = main(["profile", "--design", "mesh:minadaptive-spin-1vc",
                     "--mesh-side", "4", "--rate", "0.1",
                     "--warmup", "50", "--measure", "200",
                     "--drain", "150", "--abort-cycles", "300",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=reference" in out
        assert "engine=fast" in out
        assert "engines agree on the profiled point" in out
        payload = json.loads(output.read_text())
        assert payload["schema"] == "repro.profile/v1"
        assert payload["identical_points"] is True
        assert set(payload["reports"]) == {"reference", "fast"}
        fast = payload["reports"]["fast"]
        assert fast["counters"]["router_cycles_skipped"] > 0

    def test_single_engine_via_engines_flag(self, capsys):
        code = main(["profile", "--design", "spin_mesh",
                     "--mesh-side", "4", "--rate", "0.05",
                     "--warmup", "50", "--measure", "100",
                     "--drain", "100", "--abort-cycles", "200",
                     "--engines", "reference"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=reference" in out
        assert "engine=fast" not in out

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["profile", "--design", "spin_mesh", "--engines",
                  "warp9"])


class TestRunProfileFlag:
    def test_run_profile_prints_phase_table(self, capsys):
        code = main(["run", "--design", "spin_mesh", "--rate", "0.05",
                     "--mesh-side", "4", "--warmup", "50",
                     "--measure", "100", "--drain", "100",
                     "--abort-cycles", "200", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out and "allocate" in out
        # The run obeys the session's engine resolution (REPRO_ENGINE may
        # redirect the whole suite onto the fast core in CI).
        from repro.sim.engine_api import resolve_engine_name

        assert f"engine={resolve_engine_name()}" in out


class TestCampaignReport:
    def test_report_accepts_campaign_directory(self, campaign, capsys):
        assert main(["report", str(campaign)]) == 0
        out = capsys.readouterr().out
        assert "campaign report" in out
        assert "2 total, 2 ok, 0 failed" in out
        assert "stream:" in out
        assert "point_end=2" in out

    def test_report_rejects_non_campaign_directory(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["report", str(tmp_path)])


class TestCampaignTrace:
    def test_trace_converts_stream_log(self, campaign, tmp_path, capsys):
        prefix = tmp_path / "campaign_trace"
        assert main(["trace", "--campaign", str(campaign),
                     "--output", str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "campaign stream:" in out
        chrome = json.loads((tmp_path / "campaign_trace.chrome.json")
                            .read_text())
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 2
        frames = [json.loads(line) for line in
                  (tmp_path / "campaign_trace.jsonl").read_text()
                  .splitlines()]
        assert any(f["type"] == "point_end" for f in frames)

    def test_trace_campaign_without_stream_log(self, tmp_path):
        from repro.errors import ConfigurationError

        directory = tmp_path / "quiet"
        assert main(SWEEP_ARGS + ["--campaign", str(directory),
                                  "--no-stream"]) == 0
        with pytest.raises(ConfigurationError):
            main(["trace", "--campaign", str(directory),
                  "--output", str(tmp_path / "t")])


class TestSerialCampaignStreams:
    def test_jobs1_campaign_writes_status_and_stream(self, campaign):
        """The in-process serial path connects to its own listener."""
        status = json.loads((campaign / STATUS_NAME).read_text())
        assert status["status"] == "completed"
        assert status["campaign"]["ok"] == 2
        # The serial worker is this very process, streaming to itself.
        assert len(status["workers"]) == 1
        lines = (campaign / STREAM_LOG_NAME).read_text().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert types.count("point_start") == 2
        assert types.count("point_end") == 2
