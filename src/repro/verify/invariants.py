"""The invariant catalog: pure per-snapshot checks on live network state.

Each checker inspects one network at one cycle and yields
:class:`~repro.errors.InvariantViolation` objects (it never raises — policy
is the oracle's job).  Every violation carries ``invariant=<name>`` where
``<name>`` is a key of :data:`INVARIANTS`, so callers — and the
mutation-kill property suite — can assert *which* invariant tripped.

The checks in this module are **stateless**: they need only the current
snapshot.  History-dependent invariants (packet conservation, teleport
detection, FSM transition legality, deadlock persistence) live on
:class:`repro.verify.oracle.InvariantOracle`, which owns the cross-cycle
state.

See docs/VERIFY.md for the prose catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.fsm import (
    INITIATOR_STATES,
    LEGAL_ATOMIC_TRANSITIONS,
    SpinState,
)
from repro.errors import InvariantViolation

#: name -> one-line description of every invariant family the oracle checks.
INVARIANTS: Dict[str, str] = {
    "credit_conservation":
        "router.active_vcs equals the number of occupied VCs at the router",
    "vc_occupancy":
        "an occupied VC holds exactly one packet with consistent timing "
        "fields, matching vnet, and a length within the buffer bound",
    "duplicate_packet":
        "no packet uid is resident in two buffers at once",
    "packet_conservation":
        "a packet leaves the fabric only by delivery or a counted loss",
    "teleport":
        "a resident packet only ever moves one hop along an existing link "
        "(or from its NIC queue into the attached router)",
    "duplicate_delivery":
        "no packet is delivered twice",
    "misdelivery":
        "a packet is only ever delivered to its destination NIC",
    "link_accounting":
        "link occupancy and utilization counters never run backwards or "
        "exceed the packet-length bound",
    "freeze_legality":
        "a frozen VC holds a packet, carries complete freeze metadata, and "
        "does not outlive its spin cycle beyond the recovery bound",
    "freeze_token_uniqueness":
        "per (initiator, spin cycle) the frozen path indices are unique and "
        "index 0 sits at the initiating router",
    "fsm_transition":
        "per-router SPIN FSM state changes follow the legal transition "
        "relation of repro.core.fsm",
    "fsm_context":
        "a SPIN FSM state is always accompanied by the controller context "
        "that state requires (pointer, loop path, latched source, ...)",
    "deadlock_persistence":
        "no true deadlock (waitgraph ground truth) survives past the "
        "theory's recovery-latency bound",
}

#: Location of a resident packet: ("vc", router, inport, vc index) or
#: ("nic", node, vnet).
Location = Tuple


def iter_resident(network) -> Iterator[Tuple[int, object, Location]]:
    """Every resident packet as ``(uid, packet, location)``.

    Walks all router input VCs (network and injection ports) plus all NIC
    injection queues.  Deliberately does *not* trust ``active_vcs`` — that
    counter is itself under audit (credit conservation).
    """
    for router in network.routers:
        for inport, vcs in router.all_inports():
            for vc in vcs:
                packet = vc.packet
                if packet is not None:
                    yield packet.uid, packet, ("vc", router.id, inport,
                                               vc.index)
    for nic in network.nics:
        for vnet, queue in enumerate(nic.queues):
            for packet in queue:
                yield packet.uid, packet, ("nic", nic.node, vnet)


def check_credit_conservation(network, cycle: int
                              ) -> Iterator[InvariantViolation]:
    """``active_vcs`` (the credit fast path) vs. a direct occupancy count."""
    for router in network.routers:
        counted = sum(
            1 for _, vcs in router.all_inports()
            for vc in vcs if vc.packet is not None)
        if counted != router.active_vcs:
            yield InvariantViolation(
                "credit counter disagrees with VC occupancy",
                invariant="credit_conservation", router=router.id,
                cycle=cycle, counted=counted, cached=router.active_vcs)


def check_vc_occupancy(network, cycle: int) -> Iterator[InvariantViolation]:
    """Buffer bounds and timing-field consistency of every occupied VC."""
    config = network.config
    for router in network.routers:
        for inport, vcs in router.all_inports():
            for vc in vcs:
                packet = vc.packet
                if packet is None:
                    continue
                where = dict(invariant="vc_occupancy", router=router.id,
                             inport=inport, vc=vc.index, cycle=cycle,
                             packet=packet.uid)
                if not 1 <= packet.length <= config.buffer_depth:
                    yield InvariantViolation(
                        "packet length outside the VC buffer bound",
                        length=packet.length, depth=config.buffer_depth,
                        **where)
                if packet.vnet != vc.vnet:
                    yield InvariantViolation(
                        "packet resides in a VC of a different vnet",
                        packet_vnet=packet.vnet, vc_vnet=vc.vnet, **where)
                if vc.tail_arrival > vc.head_arrival + packet.length - 1:
                    yield InvariantViolation(
                        "tail arrival exceeds head arrival + length - 1 "
                        "(more flits than the packet has)",
                        head=vc.head_arrival, tail=vc.tail_arrival,
                        length=packet.length, **where)
                if vc.ready_at < vc.head_arrival:
                    yield InvariantViolation(
                        "packet ready before its head arrived",
                        head=vc.head_arrival, ready=vc.ready_at, **where)


def check_duplicate_packets(network, cycle: int
                            ) -> Iterator[InvariantViolation]:
    """No uid resident in two buffers at once (no duplicated packets)."""
    seen: Dict[int, Location] = {}
    for uid, _packet, location in iter_resident(network):
        if uid in seen:
            yield InvariantViolation(
                "packet resident in two buffers at once",
                invariant="duplicate_packet", packet=uid, cycle=cycle,
                first=seen[uid], second=location)
        else:
            seen[uid] = location


def check_link_accounting(network, cycle: int
                          ) -> Iterator[InvariantViolation]:
    """Link occupancy bounded by the maximum packet length."""
    horizon = cycle + network.config.max_packet_length
    for key, link in network.links.items():
        if link.busy_until > horizon:
            yield InvariantViolation(
                "link busy beyond one maximum packet from now",
                invariant="link_accounting", link=key, cycle=cycle,
                busy_until=link.busy_until, horizon=horizon)
        if link.flit_cycles < 0 or link.sm_cycles < 0:
            yield InvariantViolation(
                "negative link utilization counter",
                invariant="link_accounting", link=key, cycle=cycle,
                flit_cycles=link.flit_cycles, sm_cycles=link.sm_cycles)


def check_freeze_legality(network, cycle: int, overdue_slack: int
                          ) -> Iterator[InvariantViolation]:
    """Frozen VCs carry a packet and complete, timely freeze metadata."""
    for router in network.routers:
        for inport, vcs in router.all_inports():
            for vc in vcs:
                if not vc.frozen:
                    continue
                where = dict(invariant="freeze_legality", router=router.id,
                             inport=inport, vc=vc.index, cycle=cycle)
                if vc.packet is None:
                    yield InvariantViolation(
                        "frozen VC holds no packet", **where)
                    continue
                if (vc.freeze_outport < 0 or vc.freeze_source < 0
                        or vc.freeze_spin_cycle < 0
                        or vc.freeze_path_index < 0):
                    yield InvariantViolation(
                        "frozen VC with incomplete freeze metadata",
                        outport=vc.freeze_outport, source=vc.freeze_source,
                        spin_cycle=vc.freeze_spin_cycle,
                        path_index=vc.freeze_path_index, **where)
                elif cycle > vc.freeze_spin_cycle + overdue_slack:
                    yield InvariantViolation(
                        "frozen VC outlived its spin cycle beyond the "
                        "recovery bound",
                        spin_cycle=vc.freeze_spin_cycle,
                        slack=overdue_slack, **where)


def check_freeze_tokens(network, cycle: int) -> Iterator[InvariantViolation]:
    """Per-(initiator, spin-cycle) uniqueness of frozen path indices."""
    groups: Dict[Tuple[int, int], Dict[int, Tuple[int, int, int]]] = {}
    for router in network.routers:
        for inport, vcs in router.all_inports():
            for vc in vcs:
                if not vc.frozen or vc.freeze_source < 0:
                    continue
                token = (vc.freeze_source, vc.freeze_spin_cycle)
                index = vc.freeze_path_index
                location = (router.id, inport, vc.index)
                held = groups.setdefault(token, {})
                if index in held:
                    yield InvariantViolation(
                        "duplicate frozen path index within one recovery",
                        invariant="freeze_token_uniqueness", cycle=cycle,
                        source=token[0], spin_cycle=token[1],
                        path_index=index, first=held[index],
                        second=location)
                else:
                    held[index] = location
                if index == 0 and router.id != vc.freeze_source:
                    yield InvariantViolation(
                        "path index 0 frozen away from its initiator",
                        invariant="freeze_token_uniqueness", cycle=cycle,
                        source=token[0], spin_cycle=token[1],
                        router=router.id)


#: Per-handler (atomic) illegal transitions, derived from the FSM's own
#: table: anything outside :data:`repro.core.fsm.LEGAL_ATOMIC_TRANSITIONS`.
#: This is the relation the model checker enforces on every explored step
#: (one step = one handler) and the strictest legality statement we can
#: make; the runtime oracle cannot use it directly because it samples once
#: per cycle.
ATOMIC_ILLEGAL_TRANSITIONS: Dict[SpinState, frozenset] = {
    state: frozenset(
        other for other in SpinState
        if other is not state
        and other not in LEGAL_ATOMIC_TRANSITIONS[state])
    for state in SpinState
}

#: Per-*cycle* sets of provably unreachable next states, including any
#: composite transition a single cycle can produce (a spin/abort callback,
#: then a priority-ordered batch of SM handlers, then the counter tick —
#: :meth:`repro.core.framework.SpinFramework.phase_control` order).
#: Everything outside these sets is considered legal — the relation errs
#: on the permissive side so the oracle never cries wolf on a
#: rare-but-correct composite step.  tests/unit/test_fsm_legality.py
#: audits it two ways: it must be consistent with the atomic table above
#: (nothing atomically legal may be cycle-illegal), and the model
#: checker's exhaustively observed transitions must all be legal here.
ILLEGAL_TRANSITIONS: Dict[SpinState, frozenset] = {
    SpinState.OFF: frozenset({
        SpinState.MOVE, SpinState.FORWARD_PROGRESS,
        SpinState.PROBE_MOVE, SpinState.KILL_MOVE,
    }),
    SpinState.DD: frozenset({
        SpinState.FORWARD_PROGRESS, SpinState.PROBE_MOVE,
        SpinState.KILL_MOVE,
    }),
    # A thaw leaves the once-frozen VC occupied, so the pointer sweep that
    # could park the counter OFF always finds a packet within the same
    # cycle: FROZEN -> OFF is impossible.  (Same argument for MOVE /
    # FORWARD_PROGRESS / PROBE_MOVE below: every in-cycle path of theirs
    # to DD — spin, abort, escape — leaves at least one occupied VC
    # behind.  KILL_MOVE -> OFF, by contrast, is real: the probed
    # dependency may have drained mid-recovery, and _finish_recovery's
    # pointer sweep then finds nothing.)
    SpinState.FROZEN: frozenset({
        SpinState.FORWARD_PROGRESS, SpinState.PROBE_MOVE,
        SpinState.KILL_MOVE, SpinState.OFF,
    }),
    SpinState.MOVE: frozenset({SpinState.PROBE_MOVE, SpinState.OFF}),
    SpinState.FORWARD_PROGRESS: frozenset({
        SpinState.KILL_MOVE, SpinState.OFF,
    }),
    SpinState.KILL_MOVE: frozenset({
        SpinState.FORWARD_PROGRESS, SpinState.PROBE_MOVE,
    }),
    SpinState.PROBE_MOVE: frozenset({SpinState.OFF}),
}

#: States that may only be held by the active recovery initiator — the
#: FSM's own definition, re-exported under the name this module
#: historically used.
_INITIATOR_ONLY = INITIATOR_STATES


def check_fsm_context(network, cycle: int) -> Iterator[InvariantViolation]:
    """Each SPIN FSM state implies the controller context it requires."""
    spin = network.spin
    if spin is None:
        return
    for controller in spin.controllers:
        state = controller.state
        where = dict(invariant="fsm_context", router=controller.router.id,
                     cycle=cycle, state=state.name)
        if state is SpinState.OFF:
            if (controller.pointer is not None
                    or controller.deadline is not None):
                yield InvariantViolation(
                    "OFF controller retains detection context",
                    pointer=controller.pointer,
                    deadline=controller.deadline, **where)
        elif state is SpinState.DD:
            if controller.pointer is None or controller.deadline is None:
                yield InvariantViolation(
                    "DD controller without a pointed VC or deadline",
                    pointer=controller.pointer,
                    deadline=controller.deadline, **where)
        elif state in _INITIATOR_ONLY:
            if state is not SpinState.KILL_MOVE and not controller.loop_path:
                yield InvariantViolation(
                    "initiator state without a latched loop path", **where)
            if controller.deadline is None:
                yield InvariantViolation(
                    "initiator state without a watchdog deadline", **where)
            if (state is SpinState.FORWARD_PROGRESS
                    and (not controller.is_deadlock
                         or controller.latched_source
                         != controller.router.id)):
                yield InvariantViolation(
                    "FORWARD_PROGRESS without self-latched deadlock bit",
                    is_deadlock=controller.is_deadlock,
                    latched=controller.latched_source, **where)
        if controller.is_deadlock and controller.latched_source is None:
            yield InvariantViolation(
                "is_deadlock set with no latched source", **where)


STATELESS_CHECKS = {
    "credit_conservation": check_credit_conservation,
    "vc_occupancy": check_vc_occupancy,
    "duplicate_packet": check_duplicate_packets,
    "link_accounting": check_link_accounting,
    "freeze_token_uniqueness": check_freeze_tokens,
    "fsm_context": check_fsm_context,
}


def run_stateless(network, cycle: int,
                  enabled: Iterable[str]) -> List[InvariantViolation]:
    """Run the enabled stateless checks; returns all violations found."""
    found: List[InvariantViolation] = []
    for name in enabled:
        checker = STATELESS_CHECKS.get(name)
        if checker is not None:
            found.extend(checker(network, cycle))
    return found
