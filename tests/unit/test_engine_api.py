"""The pluggable engine API: protocol, registry, precedence, parity.

Covers the :mod:`repro.sim.engine_api` surface (selection precedence,
registry, the deprecation shim), the ``ExperimentSpec.engine`` field's
serialization contract (unset hashes like a pre-engine-field spec), the
campaign journal's engine provenance, and a hypothesis property test that
random small meshes produce identical :class:`SweepPoint` results under
both engines.
"""

import itertools
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.network.packet as packet_module
from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.errors import ConfigurationError
from repro.harness.runner import ExperimentSpec
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    Simulator,
    SimulatorEngine,
    available_engines,
    build_simulation_loop,
    create_engine,
    resolve_engine_name,
)
from repro.sim.fastcore import FastSimulator
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern


class TestProtocolAndRegistry:
    def test_both_engines_satisfy_the_protocol(self):
        for name in available_engines():
            engine = create_engine(name)
            assert isinstance(engine, SimulatorEngine)
            assert engine.name == name
            assert engine.cycle == 0

    def test_registry_contents(self):
        assert available_engines() == ["fast", "reference"]
        assert DEFAULT_ENGINE == "reference"
        assert isinstance(create_engine("reference"), Simulator)
        assert isinstance(create_engine("fast"), FastSimulator)

    def test_fast_engine_is_a_simulator(self):
        # The fast core substitutes phases, not the component contract:
        # anything driving a Simulator drives a FastSimulator.
        assert issubclass(FastSimulator, Simulator)


class TestPrecedence:
    def test_spec_beats_cli_beats_env_beats_default(self, monkeypatch):
        # env=None means "read $REPRO_ENGINE"; clear it so the final
        # default-fallback assertion holds under any outer environment
        # (the CI engine-parity job exports REPRO_ENGINE=fast).
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name("fast", cli="reference",
                                   env="reference") == "fast"
        assert resolve_engine_name(None, cli="fast",
                                   env="reference") == "fast"
        assert resolve_engine_name(None, cli=None, env="fast") == "fast"
        assert resolve_engine_name(None, cli=None, env=None) \
            == DEFAULT_ENGINE

    def test_empty_string_means_unset(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name("", cli="", env="") == DEFAULT_ENGINE

    def test_environment_variable_is_consulted(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        assert resolve_engine_name() == "fast"
        assert create_engine().name == "fast"
        monkeypatch.setenv(ENGINE_ENV_VAR, "")
        assert resolve_engine_name() == DEFAULT_ENGINE

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ConfigurationError, match="fast, reference"):
            resolve_engine_name("warp")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            create_engine("warp")

    def test_spec_field_validates_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            ExperimentSpec(design="spin_mesh", engine="warp")

    def test_effective_engine_resolves_env(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        spec = ExperimentSpec(design="spin_mesh")
        assert spec.effective_engine() == DEFAULT_ENGINE
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        assert spec.effective_engine() == "fast"
        pinned = ExperimentSpec(design="spin_mesh", engine="reference")
        assert pinned.effective_engine() == "reference"


class TestSpecSerialization:
    def test_engine_round_trips(self):
        spec = ExperimentSpec(design="spin_mesh", engine="fast")
        data = spec.to_dict()
        assert data["engine"] == "fast"
        assert ExperimentSpec.from_dict(data) == spec

    def test_unset_engine_hashes_like_a_pre_engine_spec(self):
        spec = ExperimentSpec(design="spin_mesh")
        data = spec.to_dict()
        # No key at all (not None): pre-engine-field campaign manifests
        # must keep their content keys, or no old campaign could resume.
        assert "engine" not in data
        assert ExperimentSpec.from_dict(data).content_key() \
            == spec.content_key()

    def test_pinned_engines_hash_differently(self):
        unset = ExperimentSpec(design="spin_mesh")
        fast = ExperimentSpec(design="spin_mesh", engine="fast")
        reference = ExperimentSpec(design="spin_mesh", engine="reference")
        assert len({unset.content_key(), fast.content_key(),
                    reference.content_key()}) == 3


class TestDeprecationShim:
    def _network(self):
        return Network(MeshTopology(3, 3), NetworkConfig(vcs_per_vnet=1),
                       MinimalAdaptiveRouting(1), spin=SpinParams(tdd=16),
                       seed=1)

    def test_shim_warns_and_builds_a_working_loop(self):
        network = self._network()
        pattern = make_pattern("uniform", network.topology.num_nodes, 3)
        traffic = SyntheticTraffic(network, pattern, 0.1, seed=1,
                                   stop_at=50)
        with pytest.warns(DeprecationWarning,
                          match="build_simulation_loop"):
            simulator = build_simulation_loop(network, traffic=traffic)
        simulator.run(100)
        assert simulator.cycle == 100
        assert network.stats.packets_delivered > 0

    def test_shim_respects_engine_argument(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert build_simulation_loop(self._network(),
                                         engine="fast").name == "fast"


class TestCampaignEngineProvenance:
    def _specs(self):
        sim = SimulationConfig(warmup_cycles=20, measure_cycles=60,
                               drain_cycles=60, deadlock_abort_cycles=200)
        base = ExperimentSpec(design="spin_mesh", mesh_side=4, tdd=16,
                              injection_rate=0.05, sim=sim)
        return base.curve([0.05, 0.08])

    def _run_campaign(self, directory, specs):
        from repro.harness.campaign import CampaignEngine

        report = CampaignEngine(specs, directory=directory).run()
        assert report.completed and report.clean
        return report

    def test_journal_records_the_engine(self, tmp_path, monkeypatch):
        from repro.harness.campaign import CampaignJournal

        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        self._run_campaign(tmp_path, self._specs())
        records, torn = CampaignJournal(tmp_path).load()
        assert torn == 0
        assert [r["engine"] for r in records] \
            == [DEFAULT_ENGINE] * len(records)

    def test_resume_refuses_engine_mismatch(self, tmp_path, monkeypatch):
        from repro.harness.campaign import CampaignEngine

        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        specs = self._specs()
        self._run_campaign(tmp_path, specs)
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        with pytest.raises(ConfigurationError, match="different engine"):
            CampaignEngine(specs, directory=tmp_path).run()

    def test_engineless_journal_records_resume_anywhere(self, tmp_path,
                                                        monkeypatch):
        import json

        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        specs = self._specs()
        self._run_campaign(tmp_path, specs)
        # Strip the engine field, simulating a pre-engine journal.
        journal = tmp_path / "journal.jsonl"
        lines = []
        for line in journal.read_text().splitlines():
            record = json.loads(line)
            record.pop("engine", None)
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
        journal.write_text("\n".join(lines) + "\n")
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        report = self._run_campaign(tmp_path, specs)
        assert report.counters.get("points_resumed") == len(specs)


class TestEnginePropertyParity:
    @settings(max_examples=12, deadline=None)
    @given(
        side=st.integers(min_value=3, max_value=5),
        vcs=st.integers(min_value=1, max_value=2),
        rate=st.sampled_from([0.05, 0.10, 0.20, 0.35]),
        seed=st.integers(min_value=0, max_value=2 ** 16),
        tdd=st.sampled_from([8, 16, 32]),
    )
    def test_random_small_meshes_produce_identical_points(
            self, side, vcs, rate, seed, tdd):
        """Property: for random small mesh configs, the fast engine's
        SweepPoint is byte-identical to the reference engine's."""
        design = f"mesh:minadaptive-spin-{vcs}vc"
        sim = SimulationConfig(warmup_cycles=40, measure_cycles=160,
                               drain_cycles=160,
                               deadlock_abort_cycles=400)
        points = {}
        for engine in ("reference", "fast"):
            # Packet uids come from a process-global counter; reset it so
            # both runs label identical packets identically.
            packet_module._packet_ids = itertools.count()
            spec = ExperimentSpec(design=design, mesh_side=side,
                                  injection_rate=rate, seed=seed, tdd=tdd,
                                  sim=sim, engine=engine)
            _, point = spec.run()
            points[engine] = point.to_dict()
        assert points["fast"] == points["reference"]
