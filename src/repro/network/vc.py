"""Virtual channel state.

A VC buffer holds at most one packet (virtual cut-through with packet-deep
buffers, the regime of the paper's implementation).  The life cycle is:

* **idle** — no packet, and any previous occupant's tail has drained.
* **reserved/arriving** — allocated by an upstream grant; the head flit lands
  ``link_latency`` cycles later and the packet becomes *ready* after the
  router pipeline latency.
* **blocked/ready** — the packet competes in switch allocation.
* **frozen** — SPIN has pinned the packet for a synchronized spin; it is
  excluded from normal allocation until the spin or a kill_move.
* **draining** — the packet won allocation; flits stream out for ``length``
  cycles after which the VC is idle again.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.network.packet import Packet


class VirtualChannel:
    """One virtual channel at a router input port."""

    __slots__ = (
        "router", "inport", "index", "vnet",
        "packet", "head_arrival", "ready_at", "tail_arrival",
        "free_at", "active_since",
        "frozen", "freeze_outport", "freeze_source", "freeze_spin_cycle",
        "freeze_path_index",
    )

    #: Process-wide freeze-state epoch, bumped by every ``freeze()`` /
    #: ``clear_freeze()``.  Engines compare it around control callbacks to
    #: detect "did that call touch any freeze state?" without scanning VCs
    #: (freezing is the only datapath-visible mutation controllers perform
    #: outside the reserve/release event funnel).
    freeze_epoch = 0

    def __init__(self, router: int, inport: int, index: int, vnet: int) -> None:
        self.router = router
        self.inport = inport
        self.index = index
        self.vnet = vnet
        self.packet: Optional[Packet] = None
        self.head_arrival = 0
        self.ready_at = 0
        self.tail_arrival = 0
        #: First cycle at which the VC may be re-allocated after draining.
        self.free_at = 0
        #: Cycle the VC was last allocated (paper: "active since"), used by
        #: FAvORS' least-active-VC output selection.
        self.active_since = 0
        self.frozen = False
        self.freeze_outport = -1
        self.freeze_source = -1
        self.freeze_spin_cycle = -1
        self.freeze_path_index = -1

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------
    def is_idle(self, now: int) -> bool:
        """Free for allocation by an upstream packet."""
        return self.packet is None and now >= self.free_at

    def is_active(self) -> bool:
        """Occupied (reserved, arriving, blocked, or frozen)."""
        return self.packet is not None

    def is_ready(self, now: int) -> bool:
        """Has a packet whose head may compete in switch allocation."""
        return self.packet is not None and now >= self.ready_at

    def fully_arrived(self, now: int) -> bool:
        """The whole packet, tail included, is resident in this buffer."""
        return self.packet is not None and now >= self.tail_arrival

    def active_time(self, now: int) -> int:
        """Cycles since the VC last became active (0 when idle)."""
        if self.packet is None:
            return 0
        return now - self.active_since

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def reserve(self, packet: Packet, now: int, link_latency: int,
                router_latency: int) -> None:
        """Allocate this VC to an in-flight packet granted upstream at ``now``."""
        if not self.is_idle(now):
            raise ProtocolError(
                f"VC {self.router}:{self.inport}.{self.index} allocated while busy"
            )
        self.packet = packet
        self.head_arrival = now + link_latency
        self.ready_at = now + link_latency + router_latency
        self.tail_arrival = now + link_latency + packet.length - 1
        self.active_since = now

    def release(self, now: int) -> Packet:
        """The packet won allocation and starts draining at ``now``."""
        if self.packet is None:
            raise ProtocolError(
                f"VC {self.router}:{self.inport}.{self.index} released while empty"
            )
        packet = self.packet
        self.packet = None
        self.free_at = now + packet.length
        self.clear_freeze()
        return packet

    def freeze(self, outport: int, source: int, spin_cycle: int,
               path_index: int) -> None:
        """Pin the resident packet for a synchronized spin (SPIN move SM)."""
        if self.packet is None:
            raise ProtocolError("cannot freeze an empty VC")
        self.frozen = True
        self.freeze_outport = outport
        self.freeze_source = source
        self.freeze_spin_cycle = spin_cycle
        self.freeze_path_index = path_index
        VirtualChannel.freeze_epoch += 1

    def clear_freeze(self) -> None:
        """Unfreeze (kill_move, spin completion, or safety timeout)."""
        self.frozen = False
        self.freeze_outport = -1
        self.freeze_source = -1
        self.freeze_spin_cycle = -1
        self.freeze_path_index = -1
        VirtualChannel.freeze_epoch += 1

    def __repr__(self) -> str:
        state = "idle" if self.packet is None else (
            "frozen" if self.frozen else "active")
        return (f"VC(r{self.router} p{self.inport}.{self.index} "
                f"vnet{self.vnet} {state})")
