"""Unit tests for the flattened butterfly and fat tree topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import FatTreeTopology
from repro.topology.fbfly import FlattenedButterflyTopology


class TestFlattenedButterfly:
    def test_structure(self):
        fbfly = FlattenedButterflyTopology(4)
        fbfly.validate()
        assert fbfly.num_routers == 16
        # Radix: (k-1) row + (k-1) column peers.
        assert all(fbfly.radix(r) == 6 for r in range(16))

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            FlattenedButterflyTopology(1)

    def test_concentration(self):
        fbfly = FlattenedButterflyTopology(3, concentration=2)
        assert fbfly.num_nodes == 18
        assert fbfly.router_of_node(5) == 2

    def test_diameter_two(self):
        fbfly = FlattenedButterflyTopology(4)
        for src in range(16):
            for dst in range(16):
                assert fbfly.min_hops(src, dst) <= 2

    def test_min_hops_matches_bfs(self):
        fbfly = FlattenedButterflyTopology(3)
        bfs = fbfly._all_pairs_hops()
        for src in range(9):
            for dst in range(9):
                assert fbfly.min_hops(src, dst) == bfs[src][dst]

    def test_row_and_column_ports(self):
        fbfly = FlattenedButterflyTopology(4)
        router = fbfly.router_at(2, 1)
        row_peer = fbfly.router_at(0, 1)
        port = fbfly.row_port_to(router, 0)
        neighbor, _, _ = fbfly.neighbors(router)[port]
        assert neighbor == row_peer
        col_peer = fbfly.router_at(2, 3)
        port = fbfly.column_port_to(router, 3)
        neighbor, _, _ = fbfly.neighbors(router)[port]
        assert neighbor == col_peer

    def test_self_port_rejected(self):
        fbfly = FlattenedButterflyTopology(4)
        with pytest.raises(TopologyError):
            fbfly.row_port_to(fbfly.router_at(2, 1), 2)


class TestFatTree:
    def test_structure(self):
        tree = FatTreeTopology(num_leaves=4, num_spines=2,
                               terminals_per_leaf=2)
        tree.validate()
        assert tree.num_routers == 6
        assert tree.num_nodes == 8
        assert tree.radix(0) == 2      # leaf: one port per spine
        assert tree.radix(tree.spine_id(0)) == 4  # spine: one per leaf

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(1, 1)

    def test_terminals_only_on_leaves(self):
        tree = FatTreeTopology(4, 2, terminals_per_leaf=3)
        assert all(tree.is_leaf(tree.router_of_node(n))
                   for n in range(tree.num_nodes))

    def test_min_hops(self):
        tree = FatTreeTopology(4, 2)
        assert tree.min_hops(0, 1) == 2          # leaf -> spine -> leaf
        assert tree.min_hops(0, tree.spine_id(1)) == 1
        assert tree.min_hops(tree.spine_id(0), tree.spine_id(1)) == 2

    def test_min_hops_matches_bfs(self):
        tree = FatTreeTopology(4, 3)
        bfs = tree._all_pairs_hops()
        for src in range(tree.num_routers):
            for dst in range(tree.num_routers):
                assert tree.min_hops(src, dst) == bfs[src][dst]

    def test_path_diversity_equals_spines(self):
        # Every spine is a productive first hop between distinct leaves.
        from repro.config import NetworkConfig
        from repro.network.network import Network
        from repro.network.packet import Packet
        from repro.routing.adaptive import MinimalAdaptiveRouting

        tree = FatTreeTopology(4, 3, terminals_per_leaf=1)
        network = Network(tree, NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(0))
        packet = Packet(0, 2, 0, 2, 1)
        ports = network.routing.candidate_outports(network.routers[0], packet)
        assert len(ports) == 3
