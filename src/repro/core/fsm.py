"""SPIN counter-FSM states (paper Fig. 4a).

Every router carries one counter with a seven-state FSM.  The upper half of
the paper's figure (MOVE, FORWARD_PROGRESS, PROBE_MOVE, KILL_MOVE) applies
to the recovery-*initiating* router; the lower half (DD, FROZEN) to the
other routers of a deadlocked chain; OFF is shared.
"""

from __future__ import annotations

from enum import Enum


class SpinState(Enum):
    """States of the per-router SPIN counter FSM."""

    #: No occupied VCs to watch.
    OFF = "off"
    #: Deadlock detection: counting down ``tDD`` on a pointed VC.
    DD = "dd"
    #: (initiator) Probe returned; move sent; awaiting its return.
    MOVE = "move"
    #: (non-initiator) A VC is frozen; counting to the spin cycle.
    FROZEN = "frozen"
    #: (initiator) Move returned; counting to the spin cycle.
    FORWARD_PROGRESS = "forward_progress"
    #: (initiator) Spin done; probe_move sent (or scheduled); awaiting return.
    PROBE_MOVE = "probe_move"
    #: (initiator) Recovery failed mid-way; kill_move sent; awaiting return.
    KILL_MOVE = "kill_move"


#: States in which this router is the active recovery initiator.
INITIATOR_STATES = frozenset({
    SpinState.MOVE,
    SpinState.FORWARD_PROGRESS,
    SpinState.PROBE_MOVE,
    SpinState.KILL_MOVE,
})

#: States the move manager may interrupt into FROZEN when a move /
#: probe_move freezes a VC here (``SpinController._freeze``); an initiator
#: mid-recovery keeps its own state and only records the freeze token.
FREEZABLE_STATES = frozenset({SpinState.OFF, SpinState.DD})

#: The **atomic** transition relation: ``state -> states one controller
#: handler call may move it to`` (paper Fig. 4a edges plus the defensive
#: resets the implementation adds).  "Atomic" means a single handler —
#: one SM reception, one executor callback, one watchdog/escape tick —
#: which is the granularity the model checker
#: (:mod:`repro.verify.model`) steps at and audits this table against.
#: The per-cycle relation the runtime oracle checks
#: (:data:`repro.verify.invariants.ILLEGAL_TRANSITIONS`) is strictly
#: looser, because one cycle chains several handlers (a spin callback,
#: then a batch of SM arrivals, then the tick).
LEGAL_ATOMIC_TRANSITIONS = {
    # Occupancy wakes the counter; _freeze defensively covers OFF too.
    SpinState.OFF: frozenset({SpinState.DD, SpinState.FROZEN}),
    # _go_off / _accept_own_probe / _freeze.
    SpinState.DD: frozenset({
        SpinState.OFF, SpinState.MOVE, SpinState.FROZEN,
    }),
    # Own move returned / kills (watchdog, rival latch, stale VC) /
    # on_spin_complete-on_spin_aborted resets.
    SpinState.MOVE: frozenset({
        SpinState.FORWARD_PROGRESS, SpinState.KILL_MOVE, SpinState.DD,
    }),
    # Thaw by kill_move, overdue escape, spin completion.
    SpinState.FROZEN: frozenset({SpinState.DD}),
    # Spin complete (to PROBE_MOVE when the repeat-spin optimization is
    # on), abort, overdue escape.
    SpinState.FORWARD_PROGRESS: frozenset({
        SpinState.DD, SpinState.PROBE_MOVE,
    }),
    # Own probe_move returned / kills / abort and spin resets.
    SpinState.PROBE_MOVE: frozenset({
        SpinState.FORWARD_PROGRESS, SpinState.KILL_MOVE, SpinState.DD,
    }),
    # Own kill returned or retries exhausted: _finish_recovery, whose
    # pointer sweep may find no occupied VC and park the counter OFF.
    SpinState.KILL_MOVE: frozenset({SpinState.DD, SpinState.OFF}),
}
