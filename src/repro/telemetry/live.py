"""Live campaign observability: streaming worker telemetry.

The post-hoc telemetry layers (:mod:`repro.telemetry.observer`,
:mod:`repro.telemetry.export`) only become visible after a run finishes.
This module is the *live* counterpart: workers ship small periodic frames
— heartbeat, point progress, per-point counter deltas — across the fork
boundary to the campaign supervisor, which merges them into a rolling
``status.json`` next to the campaign journal, a pull snapshot API, and a
Prometheus-style exposition (:mod:`repro.telemetry.prometheus`).

Wire protocol (``repro.telemetry-stream/v1``)
---------------------------------------------

Frames travel over a Unix ``SOCK_STREAM`` socket whose path is published
in the ``REPRO_STREAM_SOCKET`` environment variable (workers of both
:class:`~repro.harness.supervision.SupervisedPool` and
:class:`~repro.harness.parallel.ParallelRunner` inherit it across
``fork``).  Each frame is length-prefixed JSONL::

    <decimal byte length> SP <compact JSON object> LF

The prefix lets the decoder distinguish a *torn* frame (bytes still in
flight — wait for more) from a *corrupt* one (bad prefix or JSON —
resync at the next newline and count it).  Frame types:

``hello``        worker announces itself (carries the schema tag)
``heartbeat``    liveness only
``point_start``  worker begins a point (key, rate, attempt, cycle budget)
``progress``     cycles done, delivered/injected packets, SPIN episodes
``event``        one-off worker events (chaos injections, retries)
``point_end``    point finished; carries the point's event-counter deltas

Every frame carries ``worker`` (pid), ``seq`` (per-worker monotonic) and
``t`` (wall seconds).  The aggregator tolerates torn frames, corrupt
bytes, and out-of-order/stale sequence numbers per worker.

Determinism contract
--------------------

Streaming is *observation only*: no frame ever feeds back into a
:class:`~repro.stats.sweep.SweepPoint`, a journal record, or a results
artifact, so a streamed ``--jobs N`` sweep is byte-identical to a
non-streamed ``--jobs 1`` sweep (proven by test, like the campaign
counters in :mod:`repro.telemetry.campaign`).  A worker that cannot send
(full buffer, supervisor gone) drops the frame and keeps simulating —
shipping never blocks or fails the simulation.
"""

from __future__ import annotations

import json
import os
import select
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

#: Version tag of the frame schema.
STREAM_FORMAT = "repro.telemetry-stream/v1"

#: Version tag of the rolling status snapshot.
STATUS_FORMAT = "repro.campaign-status/v1"

#: Environment variable naming the supervisor's Unix socket.
STREAM_SOCKET_ENV = "REPRO_STREAM_SOCKET"

#: File names inside a campaign directory (next to the journal).
STATUS_NAME = "status.json"
STREAM_LOG_NAME = "stream.jsonl"

#: Default seconds without any frame after which a dispatched worker is
#: *displayed* as hung (supervision kills on its own ``hang_timeout``).
DEFAULT_HANG_AFTER = 10.0

_COMPACT = {"sort_keys": True, "separators": (",", ":")}

#: Longest accepted decimal length prefix (1 MB frames are already absurd).
_MAX_PREFIX_DIGITS = 8


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, object]) -> bytes:
    """Encode one frame as length-prefixed JSONL bytes."""
    payload = json.dumps(frame, **_COMPACT).encode("utf-8")
    return b"%d %s\n" % (len(payload), payload)


class FrameDecoder:
    """Incremental decoder tolerating torn, partial and corrupt frames.

    Feed arbitrary byte chunks; complete frames come out in order.  A
    frame split across chunks stays buffered until its remaining bytes
    arrive.  A malformed prefix or JSON body skips to the next newline
    (``frames_corrupt``) so one bad write cannot poison the stream.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self.frames_decoded = 0
        self.frames_corrupt = 0

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Consume ``data``; return every frame completed by it."""
        self._buffer += data
        frames: List[Dict[str, object]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Dict[str, object]]:
        buffer = self._buffer
        while buffer:
            space = buffer.find(b" ", 0, _MAX_PREFIX_DIGITS + 1)
            if space < 0:
                if len(buffer) > _MAX_PREFIX_DIGITS:
                    buffer = self._resync(buffer)
                    continue
                break  # torn prefix: wait for more bytes
            prefix = buffer[:space]
            if not prefix.isdigit():
                buffer = self._resync(buffer)
                continue
            length = int(prefix)
            end = space + 1 + length
            if len(buffer) < end + 1:
                break  # torn body: wait for more bytes
            body, tail = buffer[space + 1:end], buffer[end:end + 1]
            if tail != b"\n":
                buffer = self._resync(buffer)
                continue
            buffer = buffer[end + 1:]
            try:
                frame = json.loads(body.decode("utf-8"))
                if not isinstance(frame, dict):
                    raise ValueError("not an object")
            except (ValueError, UnicodeDecodeError):
                self.frames_corrupt += 1
                continue
            self._buffer = buffer
            self.frames_decoded += 1
            return frame
        self._buffer = buffer
        return None

    def _resync(self, buffer: bytes) -> bytes:
        """Skip a corrupt region up to (and including) the next newline."""
        self.frames_corrupt += 1
        newline = buffer.find(b"\n")
        return b"" if newline < 0 else buffer[newline + 1:]


# ----------------------------------------------------------------------
# Worker side: the shipper
# ----------------------------------------------------------------------
class TelemetryShipper:
    """Ships frames from a worker; never blocks, never raises.

    Args:
        send: ``(bytes) -> None`` transport; may raise ``OSError`` /
            ``BlockingIOError`` — both are swallowed (the frame is
            dropped and counted, or the transport marked dead).
        worker: Worker identity in frames (defaults to the pid).
        interval: Minimum wall seconds between throttled frames
            (heartbeats and progress).
    """

    def __init__(self, send: Callable[[bytes], None],
                 worker: Optional[int] = None,
                 interval: float = 0.2) -> None:
        self._send = send
        self.worker = worker if worker is not None else os.getpid()
        self.interval = interval
        self.seq = 0
        self.frames_dropped = 0
        self.alive = True
        self._next_due = 0.0
        self._point: Optional[str] = None

    # -- transport -----------------------------------------------------
    def _emit(self, type_: str, **fields) -> None:
        if not self.alive:
            return
        self.seq += 1
        frame = {"type": type_, "worker": self.worker, "seq": self.seq,
                 "t": round(time.time(), 6)}
        frame.update(fields)
        try:
            self._send(encode_frame(frame))
        except BlockingIOError:
            self.frames_dropped += 1
        except OSError:
            self.alive = False  # supervisor gone: go quiet, keep running

    def close(self) -> None:
        self.alive = False
        closer = getattr(self._send, "close", None)
        if closer is not None:
            try:
                closer()
            except OSError:  # pragma: no cover
                pass

    # -- frame kinds -----------------------------------------------------
    def hello(self) -> None:
        self._emit("hello", schema=STREAM_FORMAT)

    def heartbeat(self) -> None:
        """Throttled liveness frame (any frame refreshes liveness too)."""
        now = time.monotonic()
        if now < self._next_due:
            return
        self._next_due = now + self.interval
        self._emit("heartbeat")

    def point_start(self, key: str, rate: float, cycles_total: int,
                    attempt: int = 0) -> None:
        self._point = key
        self._next_due = 0.0
        self._emit("point_start", key=key, rate=rate,
                   cycles_total=cycles_total, attempt=attempt)

    def event(self, name: str, **fields) -> None:
        self._emit("event", name=name, key=self._point, **fields)

    def point_end(self, key: str, ok: bool, wall_time: float,
                  events: Optional[Dict[str, int]] = None) -> None:
        self._point = None
        self._emit("point_end", key=key, ok=ok,
                   wall_time=round(wall_time, 6),
                   events=dict(events or {}),
                   frames_dropped=self.frames_dropped)

    # -- progress sink (installed around simulate_point) ----------------
    def update(self, cycle: int, cycles_total: int, network) -> None:
        """Throttled progress frame; cheap no-op between intervals.

        This is the hook :func:`repro.stats.sweep.simulate_point` calls
        once per wedge-poll chunk — the stats gathering below only runs
        when a frame is actually due.
        """
        now = time.monotonic()
        if now < self._next_due or self._point is None:
            return
        self._next_due = now + self.interval
        stats = network.stats
        self._emit("progress", key=self._point, cycles_done=cycle,
                   cycles_total=cycles_total,
                   delivered=stats.packets_delivered,
                   injected=stats.packets_injected,
                   spins=stats.events.get("spins", 0))


class _SocketTransport:
    """Non-blocking Unix-socket send for :class:`TelemetryShipper`."""

    def __init__(self, path: str) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(1.0)
        self._sock.connect(path)
        self._sock.setblocking(False)

    def __call__(self, data: bytes) -> None:
        self._sock.send(data)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


# Process-global worker shipper + progress sink.  The shipper is keyed on
# (pid, socket path) so forked children never reuse a parent's socket and
# a finished campaign (env cleared) detaches cleanly.
_WORKER_SHIPPER: Optional[tuple] = None
_PROGRESS_SINK: Optional[TelemetryShipper] = None


def ensure_worker_shipper() -> Optional[TelemetryShipper]:
    """The calling process's shipper, per ``REPRO_STREAM_SOCKET``.

    Returns ``None`` when streaming is off (env unset) or the supervisor
    socket cannot be reached — the worker then runs exactly as before.
    """
    global _WORKER_SHIPPER
    path = os.environ.get(STREAM_SOCKET_ENV)
    pid = os.getpid()
    if not path:
        if _WORKER_SHIPPER is not None:
            _WORKER_SHIPPER[2].close()
            _WORKER_SHIPPER = None
        return None
    if _WORKER_SHIPPER is not None:
        cached_pid, cached_path, shipper = _WORKER_SHIPPER
        if cached_pid == pid and cached_path == path and shipper.alive:
            return shipper
        shipper.close()
        _WORKER_SHIPPER = None
    try:
        shipper = TelemetryShipper(_SocketTransport(path), worker=pid)
    except OSError:
        return None
    _WORKER_SHIPPER = (pid, path, shipper)
    shipper.hello()
    return shipper


def set_progress_sink(sink: Optional[TelemetryShipper]) -> None:
    """Install (or clear) the per-point progress sink for this process."""
    global _PROGRESS_SINK
    _PROGRESS_SINK = sink


def progress_sink() -> Optional[TelemetryShipper]:
    """The installed progress sink, if any (consulted per sweep chunk)."""
    return _PROGRESS_SINK


# ----------------------------------------------------------------------
# Supervisor side: the aggregator
# ----------------------------------------------------------------------

#: Point statuses only the authoritative engine callbacks may leave —
#: advisory frames must never downgrade them (the listener thread can
#: apply a frame after the engine already completed the point).
_TERMINAL = frozenset({"ok", "failed", "resumed"})


class StreamAggregator:
    """Merges worker frames + supervisor notifications into one snapshot.

    Thread-safe: frames arrive from the listener thread while the
    campaign engine and :class:`~repro.harness.supervision.SupervisedPool`
    notify dispatch/death/hang from the main thread.

    Worker-health classification (the supervision edge case): a worker
    that dies *between* dispatch and its first heartbeat is classified
    ``dead`` — never ``hung`` — and keeps its last-known point, because
    dispatch attribution is supervisor-side (:meth:`worker_dispatched`)
    and :meth:`worker_dead` takes precedence over heartbeat age.
    """

    def __init__(self, keys: Optional[Sequence[str]] = None,
                 rates: Optional[Sequence[float]] = None,
                 hang_after: Optional[float] = DEFAULT_HANG_AFTER,
                 max_failures: Optional[int] = None,
                 latency_cap: float = 4.0,
                 registry=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        from repro.telemetry.registry import MetricsRegistry

        self.hang_after = hang_after
        self.max_failures = max_failures
        self.latency_cap = latency_cap
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        self._decoders: Dict[object, FrameDecoder] = {}
        self._last_seq: Dict[int, int] = {}
        self._workers: Dict[int, Dict[str, object]] = {}
        self._points: Dict[str, Dict[str, object]] = {}
        self._keys: List[str] = list(keys or [])
        self._sweep_points: Dict[str, object] = {}
        self.counters: Dict[str, int] = {}
        for index, key in enumerate(self._keys):
            self._points[key] = {
                "index": index,
                "rate": (rates[index] if rates is not None
                         and index < len(rates) else None),
                "status": "pending",
                "cycles_done": 0,
                "cycles_total": None,
                "worker": None,
                "attempts": 0,
                "delivered": 0,
                "injected": 0,
                "spins": 0,
                "error_class": None,
            }

    # -- byte ingestion (listener thread) -------------------------------
    def feed_bytes(self, conn_id: object, data: bytes
                   ) -> List[Dict[str, object]]:
        """Decode one connection's bytes; apply and return the frames."""
        with self._lock:
            decoder = self._decoders.setdefault(conn_id, FrameDecoder())
            before = decoder.frames_corrupt
            frames = decoder.feed(data)
            corrupt = decoder.frames_corrupt - before
            if corrupt:
                self._bump("frames_corrupt", corrupt)
            for frame in frames:
                self._apply(frame)
            return frames

    def feed_frames(self, frames: Sequence[Dict[str, object]]) -> None:
        """Apply already-decoded frames (tests, log replay)."""
        with self._lock:
            for frame in frames:
                self._apply(frame)

    # -- supervisor notifications (main thread) --------------------------
    def worker_dispatched(self, pid: int, key: str) -> None:
        with self._lock:
            worker = self._worker(pid)
            worker["point"] = key
            worker["dispatched_at"] = self._clock()
            worker["flag"] = None
            point = self._points.get(key)
            if point is not None:
                if point["status"] in ("pending", "running"):
                    point["status"] = "running"
                point["worker"] = pid

    def worker_dead(self, pid: int) -> None:
        """Supervisor saw the corpse; wins over any heartbeat-age guess."""
        with self._lock:
            self._worker(pid)["flag"] = "dead"
            self._bump("workers_dead")

    def worker_hung(self, pid: int) -> None:
        with self._lock:
            self._worker(pid)["flag"] = "hung"
            self._bump("workers_hung")

    def worker_respawned(self) -> None:
        with self._lock:
            self._bump("workers_respawned")

    def point_done(self, key: str, ok: bool, point=None,
                   wall_time: float = 0.0,
                   error_class: Optional[str] = None) -> None:
        """Authoritative completion from the campaign engine."""
        with self._lock:
            entry = self._points.get(key)
            if entry is not None:
                entry["status"] = "ok" if ok else "failed"
                entry["error_class"] = None if ok else error_class
                if point is not None:
                    entry["cycles_done"] = point.cycles
                    entry["cycles_total"] = point.cycles
                    entry["delivered"] = point.delivered
                    entry["spins"] = point.events.get("spins", 0)
            if ok:
                self._bump("points_ok")
                if point is not None:
                    self._sweep_points[key] = point
            else:
                self._bump("points_failed")

    def point_retry(self, key: str, attempt: int) -> None:
        with self._lock:
            entry = self._points.get(key)
            if entry is not None:
                entry["attempts"] = max(entry["attempts"], attempt + 1)
            self._bump("retries")

    def mark_resumed(self, keys: Sequence[str], points=None) -> None:
        """Journal-replayed points (campaign resume)."""
        with self._lock:
            for key in keys:
                entry = self._points.get(key)
                if entry is not None:
                    entry["status"] = "resumed"
                if points is not None and key in points:
                    self._sweep_points[key] = points[key]
            self._bump("points_resumed", len(list(keys)))

    # -- frame application (lock held) -----------------------------------
    def _apply(self, frame: Dict[str, object]) -> None:
        pid = frame.get("worker")
        type_ = frame.get("type")
        if not isinstance(pid, int) or not isinstance(type_, str):
            self._bump("frames_invalid")
            return
        seq = frame.get("seq")
        stale = (isinstance(seq, int)
                 and seq <= self._last_seq.get(pid, 0))
        if isinstance(seq, int) and not stale:
            self._last_seq[pid] = seq
        worker = self._worker(pid)
        worker["last_frame"] = self._clock()
        self._bump("frames_received")
        if stale:
            # Out-of-order / duplicated frame: still proves liveness, but
            # its payload may undo newer state — drop it.
            self._bump("frames_stale")
            return
        if type_ == "point_start":
            key = frame.get("key")
            worker["point"] = key
            worker["flag"] = None
            point = self._points.get(key)
            # Frames are advisory: the engine's point_done()/mark_resumed()
            # are authoritative, and the listener thread may apply a frame
            # after the engine already finished the point — never downgrade
            # a terminal status back to running.
            if point is not None and point["status"] not in _TERMINAL:
                point["status"] = "running"
                point["worker"] = pid
                point["cycles_total"] = frame.get("cycles_total")
                point["cycles_done"] = 0
                attempt = frame.get("attempt", 0)
                if isinstance(attempt, int):
                    point["attempts"] = max(point["attempts"], attempt + 1)
        elif type_ == "progress":
            point = self._points.get(frame.get("key"))
            if point is not None and point["status"] not in _TERMINAL:
                for field, name in (("cycles_done", "cycles_done"),
                                    ("cycles_total", "cycles_total"),
                                    ("delivered", "delivered"),
                                    ("injected", "injected"),
                                    ("spins", "spins")):
                    value = frame.get(name)
                    if value is not None:
                        point[field] = value
        elif type_ == "point_end":
            worker["point"] = None
            worker["points_done"] = worker.get("points_done", 0) + 1
            events = frame.get("events")
            if isinstance(events, dict):
                for name, value in events.items():
                    if isinstance(value, (int, float)):
                        self.registry.counter(f"stream_{name}").inc(
                            int(value))
            dropped = frame.get("frames_dropped")
            if isinstance(dropped, int) and dropped:
                self.counters["frames_dropped_by_workers"] = max(
                    self.counters.get("frames_dropped_by_workers", 0),
                    dropped)
        elif type_ == "event":
            name = frame.get("name")
            if isinstance(name, str):
                self._bump(f"events_{name}")
        # hello / heartbeat: liveness refresh above is all they carry.

    def _worker(self, pid: int) -> Dict[str, object]:
        worker = self._workers.get(pid)
        if worker is None:
            worker = {"point": None, "last_frame": None,
                      "dispatched_at": None, "flag": None,
                      "points_done": 0, "first_seen": self._clock()}
            self._workers[pid] = worker
        return worker

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- classification & snapshot ---------------------------------------
    def _worker_state(self, worker: Dict[str, object], now: float) -> str:
        flag = worker.get("flag")
        if flag in ("dead", "hung"):
            return flag
        if worker.get("point") is None:
            return "idle"
        reference = max(filter(None, (worker.get("last_frame"),
                                      worker.get("dispatched_at"),
                                      worker.get("first_seen"))),
                        default=now)
        if self.hang_after is not None and now - reference > self.hang_after:
            return "hung"
        return "running"

    def snapshot(self, status: str = "running") -> Dict[str, object]:
        """One coherent status payload (the ``status.json`` body)."""
        with self._lock:
            now = self._clock()
            workers = {}
            for pid, worker in sorted(self._workers.items()):
                last = worker.get("last_frame")
                workers[str(pid)] = {
                    "state": self._worker_state(worker, now),
                    "point": worker.get("point"),
                    "points_done": worker.get("points_done", 0),
                    "heartbeat_age_s": (round(now - last, 3)
                                        if last is not None else None),
                }
            points = {key: dict(entry)
                      for key, entry in self._points.items()}
            states = [entry["status"] for entry in points.values()]
            done = sum(1 for s in states if s in ("ok", "resumed", "failed"))
            ok = sum(1 for s in states if s in ("ok", "resumed"))
            failed = sum(1 for s in states if s == "failed")
            running = [key for key in self._keys
                       if points.get(key, {}).get("status") == "running"]
            elapsed = max(1e-9, now - self._started_at)
            finished_live = (self.counters.get("points_ok", 0)
                             + self.counters.get("points_failed", 0))
            throughput = finished_live / elapsed
            remaining = len(self._keys) - done if self._keys else 0
            eta = (round(remaining / throughput, 1)
                   if throughput > 0 and remaining > 0 else None)
            payload = {
                "schema": STATUS_FORMAT,
                "status": status,
                "updated_unix": round(time.time(), 3),
                "campaign": {
                    "total_points": len(self._keys),
                    "done": done,
                    "ok": ok,
                    "failed": failed,
                    "resumed": self.counters.get("points_resumed", 0),
                    "running": running,
                    "throughput_pps": round(throughput, 4),
                    "eta_seconds": eta,
                    "elapsed_seconds": round(elapsed, 1),
                    "failure_budget": {
                        "max": self.max_failures,
                        "burned": failed,
                    },
                    "saturation": self._saturation(),
                },
                "workers": workers,
                "points": points,
                "counters": dict(sorted(self.counters.items())),
                "stream_totals": self.registry.counter_totals(),
            }
            return payload

    def _saturation(self) -> Dict[str, object]:
        """Live saturation-cursor state over the contiguous ok prefix."""
        from repro.stats.sweep import SaturationCursor

        cursor = SaturationCursor(self.latency_cap)
        cut = False
        cut_rate = None
        sustained = 0.0
        for key in self._keys:
            point = self._sweep_points.get(key)
            if point is None:
                break
            if cursor.push(point):
                cut = True
                cut_rate = point.injection_rate
                break
            sustained = point.injection_rate
        return {"cut": cut, "cut_rate": cut_rate,
                "sustained_rate": sustained}


# ----------------------------------------------------------------------
# The live status plane (listener thread + rolling status.json)
# ----------------------------------------------------------------------
class LiveStatusPlane:
    """Owns the stream socket, the aggregator, and ``status.json``.

    Created by :class:`~repro.harness.campaign.CampaignEngine` when a
    campaign directory is in play.  :meth:`start` binds a Unix socket,
    publishes its path in ``REPRO_STREAM_SOCKET`` (inherited by forked
    workers *and* reachable by the in-process serial path), and spawns a
    background thread that drains connections, appends decoded frames to
    ``stream.jsonl``, and atomically rewrites ``status.json`` every
    ``status_interval`` seconds.  All failures are contained: a plane
    that cannot start degrades to no-op observation, never a dead sweep.
    """

    def __init__(self, directory: Union[str, Path],
                 keys: Optional[Sequence[str]] = None,
                 rates: Optional[Sequence[float]] = None,
                 hang_after: Optional[float] = DEFAULT_HANG_AFTER,
                 max_failures: Optional[int] = None,
                 latency_cap: float = 4.0,
                 status_interval: float = 0.5,
                 log_frames: bool = True) -> None:
        self.directory = Path(directory)
        self.status_interval = status_interval
        self.log_frames = log_frames
        self.aggregator = StreamAggregator(
            keys=keys, rates=rates, hang_after=hang_after,
            max_failures=max_failures, latency_cap=latency_cap)
        self.enabled = False
        self.socket_path: Optional[str] = None
        self._listener: Optional[socket.socket] = None
        self._conns: Dict[int, socket.socket] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._wake_r, self._wake_w = -1, -1
        self._log_handle = None
        self._tmpdir: Optional[str] = None
        self._previous_env: Optional[str] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "LiveStatusPlane":
        """Bind, publish the env var, spawn the drain thread; contained."""
        if self.enabled:
            return self
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.socket_path = self._pick_socket_path()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
            listener.listen(64)
            listener.setblocking(False)
            self._listener = listener
            self._wake_r, self._wake_w = os.pipe()
            os.set_blocking(self._wake_r, False)
            if self.log_frames:
                self._log_handle = open(
                    self.directory / STREAM_LOG_NAME, "a",
                    encoding="utf-8")
        except OSError:
            self._cleanup_io()
            return self  # degrade: campaign runs unobserved
        self._previous_env = os.environ.get(STREAM_SOCKET_ENV)
        os.environ[STREAM_SOCKET_ENV] = self.socket_path
        self._stop.clear()
        self.write_status("running")
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-stream", daemon=True)
        self._thread.start()
        self.enabled = True
        return self

    def stop(self, status: str = "completed") -> None:
        """Stop draining, restore the env, write the final status."""
        if self._previous_env is None:
            os.environ.pop(STREAM_SOCKET_ENV, None)
        else:
            os.environ[STREAM_SOCKET_ENV] = self._previous_env
        self._previous_env = None
        if self._thread is not None:
            self._stop.set()
            try:
                os.write(self._wake_w, b"x")
            except OSError:  # pragma: no cover
                pass
            self._thread.join(timeout=5.0)
            self._thread = None
        self._cleanup_io()
        self.enabled = False
        try:
            self.write_status(status)
        except OSError:  # pragma: no cover - disk gone
            pass

    def _pick_socket_path(self) -> str:
        path = str(self.directory / "stream.sock")
        if len(path) > 90:
            # AF_UNIX paths are capped (~108 bytes); fall back to a short
            # tmp path when the campaign dir nests deep.
            self._tmpdir = tempfile.mkdtemp(prefix="repro-stream-")
            path = os.path.join(self._tmpdir, "s.sock")
        if os.path.exists(path):
            os.unlink(path)
        return path

    def _cleanup_io(self) -> None:
        for conn in list(self._conns.values()):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        for fd in (self._wake_r, self._wake_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover
                    pass
        self._wake_r, self._wake_w = -1, -1
        if self._log_handle is not None:
            try:
                self._log_handle.close()
            except OSError:  # pragma: no cover
                pass
            self._log_handle = None
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:  # pragma: no cover
                pass
        if self._tmpdir is not None:
            try:
                os.rmdir(self._tmpdir)
            except OSError:  # pragma: no cover
                pass
            self._tmpdir = None

    # -- drain thread ----------------------------------------------------
    def _drain_loop(self) -> None:
        next_status = 0.0
        while not self._stop.is_set():
            readable = [self._listener, self._wake_r]
            readable.extend(self._conns.values())
            timeout = max(0.05, min(self.status_interval,
                                    next_status - time.monotonic()))
            try:
                ready, _, _ = select.select(readable, [], [], timeout)
            except (OSError, ValueError):  # pragma: no cover - teardown
                break
            for source in ready:
                if source is self._listener:
                    self._accept()
                elif source == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:  # pragma: no cover
                        pass
                else:
                    self._read_conn(source)
            now = time.monotonic()
            if now >= next_status:
                next_status = now + self.status_interval
                try:
                    self.write_status("running")
                except OSError:  # pragma: no cover - disk gone
                    pass

    def _accept(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            conn.setblocking(False)
            self._conns[conn.fileno()] = conn

    def _read_conn(self, conn: socket.socket) -> None:
        conn_id = conn.fileno()
        try:
            data = conn.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            self._conns.pop(conn_id, None)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            return
        frames = self.aggregator.feed_bytes(conn_id, data)
        if frames and self._log_handle is not None:
            try:
                for frame in frames:
                    self._log_handle.write(
                        json.dumps(frame, **_COMPACT) + "\n")
                self._log_handle.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass

    # -- status ----------------------------------------------------------
    def write_status(self, status: str) -> None:
        """Atomically rewrite ``status.json`` (crash leaves old or new)."""
        from repro.stats.results import atomic_write_text

        payload = self.aggregator.snapshot(status)
        atomic_write_text(self.directory / STATUS_NAME,
                          json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    # -- notification proxies (campaign engine) ---------------------------
    def point_done(self, key: str, ok: bool, point=None,
                   wall_time: float = 0.0,
                   error_class: Optional[str] = None) -> None:
        self.aggregator.point_done(key, ok, point=point,
                                   wall_time=wall_time,
                                   error_class=error_class)

    def point_retry(self, key: str, attempt: int) -> None:
        self.aggregator.point_retry(key, attempt)

    def mark_resumed(self, keys: Sequence[str], points=None) -> None:
        self.aggregator.mark_resumed(keys, points)


# ----------------------------------------------------------------------
# Stream-log aggregation (cli trace / cli report over a campaign dir)
# ----------------------------------------------------------------------
def read_stream_log(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load ``stream.jsonl`` frames, forgiving a torn final line."""
    path = Path(path)
    if not path.exists():
        return []
    frames: List[Dict[str, object]] = []
    lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            frame = json.loads(line)
            if not isinstance(frame, dict):
                raise ValueError
        except ValueError:
            if index == len(lines) - 1:
                break  # torn tail: the crash we survive
            continue  # skip interior garbage; streams are best-effort
        frames.append(frame)
    return frames


def stream_summary(frames: Sequence[Dict[str, object]]
                   ) -> Dict[str, object]:
    """Aggregate a frame log: totals by type, per-worker, per-point."""
    by_type: Dict[str, int] = {}
    workers: Dict[int, Dict[str, int]] = {}
    points: Dict[str, Dict[str, object]] = {}
    for frame in frames:
        type_ = frame.get("type", "?")
        by_type[type_] = by_type.get(type_, 0) + 1
        pid = frame.get("worker")
        if isinstance(pid, int):
            worker = workers.setdefault(pid, {"frames": 0, "points": 0})
            worker["frames"] += 1
            if type_ == "point_end":
                worker["points"] += 1
        key = frame.get("key")
        if isinstance(key, str):
            entry = points.setdefault(key, {"frames": 0, "wall_time": None,
                                            "ok": None})
            entry["frames"] += 1
            if type_ == "point_end":
                entry["wall_time"] = frame.get("wall_time")
                entry["ok"] = frame.get("ok")
    return {"frames": len(frames), "by_type": dict(sorted(by_type.items())),
            "workers": {str(k): v for k, v in sorted(workers.items())},
            "points": points}


def stream_chrome_trace(frames: Sequence[Dict[str, object]]
                        ) -> Dict[str, object]:
    """Convert a frame log to a Chrome ``trace_event`` campaign timeline.

    Workers become threads; each point execution is a complete ("X")
    slice from its ``point_start`` to ``point_end``, and progress frames
    become counter ("C") samples — load the file in ``chrome://tracing``
    or Perfetto to see the campaign's parallel schedule.
    """
    events: List[Dict[str, object]] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": "campaign"},
    }]
    seen_workers = set()
    open_points: Dict[int, Dict[str, object]] = {}
    base = min((f.get("t", 0.0) for f in frames
                if isinstance(f.get("t"), (int, float))), default=0.0)

    def ts(frame) -> float:
        t = frame.get("t", base)
        return round((t - base) * 1e6, 1)

    for frame in frames:
        pid = frame.get("worker")
        if not isinstance(pid, int):
            continue
        if pid not in seen_workers:
            seen_workers.add(pid)
            events.append({"ph": "M", "pid": 1, "tid": pid,
                           "name": "thread_name",
                           "args": {"name": f"worker-{pid}"}})
        type_ = frame.get("type")
        if type_ == "point_start":
            open_points[pid] = frame
        elif type_ == "point_end":
            start = open_points.pop(pid, None)
            start_ts = ts(start) if start is not None else ts(frame)
            events.append({
                "ph": "X", "pid": 1, "tid": pid,
                "name": str(frame.get("key")),
                "ts": start_ts,
                "dur": max(0.0, ts(frame) - start_ts),
                "args": {"ok": frame.get("ok"),
                         "wall_time": frame.get("wall_time")},
            })
        elif type_ == "progress":
            events.append({
                "ph": "C", "pid": 1, "tid": pid, "name": "cycles",
                "ts": ts(frame),
                "args": {"done": frame.get("cycles_done", 0)},
            })
    from repro.telemetry.export import CHROME_FORMAT

    return {"displayTimeUnit": "ms", "traceEvents": events,
            "metadata": {"format": CHROME_FORMAT,
                         "clock": "wall",
                         "source": STREAM_FORMAT}}
