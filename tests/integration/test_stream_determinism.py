"""Acceptance tests for the live observability plane (docs/OBSERVE.md).

The load-bearing property: streaming is observation only.  A streamed
``--jobs 2`` campaign produces byte-identical sweep results and identical
journal point payloads to a ``--no-stream --jobs 1`` run.  On top of
that: ``status.json`` updates while a campaign runs, survives SIGKILL,
and reports hung workers when chaos wedges one (the ``chaos``-marked
test reuses the ``REPRO_CHAOS`` hang injection).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.telemetry.live import STATUS_NAME, STREAM_LOG_NAME

SRC = Path(__file__).resolve().parents[2] / "src"
RATES = "0.02,0.04,0.06"


def sweep_args(campaign, output, jobs, extra=()):
    return [sys.executable, "-m", "repro.cli", "sweep",
            "--design", "spin_mesh", "--pattern", "uniform",
            "--rates", RATES, "--mesh-side", "4", "--tdd", "32",
            "--warmup", "50", "--measure", "300", "--drain", "200",
            "--abort-cycles", "300", "--jobs", str(jobs),
            "--campaign", str(campaign), "--output", str(output),
            *extra]


def cli_env(**overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_STREAM_SOCKET", None)
    env.update(overrides)
    return env


def run_cli(args, timeout=180, **overrides):
    return subprocess.run(args, env=cli_env(**overrides),
                          stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True,
                          timeout=timeout)


def journal_points(directory):
    """Journal records stripped of wall-clock noise, sorted by key."""
    records = []
    for line in (Path(directory) / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        record.pop("wall_time", None)
        records.append(record)
    return sorted(records, key=lambda r: r["key"])


class TestByteIdentity:
    def test_streamed_jobs2_equals_unstreamed_jobs1(self, tmp_path):
        streamed = run_cli(sweep_args(tmp_path / "camp_stream",
                                      tmp_path / "streamed.json", 2))
        assert streamed.returncode == 0, streamed.stdout
        quiet = run_cli(sweep_args(tmp_path / "camp_quiet",
                                   tmp_path / "quiet.json", 1,
                                   ["--no-stream"]))
        assert quiet.returncode == 0, quiet.stdout

        assert (tmp_path / "streamed.json").read_bytes() \
            == (tmp_path / "quiet.json").read_bytes()
        assert journal_points(tmp_path / "camp_stream") \
            == journal_points(tmp_path / "camp_quiet")
        # The streamed campaign has its operational artifacts; the quiet
        # one has none — and neither leaks into the result files above.
        assert (tmp_path / "camp_stream" / STATUS_NAME).exists()
        assert (tmp_path / "camp_stream" / STREAM_LOG_NAME).exists()
        assert not (tmp_path / "camp_quiet" / STATUS_NAME).exists()

    def test_streamed_jobs1_also_identical(self, tmp_path):
        streamed = run_cli(sweep_args(tmp_path / "camp_a",
                                      tmp_path / "a.json", 1))
        assert streamed.returncode == 0, streamed.stdout
        quiet = run_cli(sweep_args(tmp_path / "camp_b",
                                   tmp_path / "b.json", 1,
                                   ["--no-stream"]))
        assert quiet.returncode == 0, quiet.stdout
        assert (tmp_path / "a.json").read_bytes() \
            == (tmp_path / "b.json").read_bytes()
        assert journal_points(tmp_path / "camp_a") \
            == journal_points(tmp_path / "camp_b")


class TestStatusLifecycle:
    def test_status_updates_while_running_and_survives_kill(self, tmp_path):
        """SIGKILL mid-campaign leaves a readable status; resume finishes."""
        import signal

        campaign = tmp_path / "camp"
        output = tmp_path / "out.json"
        # Long drain makes points slow enough to observe mid-flight.
        args = [sys.executable, "-m", "repro.cli", "sweep",
                "--design", "spin_mesh", "--pattern", "uniform",
                "--rates", "0.02,0.04,0.06,0.08", "--mesh-side", "4",
                "--tdd", "32", "--warmup", "200", "--measure", "2000",
                "--drain", "1500", "--abort-cycles", "2000",
                "--jobs", "2", "--campaign", str(campaign),
                "--output", str(output)]
        proc = subprocess.Popen(args, env=cli_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        status_path = campaign / STATUS_NAME
        seen_running = None
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if status_path.exists():
                    try:
                        payload = json.loads(status_path.read_text())
                    except ValueError:
                        continue  # mid-replace; atomic rename races reads
                    if payload.get("workers"):
                        seen_running = payload
                        break
                time.sleep(0.02)
            assert seen_running is not None, \
                "status.json never showed workers while the sweep ran"
            assert seen_running["status"] == "running"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # The kill left the last status readable (atomic writes only).
        after_kill = json.loads(status_path.read_text())
        assert after_kill["schema"] == "repro.campaign-status/v1"

        resume = run_cli([sys.executable, "-m", "repro.cli", "sweep",
                          "--resume", str(campaign),
                          "--output", str(output)])
        assert resume.returncode == 0, resume.stdout
        final = json.loads(status_path.read_text())
        assert final["status"] == "completed"
        total = final["campaign"]["total_points"]
        assert final["campaign"]["done"] == total == 4
        # Journal-replayed points show up as resumed in the final status.
        statuses = {p["status"] for p in final["points"].values()}
        assert statuses <= {"ok", "resumed"}


@pytest.mark.chaos
class TestHungWorkerVisibility:
    def test_chaos_hang_surfaces_in_status(self, tmp_path):
        """A chaos-wedged worker shows as hung/dead, then the campaign
        still converges through supervision's kill-and-retry."""
        campaign = tmp_path / "camp"
        args = [sys.executable, "-m", "repro.cli", "sweep",
                "--design", "spin_mesh", "--pattern", "uniform",
                "--rates", "0.02,0.04", "--mesh-side", "4", "--tdd", "32",
                "--warmup", "50", "--measure", "300", "--drain", "200",
                "--abort-cycles", "300", "--jobs", "2",
                "--hang-timeout", "1.5", "--retries", "2",
                "--campaign", str(campaign),
                "--output", str(tmp_path / "out.json")]
        # Every first attempt hangs well past the 1.5s hang budget.
        proc = run_cli(args, timeout=300,
                       REPRO_CHAOS="hang:p=1.0,hang=30,seed=5")
        assert proc.returncode == 0, proc.stdout

        status = json.loads((campaign / STATUS_NAME).read_text())
        assert status["status"] == "completed"
        assert status["campaign"]["ok"] == 2
        counters = status["counters"]
        # Supervision killed the wedged workers and the aggregator saw it:
        # each hang surfaces as a hung (or, if the kill won the race, dead)
        # worker plus a respawn and a retry.
        assert counters.get("workers_hung", 0) \
            + counters.get("workers_dead", 0) >= 1
        assert counters.get("workers_respawned", 0) >= 1
        assert counters.get("retries", 0) >= 1
