"""Unit tests for torus and ring topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE, RingTopology
from repro.topology.torus import TorusTopology


class TestTorus:
    def test_every_router_has_four_ports(self):
        torus = TorusTopology(4, 4)
        assert all(torus.radix(r) == 4 for r in range(torus.num_routers))

    def test_validate(self):
        TorusTopology(4, 3).validate()

    def test_rejects_width_two(self):
        with pytest.raises(TopologyError):
            TorusTopology(2, 4)

    def test_wraparound_neighbor(self):
        torus = TorusTopology(4, 4)
        assert torus.neighbor_in(torus.router_at(0, 0), WEST) == torus.router_at(3, 0)
        assert torus.neighbor_in(torus.router_at(0, 0), NORTH) == torus.router_at(0, 3)

    def test_min_hops_uses_wraparound(self):
        torus = TorusTopology(8, 8)
        assert torus.min_hops(torus.router_at(0, 0), torus.router_at(7, 0)) == 1
        assert torus.min_hops(torus.router_at(0, 0), torus.router_at(4, 4)) == 8

    def test_min_hops_matches_bfs(self):
        torus = TorusTopology(4, 4)
        bfs = torus._all_pairs_hops()
        for src in range(torus.num_routers):
            for dst in range(torus.num_routers):
                assert torus.min_hops(src, dst) == bfs[src][dst]

    def test_directions_toward_prefers_short_way(self):
        torus = TorusTopology(8, 8)
        dirs = torus.directions_toward(torus.router_at(0, 0), torus.router_at(7, 0))
        assert dirs == [WEST]

    def test_directions_toward_ties_give_both(self):
        torus = TorusTopology(8, 8)
        dirs = torus.directions_toward(torus.router_at(0, 0), torus.router_at(4, 0))
        assert set(dirs) == {EAST, WEST}


class TestRing:
    def test_structure(self):
        ring = RingTopology(6)
        ring.validate()
        assert ring.num_routers == 6
        assert all(ring.radix(r) == 2 for r in range(6))

    def test_rejects_tiny_ring(self):
        with pytest.raises(TopologyError):
            RingTopology(2)

    def test_neighbors(self):
        ring = RingTopology(5)
        assert ring.clockwise_neighbor(4) == 0
        assert ring.counter_clockwise_neighbor(0) == 4

    def test_ports_are_consistent(self):
        ring = RingTopology(5)
        for router in range(5):
            neighbors = ring.neighbors(router)
            assert neighbors[CLOCKWISE][0] == ring.clockwise_neighbor(router)
            assert neighbors[COUNTER_CLOCKWISE][0] == (
                ring.counter_clockwise_neighbor(router))

    def test_min_hops_bidirectional(self):
        ring = RingTopology(6)
        assert ring.min_hops(0, 5) == 1
        assert ring.min_hops(0, 3) == 3

    def test_min_hops_unidirectional(self):
        ring = RingTopology(6, bidirectional=False)
        assert ring.min_hops(0, 5) == 5
        assert ring.min_hops(5, 0) == 1
