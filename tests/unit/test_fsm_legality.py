"""Audit of the two FSM legality relations against each other and the
model checker.

PR 8's audit of ``repro.core.fsm`` split legality into two relations:

* :data:`repro.core.fsm.LEGAL_ATOMIC_TRANSITIONS` — what one *handler*
  may do (the granularity the model checker steps at);
* :data:`repro.verify.invariants.ILLEGAL_TRANSITIONS` — what a whole
  *cycle* may never produce, deliberately permissive because one cycle
  chains an executor callback, a priority-ordered SM batch, and the
  counter tick into composite transitions.

These tests pin the consistency contract between them, the audit's
concrete outcome (the freeze guard), and the checker-facing derivation
:data:`repro.verify.invariants.ATOMIC_ILLEGAL_TRANSITIONS`.
"""

import pytest

from repro.config import SpinParams
from repro.core.fsm import (
    FREEZABLE_STATES,
    INITIATOR_STATES,
    LEGAL_ATOMIC_TRANSITIONS,
    SpinState,
)
from repro.core.messages import MoveMessage
from repro.sim.engine import Simulator
from repro.verify.invariants import (
    ATOMIC_ILLEGAL_TRANSITIONS,
    ILLEGAL_TRANSITIONS,
)
from repro.verify.model import ModelChecker
from repro.verify.model.designs import DESIGNS

from tests.conftest import craft_ring_deadlock, make_ring_network


class TestCatalogConsistency:
    def test_every_state_covered(self):
        assert set(LEGAL_ATOMIC_TRANSITIONS) == set(SpinState)
        assert set(ILLEGAL_TRANSITIONS) == set(SpinState)
        assert set(ATOMIC_ILLEGAL_TRANSITIONS) == set(SpinState)

    def test_atomic_illegal_is_exact_complement(self):
        for state in SpinState:
            legal = LEGAL_ATOMIC_TRANSITIONS[state]
            illegal = ATOMIC_ILLEGAL_TRANSITIONS[state]
            assert legal & illegal == frozenset()
            assert legal | illegal | {state} == frozenset(SpinState)

    def test_nothing_atomically_legal_is_cycle_illegal(self):
        """A single legal handler step is also a legal cycle (the cycle
        that happens to run only that handler), so the per-cycle catalog
        must be a subset of the atomic one."""
        for state in SpinState:
            overlap = LEGAL_ATOMIC_TRANSITIONS[state] \
                & ILLEGAL_TRANSITIONS[state]
            assert not overlap, (
                f"{state.name}: {sorted(s.name for s in overlap)} atomic-"
                f"legal yet cycle-illegal — the catalogs contradict")

    def test_self_loops_never_listed(self):
        for state in SpinState:
            assert state not in LEGAL_ATOMIC_TRANSITIONS[state]
            assert state not in ILLEGAL_TRANSITIONS[state]

    def test_audited_off_transitions(self):
        """The audit's conclusion: only DD and KILL_MOVE may park the
        counter OFF within one cycle (every other state's in-cycle path
        to DD leaves an occupied VC behind)."""
        may_go_off = {state for state in SpinState
                      if state is not SpinState.OFF
                      and SpinState.OFF not in ILLEGAL_TRANSITIONS[state]}
        assert may_go_off == {SpinState.DD, SpinState.KILL_MOVE}

    def test_initiator_states_unchanged(self):
        assert INITIATOR_STATES == frozenset({
            SpinState.MOVE, SpinState.FORWARD_PROGRESS,
            SpinState.PROBE_MOVE, SpinState.KILL_MOVE})
        assert FREEZABLE_STATES == frozenset({SpinState.OFF, SpinState.DD})


class TestCheckerAgreesWithCatalogs:
    @pytest.fixture(scope="class")
    def race_result(self):
        design = DESIGNS["ring3"]
        return ModelChecker(
            design.model_config(),
            weights=design.weights(),
            persistence_bound=design.persistence_bound(),
        ).run(max_states=50_000)

    def test_observed_transitions_atomically_legal(self, race_result):
        assert race_result.complete and race_result.ok
        for before, after in race_result.fsm_transitions_seen:
            assert SpinState[after] in \
                LEGAL_ATOMIC_TRANSITIONS[SpinState[before]], (before, after)

    def test_observed_transitions_cycle_legal(self, race_result):
        for before, after in race_result.fsm_transitions_seen:
            assert SpinState[after] not in \
                ILLEGAL_TRANSITIONS[SpinState[before]], (before, after)

    def test_exhaustive_space_exercises_the_fsm(self, race_result):
        reached = {SpinState[b] for b, _ in race_result.fsm_transitions_seen} \
            | {SpinState[a] for _, a in race_result.fsm_transitions_seen}
        assert {SpinState.DD, SpinState.MOVE, SpinState.FROZEN,
                SpinState.FORWARD_PROGRESS,
                SpinState.KILL_MOVE} <= reached


class TestFreezeGuardRegression:
    """The audit's fix: ``_freeze`` may move the FSM only from a
    freezable state — a move SM landing on a rival initiator freezes the
    *VC* but must not clobber the rival's FSM (the silently-permitted
    MOVE -> FROZEN the model checker flagged)."""

    def _frozen_scene(self):
        network = make_ring_network(m=4, spin=SpinParams(tdd=8))
        craft_ring_deadlock(network)
        simulator = Simulator()
        simulator.register(network)
        simulator.run(3)  # countdown armed, everyone in DD
        return network

    @pytest.mark.parametrize("state", sorted(
        (s for s in SpinState if s not in FREEZABLE_STATES),
        key=lambda s: s.name))
    def test_freeze_keeps_non_freezable_state(self, state):
        network = self._frozen_scene()
        controller = network.spin.controllers[1]
        controller.state = state
        inport, index = controller.pointer or (1, 0)
        vc = controller.router.inports[inport][index]
        move = MoveMessage(sender=3, send_cycle=5, path=(0,),
                           spin_cycle=60, hop_index=2)
        controller._freeze(vc, move, now=10)
        assert vc.frozen and vc.freeze_source == 3
        assert controller.state is state
        assert controller.latched_source == 3

    @pytest.mark.parametrize("state", sorted(FREEZABLE_STATES,
                                             key=lambda s: s.name))
    def test_freeze_advances_freezable_state(self, state):
        network = self._frozen_scene()
        controller = network.spin.controllers[1]
        controller.state = state
        inport, index = controller.pointer or (1, 0)
        vc = controller.router.inports[inport][index]
        move = MoveMessage(sender=3, send_cycle=5, path=(0,),
                           spin_cycle=60, hop_index=2)
        controller._freeze(vc, move, now=10)
        assert controller.state is SpinState.FROZEN
        assert controller.deadline == 60

    def test_mutated_model_reproduces_the_original_bug(self):
        """With the guard-skipping mutation re-applied in the abstract,
        the checker still finds the atomic MOVE -> FROZEN counterexample
        — the regression stays caught end to end."""
        design = DESIGNS["ring3"]
        result = ModelChecker(
            design.model_config(mutation="freeze_ignores_state_guard"),
            weights=design.weights(),
            persistence_bound=design.persistence_bound(),
        ).run(max_states=50_000)
        cex = result.counterexample
        assert cex is not None
        assert cex.violation.prop == "fsm_legality"
        assert "MOVE -> FROZEN" in cex.violation.detail
