"""Property-based tests for the results serialization layer.

Two invariants (docs/API.md, ``repro.sweep-results/v1``):

* every representable :class:`SweepPoint` survives ``to_dict`` /
  ``from_dict`` — and the full JSON text round trip — unchanged, so a
  results file is a faithful archive of a sweep;
* serialization is canonical: dumping the same points twice yields the
  same bytes, and parsing-then-dumping is a fixed point.

Floats are drawn finite (no NaN/inf): JSON numbers round-trip finite
IEEE-754 doubles exactly, and the simulator never emits non-finite
measurements.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.results import (
    RESULTS_SCHEMA,
    results_from_json,
    results_to_json,
)
from repro.stats.sweep import SweepPoint

_FINITE = st.floats(allow_nan=False, allow_infinity=False)
_RATE = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
_COUNT = st.integers(min_value=0, max_value=2**40)
_EVENT_KEYS = st.sampled_from(
    ["spins", "probes_sent", "sm_dropped", "watchdog_fires", "reroutes",
     "faults_injected", "recoveries_after_fault"])

POINTS = st.builds(
    SweepPoint,
    injection_rate=_RATE,
    mean_latency=_FINITE,
    p99_latency=_FINITE,
    throughput=_FINITE,
    delivery_ratio=_RATE,
    wedged=st.booleans(),
    delivered=_COUNT,
    events=st.dictionaries(_EVENT_KEYS, _COUNT, max_size=4),
    link_utilization=st.tuples(_RATE, _RATE, _RATE),
    packets_lost=_COUNT,
    cycles=_COUNT,
)

META = st.dictionaries(
    st.sampled_from(["design", "pattern", "seed", "note"]),
    st.one_of(st.text(max_size=12), st.integers(-10, 10), st.none()),
    max_size=3)


@given(POINTS)
@settings(max_examples=80)
def test_point_dict_round_trip(point):
    assert SweepPoint.from_dict(point.to_dict()) == point


@given(POINTS)
@settings(max_examples=80)
def test_point_dict_is_json_safe(point):
    through_json = json.loads(json.dumps(point.to_dict()))
    assert SweepPoint.from_dict(through_json) == point


@given(st.lists(POINTS, max_size=5), META)
@settings(max_examples=60)
def test_results_text_round_trip(points, meta):
    text = results_to_json(points, meta)
    points_back, meta_back = results_from_json(text)
    assert points_back == points
    assert meta_back == meta


@given(st.lists(POINTS, max_size=4), META)
@settings(max_examples=40)
def test_serialization_is_canonical(points, meta):
    text = results_to_json(points, meta)
    # Same inputs -> same bytes; parse-then-dump is a fixed point.
    assert results_to_json(points, meta) == text
    back_points, back_meta = results_from_json(text)
    assert results_to_json(back_points, back_meta) == text
    assert json.loads(text)["schema"] == RESULTS_SCHEMA
