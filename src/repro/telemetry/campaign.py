"""Campaign durability counters, surfaced through the metrics registry.

The campaign engine (:mod:`repro.harness.campaign`) tallies its recovery
machinery — resumed points, retries, worker respawns, hang kills, failure
classes, torn journal records — in a plain dict so the hot path stays
dependency-free.  This module is the bridge into observability: it mirrors
those tallies into ``campaign_*`` :class:`~repro.telemetry.registry.Counter`
families, where they sit next to the SPIN span and sample metrics and flow
through the same exporters (docs/TELEMETRY.md, docs/CAMPAIGNS.md).

Counters are deliberately **not** merged into ``SweepPoint.events`` or the
results artifact: how often a campaign was interrupted and resumed is an
operational fact about one execution, and folding it into the artifact
would break the byte-identity guarantee between interrupted and
uninterrupted runs.
"""

from __future__ import annotations

from typing import Dict

from repro.telemetry.registry import MetricsRegistry

#: Counter families the campaign engine may report (prefix applied here).
CAMPAIGN_COUNTER_FAMILIES = (
    "campaign_points_resumed",
    "campaign_retries",
    "campaign_workers_respawned",
    "campaign_workers_hung",
    "campaign_failures_transient",
    "campaign_failures_permanent",
    "campaign_journal_torn_records",
)

_PREFIX = "campaign_"


def record_campaign_counters(registry: MetricsRegistry,
                             counters: Dict[str, int]) -> MetricsRegistry:
    """Mirror an engine's counters dict into ``campaign_*`` families.

    Unknown counter names are still recorded (prefixed), so a newer engine
    never silently drops telemetry on an older registry consumer.
    """
    for name in sorted(counters):
        value = counters[name]
        if value:
            registry.counter(_PREFIX + name).inc(value)
    return registry


def campaign_counter_totals(registry: MetricsRegistry) -> Dict[str, int]:
    """All ``campaign_*`` counter totals currently in ``registry``."""
    return {name: value
            for name, value in registry.counter_totals().items()
            if name.startswith(_PREFIX)}
