"""Statistics collection and experiment sweeps."""

from repro.stats.collectors import NetworkStats, LatencySummary
from repro.stats.sweep import InjectionSweep, SweepPoint, run_point

__all__ = [
    "NetworkStats",
    "LatencySummary",
    "InjectionSweep",
    "SweepPoint",
    "run_point",
]
