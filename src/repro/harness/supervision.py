"""Worker supervision: heartbeats, hang detection, respawn, retries.

:class:`~repro.harness.parallel.ParallelRunner` contains failures; this
layer *recovers* from them.  It exists because a long campaign meets
failure modes a ``ProcessPoolExecutor`` cannot express:

* a worker that **hangs** (runaway simulation, wedged import) occupies its
  slot forever — the pool never times it out, it must be killed;
* a worker that **dies** (OOM-kill, segfault) permanently breaks a
  ``ProcessPoolExecutor``; a supervised pool replaces the corpse and keeps
  the remaining work flowing;
* a **transient** failure (either of the above) deserves a bounded retry,
  while a **deterministic** one (the spec itself raises) never does —
  retrying it would burn the failure budget on a foregone conclusion.

:class:`SupervisedPool` runs ``multiprocessing`` workers, each fed through
its own private task queue.  The supervisor records which task it handed
to which worker *at dispatch time*, so attribution never depends on a
message from the worker itself — a worker that dies the instant it starts
(before any queue feeder thread flushes a byte) is still charged with
exactly the task it was holding, which is failed transiently while the
worker is respawned.  Everything observable lands in a counters dict the
campaign engine merges into telemetry (:mod:`repro.telemetry.campaign`).

Determinism note: supervision only decides *when* and *where* a spec runs,
never what it computes — a retried spec re-runs the identical seeded
simulation, so recovery cannot perturb results (the property the chaos
suite checks byte-for-byte).  Retry *backoff* is deterministic too: the
jitter is a stable digest of ``(spec key, attempt)``, not an RNG draw.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_module
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import multiprocessing

from repro.errors import ConfigurationError
from repro.harness.parallel import SpecResult
from repro.harness.runner import ExperimentSpec

#: Failure classes (see :func:`classify_failure`).
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Error-text prefixes that mark a failure as infrastructure (retryable),
#: not a property of the spec itself.
_TRANSIENT_PREFIXES = ("worker crashed", "worker hung", "timeout", "not run")


def classify_failure(error: Optional[str]) -> str:
    """Classify a :class:`SpecResult` error as transient or deterministic.

    Transient failures (worker crash, hang, timeout, not-run) are
    infrastructure misfortunes: the same spec is expected to succeed on a
    healthy worker, so the retry path applies.  Everything else — a Python
    exception out of the spec's own simulation — is deterministic: the
    identical seeded run will fail identically, so it is journaled as a
    permanent failure immediately.
    """
    if not error:
        return DETERMINISTIC
    return (TRANSIENT if error.startswith(_TRANSIENT_PREFIXES)
            else DETERMINISTIC)


def error_class(error: Optional[str]) -> str:
    """Short class label for failure-summary tables (``worker crashed``,
    ``timeout``, ``worker raised``, ...)."""
    if not error:
        return "unknown"
    head = error.split("\n", 1)[0]
    label = head.split(":", 1)[0].strip()
    return label or "unknown"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        retries: Extra attempts after the first (0 disables retrying).
        base: Backoff before the first retry, in seconds.
        cap: Upper bound on any single backoff delay.
    """

    retries: int = 2
    base: float = 0.25
    cap: float = 8.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0",
                                     retries=self.retries)
        if self.base < 0 or self.cap < 0:
            raise ConfigurationError("backoff delays must be >= 0",
                                     base=self.base, cap=self.cap)

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-running ``key`` after ``attempt``.

        Exponential in the attempt number, capped, and jittered into
        [0.5x, 1.0x] by a stable digest of ``(key, attempt)`` — identical
        across processes and runs, so campaigns never gain a hidden
        wall-clock dependence while still de-thundering herds of retries.
        """
        bounded = min(self.cap, self.base * (2.0 ** attempt))
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2 ** 64
        return bounded * (0.5 + 0.5 * unit)


def run_attempt(spec: ExperimentSpec, attempt: int = 0) -> SpecResult:
    """Execute one attempt of a spec in the calling process.

    The single execution path shared by serial campaigns and pool workers:
    consults the chaos hook (:mod:`repro.harness.chaos`, active only when
    ``REPRO_CHAOS`` is set), then simulates with the same failure capture
    the :class:`~repro.harness.parallel.ParallelRunner` serial backend
    uses.

    When live streaming is active (``REPRO_STREAM_SOCKET`` published by a
    campaign's :class:`~repro.telemetry.live.LiveStatusPlane`), the
    attempt is bracketed by ``point_start``/``point_end`` frames and a
    progress sink is installed for the duration — all observation-only
    and dropped rather than ever blocking the simulation.
    """
    from repro.harness.chaos import chaos_from_env
    from repro.telemetry import live

    shipper = live.ensure_worker_shipper()
    key = spec.content_key() if shipper is not None else None
    if shipper is not None:
        total = (spec.sim.warmup_cycles + spec.sim.measure_cycles
                 + spec.sim.drain_cycles)
        shipper.point_start(key, spec.injection_rate, total, attempt)
        live.set_progress_sink(shipper)
    started = time.perf_counter()
    try:
        policy = chaos_from_env()
        if policy is not None:
            if shipper is not None:
                shipper.event("chaos_consulted", attempt=attempt)
            policy.inject(spec.content_key(), attempt)
        _, point = spec.run()
    except Exception:
        result = SpecResult(spec, None,
                            error="worker raised:\n"
                            + traceback.format_exc(),
                            wall_time=time.perf_counter() - started)
    else:
        result = SpecResult(spec, point,
                            wall_time=time.perf_counter() - started)
    finally:
        if shipper is not None:
            live.set_progress_sink(None)
    if shipper is not None:
        shipper.point_end(key, result.ok, result.wall_time,
                          events=(result.point.events
                                  if result.point is not None else None))
    return result


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: take from the private queue, run, report; ``None`` ends.

    SIGINT is ignored so a terminal Ctrl-C drains through the supervisor's
    graceful path instead of killing workers mid-point.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    pid = os.getpid()
    supervisor = os.getppid()
    while True:
        try:
            task = task_queue.get(timeout=1.0)
        except queue_module.Empty:
            # A SIGKILLed supervisor can't send sentinels; orphaned
            # workers notice the reparenting and exit on their own.
            if os.getppid() != supervisor:
                return
            from repro.telemetry import live

            shipper = live.ensure_worker_shipper()
            if shipper is not None:
                shipper.heartbeat()  # idle liveness for the status plane
            continue
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        if task is None:
            return
        task_id, attempt, spec = task
        result = run_attempt(spec, attempt)  # chaos may exit/hang here
        result_queue.put(("result", pid, task_id, attempt, result))


class SupervisedPool:
    """A process pool that survives its own workers.

    Differences from :class:`~concurrent.futures.ProcessPoolExecutor`:

    * a dead worker is detected, its in-flight task failed transiently
      (``worker crashed``), and a replacement spawned — the pool never
      "breaks";
    * a worker silent for longer than ``hang_timeout`` seconds after
      dispatch is killed and replaced, its task failed transiently
      (``worker hung``) — hung simulations cannot wedge a campaign;
    * dispatch is supervisor-driven: each worker has a private task queue
      and the supervisor records ``worker -> task`` at the moment it
      dispatches, so a worker that dies before reporting *anything* is
      still charged with exactly its task.  Submissions beyond the idle
      workers wait in a supervisor-side backlog, so the caller bounds how
      much work is committed (which is what makes graceful draining and
      failure-budget aborts prompt).

    Args:
        max_workers: Worker process count.
        hang_timeout: Seconds without completion after dispatch before a
            worker is declared hung (``None`` disables hang detection).
        poll_interval: Supervisor polling granularity in seconds.
        counters: Optional dict that receives ``workers_respawned`` /
            ``workers_hung`` tallies (shared with the campaign engine).
        stream: Optional :class:`~repro.telemetry.live.StreamAggregator`
            receiving supervisor-side health notifications — dispatch
            attribution (``worker_dispatched``), corpses (``worker_dead``)
            and hangs (``worker_hung``).  Dispatch/death attribution is
            supervisor-side on purpose: a worker that dies between
            dispatch and its first heartbeat is still classified *dead*
            (never hung) with its last-known point.
    """

    def __init__(self, max_workers: int,
                 hang_timeout: Optional[float] = None,
                 poll_interval: float = 0.05,
                 counters: Optional[Dict[str, int]] = None,
                 stream=None) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1",
                                     max_workers=max_workers)
        if hang_timeout is not None and hang_timeout <= 0:
            raise ConfigurationError("hang_timeout must be positive",
                                     hang_timeout=hang_timeout)
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive",
                                     poll_interval=poll_interval)
        self.max_workers = max_workers
        self.hang_timeout = hang_timeout
        self.poll_interval = poll_interval
        self.counters = counters if counters is not None else {}
        self.stream = stream
        self._context = multiprocessing.get_context()
        self._workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: pid -> that worker's private task queue
        self._worker_queues: Dict[int, object] = {}
        #: pid -> (task_id, attempt, dispatch monotonic time)
        self._assignments: Dict[int, Tuple[int, int, float]] = {}
        #: task_id -> (attempt, spec) for everything submitted, unfinished
        self._tasks: Dict[int, Tuple[int, ExperimentSpec]] = {}
        #: submitted but not yet dispatched to any worker
        self._backlog: deque = deque()
        self._result_queue = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SupervisedPool":
        """Spawn the workers; idempotent."""
        if self._started:
            return self
        self._result_queue = self._context.Queue()
        for _ in range(self.max_workers):
            self._spawn_worker()
        self._started = True
        return self

    def stop(self, force: bool = False) -> None:
        """Shut the pool down.

        Graceful stop sends one sentinel per worker and joins briefly;
        anything still alive afterwards (or everything, when ``force``) is
        killed — a supervised pool never leaves orphans behind.
        """
        if not self._started:
            return
        if not force:
            for pid in self._workers:
                try:
                    self._worker_queues[pid].put(None)
                except (KeyError, ValueError, OSError):  # pragma: no cover
                    pass
        for process in self._workers.values():
            if force:
                self._kill(process)
            else:
                process.join(timeout=1.0)
                if process.is_alive():
                    self._kill(process)
        self._workers.clear()
        self._assignments.clear()
        self._tasks.clear()
        self._backlog.clear()
        queues = list(self._worker_queues.values()) + [self._result_queue]
        self._worker_queues.clear()
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._started = False

    # ------------------------------------------------------------------
    # Work submission and collection
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Submitted tasks that have not produced an event yet."""
        return len(self._tasks)

    def submit(self, task_id: int, attempt: int,
               spec: ExperimentSpec) -> None:
        """Queue one attempt of one spec."""
        if not self._started:
            raise ConfigurationError("pool is not started")
        self._tasks[task_id] = (attempt, spec)
        self._backlog.append((task_id, attempt, spec))
        self._dispatch()

    def events(self, timeout: float = 0.2
               ) -> List[Tuple[int, int, SpecResult]]:
        """Collect completions for up to ``timeout`` seconds.

        Returns ``(task_id, attempt, SpecResult)`` triples.  Failed
        results carry ``worker crashed`` / ``worker hung`` error text (the
        transient classes); the supervisor has already respawned the
        worker by the time the event is returned.
        """
        out: List[Tuple[int, int, SpecResult]] = []
        deadline = time.monotonic() + timeout
        while True:
            block = max(0.0, min(self.poll_interval,
                                 deadline - time.monotonic()))
            try:
                message = self._result_queue.get(timeout=block)
            except queue_module.Empty:
                message = None
            while message is not None:
                self._handle(message, out)
                try:
                    message = self._result_queue.get_nowait()
                except queue_module.Empty:
                    message = None
            self._check_workers(out)
            self._dispatch()
            if out or time.monotonic() >= deadline:
                return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(task_queue, self._result_queue),
            daemon=True)
        process.start()
        self._workers[process.pid] = process
        self._worker_queues[process.pid] = task_queue

    def _dispatch(self) -> None:
        """Hand backlog tasks to idle workers, recording the assignment.

        Recording happens supervisor-side *before* the queue put, so even
        a worker that dies without ever sending a byte is charged with the
        task it was given.
        """
        if not self._backlog:
            return
        for pid in self._workers:
            if not self._backlog:
                return
            if pid in self._assignments:
                continue
            task_id, attempt, spec = self._backlog.popleft()
            self._assignments[pid] = (task_id, attempt, time.monotonic())
            if self.stream is not None:
                self.stream.worker_dispatched(pid, spec.content_key())
            self._worker_queues[pid].put((task_id, attempt, spec))

    @staticmethod
    def _kill(process) -> None:
        try:
            process.kill()
        except (AttributeError, OSError):  # pragma: no cover - py<3.7 compat
            process.terminate()
        process.join(timeout=1.0)

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _handle(self, message, out) -> None:
        _, pid, task_id, attempt, result = message
        self._assignments.pop(pid, None)
        current = self._tasks.get(task_id)
        if current is None or current[0] != attempt:
            return  # stale: the task was already failed over and retried
        del self._tasks[task_id]
        out.append((task_id, attempt, result))

    def _check_workers(self, out) -> None:
        """Detect corpses and hangs; fail their tasks, respawn workers."""
        now = time.monotonic()
        for pid, process in list(self._workers.items()):
            dead = not process.is_alive()
            assignment = self._assignments.get(pid)
            hung = (not dead and self.hang_timeout is not None
                    and assignment is not None
                    and now - assignment[2] > self.hang_timeout)
            if not dead and not hung:
                continue
            del self._workers[pid]
            self._assignments.pop(pid, None)
            stale_queue = self._worker_queues.pop(pid, None)
            if self.stream is not None:
                # Dead wins over hung: the supervisor saw the corpse, so a
                # worker that died before its first heartbeat is reported
                # dead with its last-known (dispatched) point.
                if dead:
                    self.stream.worker_dead(pid)
                else:
                    self.stream.worker_hung(pid)
            if hung:
                self._kill(process)
                self._bump("workers_hung")
            if stale_queue is not None:
                try:
                    stale_queue.close()
                    stale_queue.cancel_join_thread()
                except (ValueError, OSError):  # pragma: no cover
                    pass
            if assignment is not None:
                task_id, attempt, since = assignment
                current = self._tasks.get(task_id)
                if current is not None and current[0] == attempt:
                    del self._tasks[task_id]
                    if hung:
                        error = (f"worker hung: no completion within "
                                 f"{self.hang_timeout}s of dispatch")
                    else:
                        error = (f"worker crashed: exit code "
                                 f"{process.exitcode}")
                    out.append((task_id, attempt,
                                SpecResult(current[1], None, error=error)))
            self._bump("workers_respawned")
            if self.stream is not None:
                self.stream.worker_respawned()
            self._spawn_worker()
