"""Fault injection x parallel sweep x invariant oracle, all at once.

Satellite guarantee: a FaultInjector campaign run under ``--jobs N`` is
byte-identical to the serial run *with the oracle enabled* — the oracle
is a pure observer, so attaching it (in any worker) must not perturb the
simulation, and the fault-relaxed invariants must hold on every backend.
"""

import pytest

from repro.config import SimulationConfig
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import ExperimentSpec
from repro.stats.results import results_to_json

pytestmark = pytest.mark.faults

SIM = SimulationConfig(warmup_cycles=100, measure_cycles=500,
                       drain_cycles=500, deadlock_abort_cycles=600)
RATES = [0.04, 0.08, 0.12]


def _faulted_specs(verify: bool):
    specs = []
    for fault, fault_seed in [("sm_drop:p=0.05", 11),
                              ("link_down@300:r5-r6", 3),
                              ("sm_delay:p=0.10:d=4", 7)]:
        for rate in RATES:
            specs.append(ExperimentSpec(
                design="spin_mesh", pattern="uniform", injection_rate=rate,
                seed=2, mesh_side=4, tdd=32, faults=fault,
                fault_seed=fault_seed, sim=SIM, verify=verify))
    return specs


def _points(runner, specs):
    results = runner.run(specs)
    assert all(r.ok for r in results), \
        [str(r.error) for r in results if not r.ok]
    return [r.point for r in results]


class TestFaultedParallelWithOracle:
    def test_jobs2_byte_identical_to_serial(self):
        specs = _faulted_specs(verify=True)
        serial = _points(ParallelRunner(backend="serial"), specs)
        parallel = _points(
            ParallelRunner(max_workers=2, backend="process"), specs)
        assert serial == parallel
        # Byte-level identity of the serialized results documents.
        meta = {"campaign": "faults+oracle"}
        assert results_to_json(serial, meta) == results_to_json(
            parallel, meta)

    def test_oracle_holds_under_faults(self):
        """Raise-mode oracle (verify=True) in every worker: completing the
        run proves the fault-relaxed invariants held everywhere."""
        specs = _faulted_specs(verify=True)
        points = _points(
            ParallelRunner(max_workers=2, backend="process"), specs)
        assert all(point.invariant_violations == 0 for point in points)

    def test_oracle_is_a_pure_observer_under_faults(self):
        """verify=True vs verify=False must yield identical measurements
        (modulo the violation counter itself, which is 0 here anyway)."""
        with_oracle = _points(ParallelRunner(backend="serial"),
                              _faulted_specs(verify=True))
        without = _points(ParallelRunner(backend="serial"),
                          _faulted_specs(verify=False))
        assert with_oracle == without
