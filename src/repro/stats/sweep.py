"""Injection-rate sweeps: latency curves and saturation throughput.

The paper's Figs. 6 and 7 are latency-vs-injection curves; the numbers it
quotes are *saturation throughputs* — the offered load beyond which latency
diverges.  :class:`InjectionSweep` runs one simulation per rate (fresh
network each time), stops once saturation is passed, and reports the curve
plus the measured saturation point.

Two layers drive a single point:

* :func:`simulate_point` — the engine: takes *instantiated* components (a
  network, a traffic source, optionally a fault injector) and simulates the
  warmup/measure/drain windows into a :class:`SweepPoint`.  This is what
  :meth:`repro.harness.runner.ExperimentSpec.build` feeds.
* :func:`run_point` — the factory adapter kept for backward compatibility:
  builds the components from callables and delegates to
  :func:`simulate_point`.

The canonical traffic-factory signature is ``(network, rate, stop_at)``
(the shape :class:`InjectionSweep` always used).  The legacy two-argument
``(network, stop_at)`` shape is still accepted but deprecated; it is
wrapped in an adapter that raises a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine_api import create_engine

#: Relative tolerance for the declared-vs-configured injection-rate check.
_RATE_TOLERANCE = 1e-9


@dataclass
class SweepPoint:
    """Measurements of one simulation at one offered load."""

    injection_rate: float
    mean_latency: float
    p99_latency: float
    throughput: float
    delivery_ratio: float
    wedged: bool
    delivered: int
    events: Dict[str, int] = field(default_factory=dict)
    link_utilization: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    #: Packets destroyed in flight (fault injection / stranded reclamation).
    packets_lost: int = 0
    #: Cycles actually simulated (warmup + measure + drain, less any early
    #: wedge abort).  Feeds the cycles/sec benchmark accounting.
    cycles: int = 0
    #: Invariant-violation occurrences recorded by the runtime oracle
    #: (:mod:`repro.verify`); 0 when the oracle was off or found nothing.
    #: Per-family counts appear in :attr:`events` as ``violation_<name>``.
    invariant_violations: int = 0

    def saturated(self, zero_load_latency: float,
                  latency_cap: float = 4.0,
                  min_delivery: float = 0.85) -> bool:
        """Heuristic saturation test against the zero-load latency."""
        if self.wedged:
            return True
        if self.delivered == 0:
            return True
        if self.delivery_ratio < min_delivery:
            return True
        return self.mean_latency > latency_cap * max(1.0, zero_load_latency)

    # ------------------------------------------------------------------
    # Serialization (repro.stats.results JSON schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return {
            "injection_rate": self.injection_rate,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "throughput": self.throughput,
            "delivery_ratio": self.delivery_ratio,
            "wedged": self.wedged,
            "delivered": self.delivered,
            "events": {key: self.events[key] for key in sorted(self.events)},
            "link_utilization": list(self.link_utilization),
            "packets_lost": self.packets_lost,
            "cycles": self.cycles,
            "invariant_violations": self.invariant_violations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output.

        Unknown keys are rejected so schema drift fails loudly instead of
        silently dropping measurements.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SweepPoint field(s) {sorted(unknown)}",
                known=sorted(known))
        kwargs = dict(data)
        if "link_utilization" in kwargs:
            kwargs["link_utilization"] = tuple(kwargs["link_utilization"])
        if "events" in kwargs:
            kwargs["events"] = dict(kwargs["events"])
        return cls(**kwargs)


def simulate_point(network, traffic, sim_config: SimulationConfig,
                   injection_rate: Optional[float] = None,
                   injector=None,
                   raise_on_wedge: bool = False,
                   verify: bool = False,
                   oracle=None,
                   telemetry: bool = False,
                   telemetry_observer=None,
                   engine: Optional[str] = None,
                   profiler=None) -> SweepPoint:
    """Simulate already-built components through one measurement run.

    This is the single engine behind :func:`run_point`,
    :class:`InjectionSweep` and
    :meth:`repro.harness.runner.ExperimentSpec.run`.

    Args:
        network: The network under test (fresh, unsimulated).
        traffic: The traffic source component (bound to its rate).
        sim_config: Warmup/measure/drain windows, wedge threshold, and the
            ``wedge_poll_interval`` chunking of the measure/drain loop.
        injection_rate: The offered load this point *claims* to run at.
            When the traffic source exposes its configured rate (an
            ``injection_rate`` attribute, as :class:`SyntheticTraffic`
            does), the two must match — a mismatch raises
            :class:`~repro.errors.ConfigurationError` instead of silently
            recording a wrong x-coordinate.  ``None`` takes the rate from
            the traffic source.
        injector: Optional pre-built fault injector; it is bound to the
            network and scheduled *between* the traffic source and the
            network so faults land before the same cycle's control planes
            react.
        raise_on_wedge: Raise :class:`~repro.errors.SimulationError` with a
            wedge snapshot instead of returning a ``wedged=True`` point.
        verify: Attach the runtime invariant oracle (:mod:`repro.verify`)
            in its default raise mode.  Independently of this flag, the
            ``REPRO_VERIFY`` environment variable (``strict``/``record``)
            attaches an oracle to *every* run without code changes.
        oracle: A pre-configured
            :class:`~repro.verify.oracle.InvariantOracle` to attach
            (overrides ``verify`` and the environment gate).  Must be
            constructed for this ``network``.
        telemetry: Attach a recording
            :class:`~repro.telemetry.observer.TelemetryObserver` with
            default configuration.  Independently of this flag, the
            ``REPRO_TELEMETRY`` environment variable enables telemetry on
            every run without code changes (docs/TELEMETRY.md).
        telemetry_observer: A pre-configured
            :class:`~repro.telemetry.observer.TelemetryObserver` to
            attach (overrides ``telemetry`` and the environment gate) —
            how ``repro-sim trace`` keeps the recording for export.  Must
            be constructed for this ``network``.
        engine: Engine name (``reference``/``fast``) driving the cycle
            loop; ``None``/empty falls through the selection precedence
            (``REPRO_ENGINE`` environment variable, then the default) —
            see :mod:`repro.sim.engine_api`.
        profiler: A :class:`~repro.sim.profile.PhaseProfiler` to attach
            to the engine for this point.  Independently, the
            ``REPRO_PROFILE`` environment variable attaches a fresh
            profiler to every run and prints a one-line phase summary to
            stderr (docs/OBSERVE.md).  Profiling never changes the
            measured point.

    Returns:
        The measured :class:`SweepPoint`.  Oracle findings (if any) are in
        :attr:`SweepPoint.invariant_violations` and the
        ``violation_<name>`` event counters; telemetry tallies (if
        enabled) are the ``telemetry_*`` event counters.
    """
    configured = getattr(traffic, "injection_rate", None)
    if injection_rate is None:
        injection_rate = configured if configured is not None else 0.0
    elif configured is not None:
        scale = max(1.0, abs(configured), abs(injection_rate))
        if abs(configured - injection_rate) > _RATE_TOLERANCE * scale:
            raise ConfigurationError(
                "declared injection_rate disagrees with the traffic "
                "source's configured rate",
                declared=injection_rate, configured=configured)

    simulator = create_engine(engine or None)
    env_profiler = None
    if profiler is None:
        from repro.sim.profile import profiler_from_env

        profiler = env_profiler = profiler_from_env()
    if profiler is not None:
        simulator.attach_profiler(profiler)
    stop_at = sim_config.warmup_cycles + sim_config.measure_cycles
    simulator.register(traffic)
    if injector is not None:
        injector.bind(network)
        simulator.register(injector)
    simulator.register(network)
    if oracle is None:
        if verify:
            from repro.verify.oracle import InvariantOracle

            oracle = InvariantOracle(network)
        else:
            from repro.verify.oracle import oracle_from_env

            oracle = oracle_from_env(network)
    if oracle is not None:
        if oracle.network is not network:
            raise ConfigurationError(
                "oracle was built for a different network")
        oracle.attach(simulator)
    if telemetry_observer is None:
        if telemetry:
            from repro.telemetry.observer import TelemetryObserver

            telemetry_observer = TelemetryObserver(network)
        else:
            from repro.telemetry.observer import telemetry_from_env

            telemetry_observer = telemetry_from_env(network)
    if telemetry_observer is not None:
        if telemetry_observer.network is not network:
            raise ConfigurationError(
                "telemetry observer was built for a different network")
        telemetry_observer.attach(simulator)
    network.stats.open_window(sim_config.warmup_cycles, stop_at)

    simulator.run(sim_config.warmup_cycles)
    network.reset_link_utilization()

    from repro.telemetry.live import progress_sink

    sink = progress_sink()
    total_cycles = (sim_config.warmup_cycles + sim_config.measure_cycles
                    + sim_config.drain_cycles)

    wedged = False
    remaining = sim_config.measure_cycles + sim_config.drain_cycles
    abort_after = sim_config.deadlock_abort_cycles
    chunk = sim_config.wedge_poll_interval
    while remaining > 0:
        step = min(chunk, remaining)
        simulator.run(step)
        remaining -= step
        if sink is not None:
            # Live-streaming progress sink (repro.telemetry.live): one
            # throttled, observation-only frame per wedge-poll chunk.
            sink.update(simulator.cycle, total_cycles, network)
        if (
            abort_after
            and network.idle_cycles() > abort_after
            and network.packets_in_flight() > 0
        ):
            wedged = True
            if raise_on_wedge:
                raise SimulationError(
                    "network wedged: no flit moved within the abort window",
                    **_wedge_snapshot(network, simulator.cycle, abort_after))
            break

    if telemetry_observer is not None:
        telemetry_observer.finalize(simulator.cycle)
    if env_profiler is not None:
        from repro.sim.profile import emit_env_summary

        emit_env_summary(env_profiler.report(simulator.name,
                                             simulator.cycle))
    return SweepPoint(
        injection_rate=injection_rate,
        wedged=wedged,
        link_utilization=network.mean_link_utilization(),
        cycles=simulator.cycle,
        invariant_violations=network.stats.events.get(
            "invariant_violations", 0),
        **network.stats.point_kwargs(sim_config.measure_cycles,
                                     network.topology.num_nodes),
    )


def run_point(network_factory: Callable[[], object],
              traffic_factory: Callable[..., object],
              sim_config: SimulationConfig,
              injection_rate: Optional[float] = None,
              fault_factory: Optional[Callable[[], object]] = None,
              raise_on_wedge: bool = False) -> Tuple[object, SweepPoint]:
    """Simulate one configuration at one load (factory adapter).

    Args:
        network_factory: Builds a fresh network.
        traffic_factory: ``(network, rate, stop_at) -> component`` building
            the traffic source.  The legacy ``(network, stop_at)`` shape
            (rate closed over) is accepted with a ``DeprecationWarning``.
        sim_config: Warmup/measure/drain windows, wedge threshold.
        injection_rate: Offered load handed to the traffic factory and
            cross-checked against the built source's configured rate (see
            :func:`simulate_point`).  Required with a rate-taking factory.
        fault_factory: Optional ``() -> FaultInjector`` building the fault
            injection component (docs/FAULTS.md).
        raise_on_wedge: Raise :class:`~repro.errors.SimulationError` with a
            wedge snapshot instead of returning a ``wedged=True`` point.

    Returns:
        The simulated network (for post-hoc inspection) and its point.
    """
    traffic_factory, takes_rate = _normalize_traffic_factory(traffic_factory)
    if takes_rate and injection_rate is None:
        raise ConfigurationError(
            "injection_rate is required with a (network, rate, stop_at) "
            "traffic factory")
    network = network_factory()
    stop_at = sim_config.warmup_cycles + sim_config.measure_cycles
    traffic = traffic_factory(network, injection_rate, stop_at)
    injector = fault_factory() if fault_factory is not None else None
    point = simulate_point(network, traffic, sim_config,
                           injection_rate=injection_rate,
                           injector=injector,
                           raise_on_wedge=raise_on_wedge)
    return network, point


def _normalize_traffic_factory(factory) -> Tuple[Callable[..., object], bool]:
    """Adapt a traffic factory to the canonical (network, rate, stop_at).

    Returns the adapted factory and whether the original took the rate.
    Factories whose signature cannot be introspected are assumed to take
    the canonical three arguments.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins, C callables
        return factory, True
    positional = [
        parameter for parameter in signature.parameters.values()
        if parameter.kind in (inspect.Parameter.POSITIONAL_ONLY,
                              inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    variadic = any(parameter.kind == inspect.Parameter.VAR_POSITIONAL
                   for parameter in signature.parameters.values())
    if variadic or len(positional) >= 3:
        return factory, True
    warnings.warn(
        "traffic_factory(network, stop_at) is deprecated; use the "
        "canonical (network, rate, stop_at) signature (the rate is passed "
        "in, not closed over) — see docs/API.md migration notes",
        DeprecationWarning, stacklevel=3)

    def adapted(network, rate, stop_at):
        return factory(network, stop_at)

    return adapted, False


def _wedge_snapshot(network, cycle: int, abort_after: int) -> Dict[str, object]:
    """Diagnostic context for an unrecovered-deadlock abort.

    Names the stuck routers and (when SPIN is attached) their FSM states so
    the failure message alone localizes the wedge.
    """
    stuck_routers = sorted(
        router.id for router in network.routers if router.active_vcs)
    context: Dict[str, object] = {
        "cycle": cycle,
        "idle_cycles": abort_after,
        "packets_in_flight": network.packets_in_flight(),
        "stuck_routers": stuck_routers[:8],
        "dead_links": network.dead_link_count,
    }
    if network.spin is not None:
        context["fsm_states"] = {
            router_id: network.spin.controller_of(router_id).state.name
            for router_id in stuck_routers[:8]
        }
        context["frozen_vcs"] = network.spin.frozen_vc_count()
    return context


class SaturationCursor:
    """Incremental saturation-stop decision shared by every sweep driver.

    Push curve points in ascending-rate order; :meth:`push` returns True
    when the curve should stop *after* the pushed point.  Serial sweeps use
    it to stop launching rates; the parallel runner uses the identical
    object to cancel in-flight rates and to truncate results, so `--jobs 1`
    and `--jobs N` cut a curve at exactly the same point.
    """

    def __init__(self, latency_cap: float = 4.0,
                 points_past_saturation: int = 0) -> None:
        self.latency_cap = latency_cap
        self._extra = points_past_saturation
        self._zero_load: Optional[float] = None

    def push(self, point: SweepPoint) -> bool:
        """Record the next point; True means the curve ends here."""
        if self._zero_load is None:
            self._zero_load = point.mean_latency
        if point.saturated(self._zero_load, self.latency_cap):
            if self._extra <= 0:
                return True
            self._extra -= 1
        return False


def truncate_at_saturation(points: List[SweepPoint],
                           latency_cap: float = 4.0,
                           points_past_saturation: int = 0
                           ) -> List[SweepPoint]:
    """Cut a fully-materialized curve exactly where a serial sweep stops."""
    cursor = SaturationCursor(latency_cap, points_past_saturation)
    kept: List[SweepPoint] = []
    for point in points:
        kept.append(point)
        if cursor.push(point):
            break
    return kept


def _scan_saturation(points: List[SweepPoint], latency_cap: float):
    """Yield ``(point, saturated)`` pairs along a measured curve.

    The single saturation-scan loop shared by :func:`curve_saturation_rate`
    and :func:`curve_saturation_throughput` (previously duplicated inside
    :class:`InjectionSweep`).
    """
    if not points:
        return
    zero_load = points[0].mean_latency
    for point in points:
        yield point, point.saturated(zero_load, latency_cap)


def curve_saturation_rate(points: List[SweepPoint],
                          latency_cap: float = 4.0) -> float:
    """Highest offered load sustained without saturating."""
    sustained = 0.0
    for point, saturated in _scan_saturation(points, latency_cap):
        if saturated:
            break
        sustained = point.injection_rate
    return sustained


def curve_saturation_throughput(points: List[SweepPoint],
                                latency_cap: float = 4.0) -> float:
    """Received throughput at the last non-saturated point."""
    best = 0.0
    for point, saturated in _scan_saturation(points, latency_cap):
        if saturated:
            break
        best = max(best, point.throughput)
    return best


class InjectionSweep:
    """Sweeps offered load upward until the network saturates.

    Args:
        network_factory: Builds a fresh network per point.
        traffic_factory: ``(network, rate, stop_at) -> component``.
        sim_config: Per-point run windows.
        rates: Ascending offered loads in flits/node/cycle.
        latency_cap: Saturation multiplier on the zero-load latency.
        points_past_saturation: Extra points to run beyond saturation (to
            show the divergence in latency curves).
        fault_factory: Optional ``() -> FaultInjector`` applied to every
            point of the sweep (each point gets a fresh injector so the
            fault schedule replays identically at every load).
    """

    def __init__(self, network_factory, traffic_factory,
                 sim_config: SimulationConfig, rates: List[float],
                 latency_cap: float = 4.0,
                 points_past_saturation: int = 0,
                 fault_factory=None) -> None:
        self.network_factory = network_factory
        self.traffic_factory = traffic_factory
        self.sim_config = sim_config
        self.rates = list(rates)
        self.latency_cap = latency_cap
        self.points_past_saturation = points_past_saturation
        self.fault_factory = fault_factory

    def run(self) -> List[SweepPoint]:
        """Simulate ascending loads; stop shortly after saturation."""
        points: List[SweepPoint] = []
        cursor = SaturationCursor(self.latency_cap,
                                  self.points_past_saturation)
        for rate in self.rates:
            _, point = run_point(
                self.network_factory,
                self.traffic_factory,
                self.sim_config,
                injection_rate=rate,
                fault_factory=self.fault_factory,
            )
            points.append(point)
            if cursor.push(point):
                break
        return points

    def saturation_rate(self, points: List[SweepPoint]) -> float:
        """Highest offered load sustained without saturating."""
        return curve_saturation_rate(points, self.latency_cap)

    def saturation_throughput(self, points: List[SweepPoint]) -> float:
        """Received throughput at the last non-saturated point."""
        return curve_saturation_throughput(points, self.latency_cap)
