"""Robustness of SPIN to heterogeneous link delays and injected faults.

Part one (paper Sec. IV-C3): the theory only needs all loop routers to
*start* the spin together; the common start time is derived from the
measured total loop delay, so routers and links may have arbitrary (fixed)
delays.  These tests craft deadlocked rings over 2-cycle links and over
mixed 1/2/3-cycle links and verify the full distributed recovery still
resolves them within the theorem bound.

Part two (docs/FAULTS.md): SPIN hardened against *lost* special messages
and runtime link failures.  A dropped probe must be recovered by the
initiator watchdog within a bound derived from the theorem's loop-delay
bound, and deadlock recovery must keep working while unrelated links die.
"""

import networkx as nx
import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.faults import FaultInjector, parse_fault_spec
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.irregular import IrregularTopology
from repro.topology.ring import COUNTER_CLOCKWISE, RingTopology

from tests.conftest import craft_ring_deadlock, craft_square_deadlock, \
    make_mesh_network


def _plant_cycle_graph_deadlock(network, m, dst_ahead=2):
    """Plant a deadlocked ring on an IrregularTopology cycle graph."""
    topology = network.topology
    packets = []
    for router_id in range(m):
        nxt = (router_id + 1) % m
        prev = (router_id - 1) % m
        inport = topology.port_toward(router_id, prev)
        dst = (router_id + dst_ahead) % m
        packet = Packet(src_node=prev, dst_node=dst, src_router=prev,
                        dst_router=dst, length=1)
        packet.inject_cycle = 0
        vc = network.routers[router_id].inports[inport][0]
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = vc.ready_at = vc.tail_arrival = 0
        network.note_vc_reserved(network.routers[router_id])
        network.stats.record_creation(packet, 0)
        packets.append(packet)
    return packets


class TestUniformSlowLinks:
    @pytest.mark.parametrize("latency", [2, 3])
    def test_ring_with_slow_links_recovers(self, latency):
        m = 6
        network = Network(RingTopology(m, link_latency=latency),
                          NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=16), seed=1)
        packets = craft_ring_deadlock(network, dst_ahead=2)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=4000)
        assert done
        assert max(p.spins for p in packets) <= m - 1

    def test_loop_delay_reflects_link_latency(self):
        # The probe measures the loop delay, so the spin cycle scales with
        # the physical link latency automatically.
        def first_spin_cycle(latency):
            network = Network(RingTopology(6, link_latency=latency),
                              NetworkConfig(vcs_per_vnet=1),
                              MinimalAdaptiveRouting(1),
                              spin=SpinParams(tdd=16), seed=1)
            craft_ring_deadlock(network, dst_ahead=2)
            sim = Simulator()
            sim.register(network)
            sim.run_until(
                lambda: network.stats.events.get("moves_returned", 0) >= 1,
                max_cycles=2000)
            initiators = [c for c in network.spin.controllers
                          if c.spin_cycle is not None]
            assert initiators
            controller = initiators[0]
            return controller.loop_delay

        assert first_spin_cycle(2) > first_spin_cycle(1)


class TestMixedLinkDelays:
    def _mixed_ring(self, m=6):
        graph = nx.cycle_graph(m)
        latencies = {}
        for i, (u, v) in enumerate(sorted(graph.edges)):
            latencies[(min(u, v), max(u, v))] = 1 + i % 3  # 1,2,3,1,2,3
        return IrregularTopology(graph, link_latency=latencies)

    def test_mixed_delay_loop_recovers(self):
        m = 6
        network = Network(self._mixed_ring(m), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=24), seed=2)
        packets = _plant_cycle_graph_deadlock(network, m)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done, dict(network.stats.events)
        assert max(p.spins for p in packets) <= m - 1

    def test_conservation_on_mixed_delays(self):
        m = 6
        network = Network(self._mixed_ring(m), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=24), seed=2)
        packets = _plant_cycle_graph_deadlock(network, m)
        sim = Simulator()
        sim.register(network)
        sim.run(6000)
        assert network.stats.packets_delivered == len(packets)
        assert network.spin.frozen_vc_count() == 0


class TestDragonflyGlobalLinkLoops:
    def test_recovery_spanning_global_links(self):
        # Live adversarial traffic on a 1-VC dragonfly: deadlock loops span
        # 3-cycle global links; recovery must still work (Sec. IV-C3's
        # off-chip claim).
        from repro.topology.dragonfly import DragonflyTopology
        from repro.traffic.generator import PacketMix, SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        network = Network(DragonflyTopology(2, 4, 2),
                          NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(3),
                          spin=SpinParams(tdd=32), seed=3)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network,
            make_pattern("bit_complement", network.topology.num_nodes),
            0.40, seed=3, stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(8000)
        stats = network.stats
        # Deadlocks spanning 3-cycle global links formed and were spun.
        assert stats.events.get("spins", 0) >= 1
        # Deep overload: full drain is not expected in this window, but
        # nothing may be lost or duplicated.
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog())
        assert stats.packets_delivered > 0


# ----------------------------------------------------------------------
# Injected faults (docs/FAULTS.md)
# ----------------------------------------------------------------------
def _ring_with_faults(spec, m=6, tdd=300, seed=1):
    spin = SpinParams(tdd=tdd)
    network = Network(RingTopology(m), NetworkConfig(vcs_per_vnet=1),
                      MinimalAdaptiveRouting(seed), spin=spin, seed=seed)
    injector = FaultInjector(parse_fault_spec(spec), seed=seed)
    injector.bind(network)
    packets = craft_ring_deadlock(network, dst_ahead=2)
    sim = Simulator()
    sim.register(injector)
    sim.register(network)
    return network, packets, sim


@pytest.mark.faults
class TestSmLossWatchdog:
    def test_dropped_probes_recovered_by_watchdog(self):
        """Liveness regression: every initial probe is dropped at the
        detection instant; the initiator watchdogs must fire, retry, and
        resolve the deadlock well before the next natural tDD rotation."""
        m, tdd = 6, 300
        network, packets, sim = _ring_with_faults(
            f"sm_drop:kind=probe:n={m}", m=m, tdd=tdd)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        spin = network.spin
        # Watchdog timeout: the theorem-derived SM round-trip bound plus
        # margin; give the whole recovery 3x that on top of detection.
        bound = spin.sm_rtt_bound + spin.params.watchdog_margin
        assert bound < tdd  # the watchdog must beat the tDD rotation
        deadline = tdd + 3 * bound + 8 * m
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=deadline)
        events = dict(network.stats.events)
        assert done, events
        assert events.get("sm_dropped", 0) >= m
        assert events.get("watchdog_fires", 0) >= 1
        assert events.get("probe_retries", 0) >= 1
        assert network.spin.frozen_vc_count() == 0

    def test_dropped_moves_recovered_via_kill_path(self):
        """Every first-round move SM is lost: the MOVE watchdog cancels the
        spin via kill_move and a later probe round completes recovery."""
        m, tdd = 6, 64
        network, packets, sim = _ring_with_faults(
            f"sm_drop:kind=move:n={m}", m=m, tdd=tdd)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=40 * tdd)
        events = dict(network.stats.events)
        assert done, events
        assert events.get("sm_dropped_move", 0) >= 1
        assert events.get("watchdog_fires", 0) >= 1
        assert events.get("kill_moves_sent", 0) >= 1

    def test_dropped_kill_moves_bounded_retries(self):
        """Kill_moves are also lossy: bounded retries with backoff must
        still unfreeze everyone (or the freeze timeout escape must)."""
        m, tdd = 6, 64
        network, packets, sim = _ring_with_faults(
            f"sm_drop:kind=move:n={m},sm_drop:kind=kill_move:n=2",
            m=m, tdd=tdd)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=60 * tdd)
        events = dict(network.stats.events)
        assert done, events
        assert events.get("kill_move_retries", 0) >= 1
        assert network.spin.frozen_vc_count() == 0

    def test_continuous_probe_loss_degrades_without_hanging(self):
        """A permanently lossy probe path: watchdogs give up after the
        retry budget instead of retrying forever.  tdd is set above the
        full backoff chain so one chain can exhaust its budget before the
        next detection rotation re-arms the watchdog with a fresh probe."""
        m, tdd = 6, 600
        network, packets, sim = _ring_with_faults(
            "sm_drop:kind=probe", m=m, tdd=tdd)
        spin = network.spin
        params = spin.params
        chain = sum(
            spin.sm_rtt_bound * params.backoff_factor ** r
            + params.watchdog_margin
            for r in range(params.max_sm_retries + 1))
        assert chain < tdd  # the budget must exhaust before rotation
        sim.run(tdd * 3)
        events = dict(network.stats.events)
        assert network.stats.packets_delivered == 0  # nothing can recover
        assert events.get("watchdog_gave_up", 0) >= 1
        retries = events.get("probe_retries", 0)
        max_retries = network.spin.params.max_sm_retries
        fires = events.get("watchdog_fires", 0)
        # Retries are bounded per round trip, never one per fire forever.
        assert retries <= fires * max_retries


@pytest.mark.faults
class TestFaultsDuringRecovery:
    def test_square_deadlock_recovers_beside_dead_link(self):
        """A crafted mesh deadlock plus an unrelated runtime link failure:
        SPIN recovery and graceful routing degradation must coexist."""
        network = make_mesh_network(side=4, spin=SpinParams(tdd=32))
        injector = FaultInjector(parse_fault_spec("link_down@5:r12-r13"),
                                 seed=3)
        injector.bind(network)
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(injector)
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=4000)
        events = dict(network.stats.events)
        assert done, events
        assert network.dead_link_count == 2  # the failure persists
        assert events.get("spins", 0) >= 1
        assert events.get("recoveries_after_fault", 0) >= 1
        assert network.spin.frozen_vc_count() == 0

    def test_sweep_point_surfaces_fault_counters(self):
        """End-to-end harness path: fault counters travel through
        run_design into the SweepPoint the experiments consume."""
        from repro.harness.runner import run_design

        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=1200,
                                      drain_cycles=600)
        # A dead link on an 8x8 mesh strands traffic and eats probes, so
        # the initiator watchdogs demonstrably fire during the window.
        _, point = run_design(
            "spin_mesh", "uniform", 0.05, sim_config, mesh_side=8,
            tdd=32, faults="link_down@300:r3-r4,sm_drop:p=0.01",
            fault_seed=7)
        assert point.events.get("faults_injected", 0) >= 1
        assert point.events.get("sm_dropped", 0) >= 1
        assert point.events.get("watchdog_fires", 0) >= 1
        assert point.packets_lost == point.events.get("packets_lost", 0)
