"""Single-flit deflection-routed network (BLESS-like).

Model, per cycle:

1. flits in flight land at their next router;
2. flits at their destination eject (unbounded NIC acceptance);
3. remaining flits are matched to output ports *oldest first*: each flit
   prefers a productive port (reducing hop distance); if all productive
   ports are taken it is deflected to any free port;
4. a node may inject only if its router still has a free output port after
   the matching — the injection restriction of Table I.

Oldest-first arbitration makes the network livelock-free: the globally
oldest flit always receives a productive port, so it reaches its
destination in bounded time, after which the next-oldest does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng
from repro.stats.collectors import NetworkStats
from repro.topology.base import Topology


class _Flit:
    __slots__ = ("uid", "src", "dst_router", "dst_node", "create_cycle",
                 "inject_cycle", "eject_cycle", "hops", "deflections",
                 "measured", "length")
    _next_uid = 0

    def __init__(self, src: int, dst_router: int, dst_node: int,
                 create_cycle: int) -> None:
        self.uid = _Flit._next_uid
        _Flit._next_uid += 1
        self.src = src
        self.dst_router = dst_router
        self.dst_node = dst_node
        self.create_cycle = create_cycle
        self.inject_cycle: Optional[int] = None
        self.eject_cycle: Optional[int] = None
        self.hops = 0
        self.deflections = 0
        self.measured = False
        self.length = 1

    def age_rank(self) -> Tuple[int, int]:
        """Sort key: older first, then lower uid (total order)."""
        return (self.create_cycle, self.uid)

    def latency(self) -> int:
        return self.eject_cycle - self.create_cycle

    def network_latency(self) -> int:
        return self.eject_cycle - (self.inject_cycle or self.create_cycle)


class DeflectionNetwork:
    """Bufferless deflection-routed network over any topology.

    Single-flit packets only (deflection routing needs per-flit routing;
    the reassembly problem for multi-flit packets is one of the scheme's
    documented drawbacks).

    Args:
        topology: Any topology; each flit's productive ports are derived
            from the hop-distance metric.
        seed: RNG seed for deflection tie-breaks.
    """

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        topology.validate()
        self.topology = topology
        self.rng = DeterministicRng(seed).fork("deflection")
        self.stats = NetworkStats()
        self.now = 0
        #: Flits resident at each router at the start of the cycle.
        self._at_router: List[List[_Flit]] = [
            [] for _ in range(topology.num_routers)]
        #: Flits in flight: arrival cycle -> [(router, flit)].
        self._in_flight: Dict[int, List[Tuple[int, _Flit]]] = {}
        #: Per-node injection queues.
        self._queues: List[List[_Flit]] = [
            [] for _ in range(topology.num_nodes)]
        self.total_deflections = 0

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def offer(self, src_node: int, dst_node: int, cycle: int) -> None:
        """Queue one single-flit packet for injection."""
        if src_node == dst_node:
            raise ConfigurationError("self-addressed flit")
        flit = _Flit(src_node, self.topology.router_of_node(dst_node),
                     dst_node, cycle)
        self.stats.record_creation(flit, cycle)
        self._queues[src_node].append(flit)

    # ------------------------------------------------------------------
    # Cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate one cycle."""
        now = self.now
        # 1. Landings.
        for router_id, flit in self._in_flight.pop(now, ()):
            self._at_router[router_id].append(flit)
        # 2-4. Per-router ejection, matching, injection.
        for router_id in range(self.topology.num_routers):
            self._route_router(router_id, now)
        self.now = now + 1

    def run(self, cycles: int) -> None:
        """Simulate the given number of cycles."""
        for _ in range(cycles):
            self.step()

    def _route_router(self, router_id: int, now: int) -> None:
        resident = self._at_router[router_id]
        if resident:
            # Ejection: stall-free, all flits at their destination leave.
            staying = []
            for flit in resident:
                if flit.dst_router == router_id:
                    self._deliver(flit, now)
                else:
                    staying.append(flit)
            resident = staying
        ports = self.topology.neighbors(router_id)
        free_ports = set(ports)
        # Oldest flit picks first (livelock freedom).
        resident.sort(key=_Flit.age_rank)
        assignments: List[Tuple[_Flit, int]] = []
        for flit in resident:
            productive = [
                port for port in free_ports
                if self.topology.min_hops(ports[port][0], flit.dst_router)
                < self.topology.min_hops(router_id, flit.dst_router)
            ]
            if productive:
                port = productive[0] if len(productive) == 1 else (
                    self.rng.choice(productive))
            else:
                remaining = sorted(free_ports)
                if not remaining:
                    raise ConfigurationError(
                        "more resident flits than output ports — the "
                        "injection restriction was violated")
                port = self.rng.choice(remaining)
                flit.deflections += 1
                self.total_deflections += 1
            free_ports.discard(port)
            assignments.append((flit, port))
        # Injection: one flit per local node, only into leftover ports.
        for node in self.topology.nodes_of_router(router_id):
            if not free_ports:
                break
            queue = self._queues[node]
            if not queue:
                continue
            flit = queue.pop(0)
            flit.inject_cycle = now
            self.stats.record_injection(flit, now)
            productive = [
                port for port in free_ports
                if self.topology.min_hops(ports[port][0], flit.dst_router)
                < self.topology.min_hops(router_id, flit.dst_router)
            ]
            pool = productive or sorted(free_ports)
            port = pool[0] if len(pool) == 1 else self.rng.choice(pool)
            if not productive:
                flit.deflections += 1
                self.total_deflections += 1
            free_ports.discard(port)
            assignments.append((flit, port))
        # Launch.
        self._at_router[router_id] = []
        for flit, port in assignments:
            neighbor, _, latency = ports[port]
            flit.hops += 1
            self._in_flight.setdefault(now + latency, []).append(
                (neighbor, flit))

    def _deliver(self, flit: _Flit, now: int) -> None:
        flit.eject_cycle = now
        self.stats.record_delivery(flit, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def flits_in_network(self) -> int:
        """Resident + in-flight flits."""
        resident = sum(len(r) for r in self._at_router)
        flying = sum(len(v) for v in self._in_flight.values())
        return resident + flying

    def backlog(self) -> int:
        """Flits waiting in injection queues."""
        return sum(len(q) for q in self._queues)

    def is_drained(self) -> bool:
        """No flits anywhere."""
        return self.flits_in_network() == 0 and self.backlog() == 0
