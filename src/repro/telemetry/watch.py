"""Rendering for ``cli watch`` and campaign-level ``cli report``.

Dependency-free, plain-ANSI terminal output over the live status plane's
artifacts (:mod:`repro.telemetry.live`): the rolling ``status.json``, the
campaign ``manifest.json``/``journal.jsonl``, and the ``stream.jsonl``
frame log.  Rendering is pure (data in, string out) so it is unit-testable
without a terminal or a running campaign; ``cli watch`` adds only the
clear-screen/sleep loop on top.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.live import (
    STATUS_NAME,
    STREAM_LOG_NAME,
    read_stream_log,
    stream_summary,
)

#: Worker/point state glyphs for the compact progress strip.
_POINT_GLYPHS = {"pending": ".", "running": "r", "ok": "#",
                 "resumed": "R", "failed": "x"}


def load_status(directory: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Load ``status.json`` from a campaign directory; ``None`` if absent
    or unreadable (e.g. mid-replace on exotic filesystems)."""
    path = Path(directory) / STATUS_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return None
    return payload if isinstance(payload, dict) else None


def journal_fallback_status(directory: Union[str, Path]
                            ) -> Optional[Dict[str, object]]:
    """Synthesize a minimal status payload from manifest + journal.

    Lets ``cli watch`` show *something* for campaigns run before the
    status plane existed (or with ``--no-stream``): point totals and
    ok/failed states, but no worker health or live progress.
    """
    from repro.harness.campaign import CampaignJournal, load_manifest

    directory = Path(directory)
    try:
        specs, _, _ = load_manifest(directory)
    except Exception:
        return None
    keys = [spec.content_key() for spec in specs]
    records, _ = CampaignJournal(directory).load()
    by_key = {record["key"]: record for record in records}
    points = {}
    for index, (key, spec) in enumerate(zip(keys, specs)):
        record = by_key.get(key)
        status = "pending"
        if record is not None:
            status = "ok" if record.get("status") == "ok" else "failed"
        points[key] = {"index": index, "rate": spec.injection_rate,
                       "status": status, "cycles_done": 0,
                       "cycles_total": None, "worker": None,
                       "attempts": 0, "delivered": 0, "injected": 0,
                       "spins": 0, "error_class": None}
    states = [entry["status"] for entry in points.values()]
    done = sum(1 for state in states if state != "pending")
    failed = sum(1 for state in states if state == "failed")
    return {
        "schema": "journal-fallback",
        "status": "unknown (no status.json; journal view)",
        "updated_unix": None,
        "campaign": {"total_points": len(keys), "done": done,
                     "ok": done - failed, "failed": failed, "resumed": 0,
                     "running": [], "throughput_pps": 0.0,
                     "eta_seconds": None, "elapsed_seconds": None,
                     "failure_budget": {"max": None, "burned": failed},
                     "saturation": {"cut": False, "cut_rate": None,
                                    "sustained_rate": 0.0}},
        "workers": {},
        "points": points,
        "counters": {},
        "stream_totals": {},
    }


def _bar(done: int, total: int, width: int = 32) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * min(1.0, done / total)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_status(status: Dict[str, object],
                  directory: Optional[Union[str, Path]] = None) -> str:
    """Render one status payload as a plain-ANSI dashboard frame."""
    campaign = status.get("campaign", {})
    total = campaign.get("total_points", 0) or 0
    done = campaign.get("done", 0) or 0
    lines: List[str] = []
    header = f"campaign {directory}" if directory else "campaign"
    lines.append(f"{header}  —  {status.get('status', '?')}")
    lines.append("")

    lines.append(f"progress {_bar(done, total)} {done}/{total} points  "
                 f"ok={campaign.get('ok', 0)} "
                 f"failed={campaign.get('failed', 0)} "
                 f"resumed={campaign.get('resumed', 0)}")
    budget = campaign.get("failure_budget") or {}
    budget_max = budget.get("max")
    lines.append(f"throughput {campaign.get('throughput_pps', 0.0):.2f} "
                 f"points/s   eta {_fmt_eta(campaign.get('eta_seconds'))}   "
                 f"failure budget "
                 f"{budget.get('burned', 0)}/"
                 f"{budget_max if budget_max is not None else '∞'}")
    saturation = campaign.get("saturation") or {}
    if saturation.get("cut"):
        saturation_text = f"cut at rate {saturation.get('cut_rate')}"
    else:
        saturation_text = (f"not cut (sustained "
                           f"{saturation.get('sustained_rate', 0.0)})")
    lines.append(f"saturation cursor: {saturation_text}")

    # Per-point strip in spec order: one glyph per point.
    points = status.get("points") or {}
    ordered = sorted(points.values(), key=lambda p: p.get("index", 0))
    if ordered:
        strip = "".join(_POINT_GLYPHS.get(p.get("status"), "?")
                        for p in ordered)
        lines.append(f"points [{strip}]  "
                     "(. pending  r running  # ok  R resumed  x failed)")

    # Running points with live progress.
    running = [p for p in ordered if p.get("status") == "running"]
    for point in running:
        cycles_total = point.get("cycles_total")
        cycles_done = point.get("cycles_done", 0) or 0
        if cycles_total:
            pct = 100.0 * cycles_done / cycles_total
            cycles_text = f"{cycles_done}/{cycles_total} cycles ({pct:.0f}%)"
        else:
            cycles_text = "dispatched"
        lines.append(f"  rate={point.get('rate')} worker={point.get('worker')}"
                     f"  {cycles_text}  delivered={point.get('delivered', 0)}"
                     f"  spins={point.get('spins', 0)}")

    # Worker health table.
    workers = status.get("workers") or {}
    lines.append("")
    if workers:
        lines.append(f"{'worker':>8} {'state':<8} {'hb age':>7} "
                     f"{'done':>5}  point")
        for pid, worker in sorted(workers.items(),
                                  key=lambda kv: int(kv[0])):
            age = worker.get("heartbeat_age_s")
            age_text = f"{age:.1f}s" if age is not None else "-"
            point_key = worker.get("point") or "-"
            lines.append(f"{pid:>8} {worker.get('state', '?'):<8} "
                         f"{age_text:>7} {worker.get('points_done', 0):>5}"
                         f"  {str(point_key)[:24]}")
    else:
        lines.append("workers: none reporting "
                     "(serial campaign, finished, or --no-stream)")

    counters = status.get("counters") or {}
    if counters:
        interesting = {name: value for name, value in counters.items()
                       if not name.startswith("events_")}
        text = "  ".join(f"{name}={value}"
                         for name, value in sorted(interesting.items()))
        if text:
            lines.append("")
            lines.append(f"counters: {text}")
    return "\n".join(lines) + "\n"


def render_watch(directory: Union[str, Path]) -> str:
    """One ``cli watch`` frame: live status, else journal fallback."""
    directory = Path(directory)
    status = load_status(directory)
    if status is None:
        status = journal_fallback_status(directory)
    if status is None:
        return (f"campaign {directory}: no status.json or manifest.json "
                "found — is this a campaign directory?\n")
    return render_status(status, directory)


def render_campaign_report(directory: Union[str, Path]) -> str:
    """Campaign-level ``cli report``: journal table + stream aggregates."""
    from repro.harness.campaign import CampaignJournal, load_manifest

    directory = Path(directory)
    specs, meta, _ = load_manifest(directory)
    keys = [spec.content_key() for spec in specs]
    records, torn = CampaignJournal(directory).load()
    by_key: Dict[str, Dict[str, object]] = {}
    for record in records:
        by_key[record["key"]] = record

    lines: List[str] = []
    title = meta.get("title") or meta.get("design") or str(directory)
    lines.append(f"campaign report — {title}")
    lines.append(f"directory: {directory}")
    if torn:
        lines.append(f"journal: {torn} torn tail record dropped")
    lines.append("")
    lines.append(f"{'rate':>8} {'status':<8} {'attempt':>7} "
                 f"{'wall_s':>8} {'spins':>7}  key")
    lines.append("-" * 64)
    done = failed = 0
    for spec, key in zip(specs, keys):
        record = by_key.get(key)
        if record is None:
            status, attempt, wall, spins = "pending", "-", "-", "-"
        elif record.get("status") == "ok":
            done += 1
            status = "ok"
            attempt = str(record.get("attempt", 0))
            wall = f"{float(record.get('wall_time', 0.0)):.2f}"
            point = record.get("point") or {}
            spins = str((point.get("events") or {}).get("spins", 0))
        else:
            failed += 1
            attempt = str(record.get("attempt", 0))
            wall, spins = "-", "-"
            status = f"failed({record.get('class', '?')})"
        lines.append(f"{spec.injection_rate:>8} {status:<8} {attempt:>7} "
                     f"{wall:>8} {spins:>7}  {key[:16]}")
    lines.append("")
    lines.append(f"points: {len(specs)} total, {done} ok, {failed} failed, "
                 f"{len(specs) - done - failed} pending")

    status = load_status(directory)
    if status is not None:
        campaign = status.get("campaign", {})
        lines.append(f"last status: {status.get('status', '?')} "
                     f"(throughput {campaign.get('throughput_pps', 0)} "
                     f"points/s)")
        counters = status.get("counters") or {}
        if counters:
            lines.append("counters: " + "  ".join(
                f"{name}={value}"
                for name, value in sorted(counters.items())))

    frames = read_stream_log(directory / STREAM_LOG_NAME)
    if frames:
        summary = stream_summary(frames)
        lines.append("")
        lines.append(f"stream: {summary['frames']} frames "
                     + " ".join(f"{name}={count}" for name, count
                                in summary["by_type"].items()))
        for pid, worker in summary["workers"].items():
            lines.append(f"  worker {pid}: {worker['frames']} frames, "
                         f"{worker['points']} points")
    return "\n".join(lines) + "\n"
