"""Dragonfly topology (Kim et al., ISCA 2008), as evaluated in the paper.

A dragonfly is parameterized by:

* ``p`` — terminals per router,
* ``a`` — routers per group (fully connected within a group),
* ``h`` — global channels per router.

The number of groups is ``g = a * h + 1`` (the maximum that the global
channels can fully connect), giving ``g * a * p`` terminals.  The paper's
1024-node dragonfly with group size 8 corresponds to the balanced
``p=4, a=8, h=4`` configuration (g = 33, 1056 terminals, conventionally
called "1024-node").

Global channel arrangement is the standard *consecutive* one: enumerating a
group's global channels ``k = i*h + j`` (router local index ``i``, global
port ``j``), channel ``k`` of group ``G`` connects to group
``(G + k + 1) mod g``.

Port layout per router (local index ``i``):

* ports ``0 .. a-2``      — local channels to the other routers of the group
  (port ``q`` connects to the peer with local index ``q`` if ``q < i`` else
  ``q + 1``),
* ports ``a-1 .. a-2+h``  — global channels.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology


class DragonflyTopology(Topology):
    """Dragonfly with full intra-group connectivity and consecutive globals."""

    name = "dragonfly"

    def __init__(self, p: int, a: int, h: int,
                 local_latency: int = 1, global_latency: int = 3) -> None:
        super().__init__()
        if p < 1 or a < 2 or h < 1:
            raise TopologyError("dragonfly needs p >= 1, a >= 2, h >= 1")
        self.p = p
        self.a = a
        self.h = h
        self.num_groups = a * h + 1
        self.local_latency = local_latency
        self.global_latency = global_latency
        self._links = self._build_links()

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.num_groups * self.a

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.p

    def router_of_node(self, node: int) -> int:
        return node // self.p

    def group_of(self, router: int) -> int:
        """Group a router belongs to."""
        return router // self.a

    def local_index(self, router: int) -> int:
        """Index of a router within its group."""
        return router % self.a

    def router_in_group(self, group: int, local_index: int) -> int:
        """Router id from (group, local index)."""
        return group * self.a + local_index

    def local_port_to(self, router: int, peer: int) -> int:
        """Local port on ``router`` that reaches ``peer`` (same group)."""
        if self.group_of(router) != self.group_of(peer) or router == peer:
            raise TopologyError(f"{router} and {peer} are not distinct group peers")
        peer_index = self.local_index(peer)
        return peer_index if peer_index < self.local_index(router) else peer_index - 1

    def global_channel_target(self, router: int, global_port_index: int) -> int:
        """Group reached by one of this router's global channels.

        Args:
            router: Router id.
            global_port_index: Which global channel, in ``0 .. h-1``.
        """
        group = self.group_of(router)
        channel = self.local_index(router) * self.h + global_port_index
        return (group + channel + 1) % self.num_groups

    def global_gateway(self, src_group: int, dst_group: int) -> Tuple[int, int]:
        """(router, port) in ``src_group`` whose global channel reaches ``dst_group``."""
        if src_group == dst_group:
            raise TopologyError("groups must differ")
        channel = (dst_group - src_group - 1) % self.num_groups
        local = channel // self.h
        port = self.a - 1 + channel % self.h
        return self.router_in_group(src_group, local), port

    def canonical_min_hops(self, src_router: int, dst_router: int) -> int:
        """Hop count of the canonical local-global-local minimal path.

        Note this can exceed the true graph distance (``min_hops``): two
        routers may share a remote neighbour group whose gateway router is
        common to both, giving a 2-hop global-global path.  Routing uses
        the exact BFS distance inherited from :class:`Topology`.
        """
        if src_router == dst_router:
            return 0
        src_group = self.group_of(src_router)
        dst_group = self.group_of(dst_router)
        if src_group == dst_group:
            return 1
        gw_src, _ = self.global_gateway(src_group, dst_group)
        gw_dst, _ = self.global_gateway(dst_group, src_group)
        return (src_router != gw_src) + 1 + (gw_dst != dst_router)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def links(self) -> List[LinkSpec]:
        return self._links

    def _build_links(self) -> List[LinkSpec]:
        links = []
        # Local channels: complete graph within each group.
        for group in range(self.num_groups):
            for i in range(self.a):
                router = self.router_in_group(group, i)
                for j in range(self.a):
                    if i == j:
                        continue
                    peer = self.router_in_group(group, j)
                    links.append(
                        LinkSpec(router, self.local_port_to(router, peer),
                                 peer, self.local_port_to(peer, router),
                                 self.local_latency)
                    )
        # Global channels.
        for group in range(self.num_groups):
            for i in range(self.a):
                router = self.router_in_group(group, i)
                for j in range(self.h):
                    dst_group = self.global_channel_target(router, j)
                    dst_router, dst_port = self.global_gateway(dst_group, group)
                    links.append(
                        LinkSpec(router, self.a - 1 + j, dst_router, dst_port,
                                 self.global_latency)
                    )
        return links

    def is_global_port(self, port: int) -> bool:
        """Whether a port index is a global channel."""
        return port >= self.a - 1
