"""Unit tests for the telemetry observer and its environment gate."""

import pytest

from repro.config import SimulationConfig, SpinParams
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.stats.sweep import simulate_point
from repro.telemetry.observer import (
    TelemetryConfig,
    TelemetryObserver,
    config_from_env_value,
    telemetry_from_env,
)
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_square_deadlock, make_mesh_network


def _run_with_observer(network, cycles, config=None, traffic=None):
    simulator = Simulator()
    if traffic is not None:
        simulator.register(traffic)
    simulator.register(network)
    observer = TelemetryObserver(network, config).attach(simulator)
    simulator.run(cycles)
    observer.finalize(simulator.cycle)
    return observer


def _uniform_traffic(network, rate=0.1, stop_at=200, seed=1):
    pattern = make_pattern("uniform", network.topology.num_nodes, 4)
    return SyntheticTraffic(network, pattern, rate, seed=seed,
                            stop_at=stop_at)


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.sample_interval == 64
        assert config.metrics and config.spans
        assert not config.packet_traces

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(sample_interval=0)
        with pytest.raises(ConfigurationError):
            TelemetryConfig(max_samples=0)


class TestEnvGate:
    @pytest.mark.parametrize("value", ["1", "on", "true", "metrics",
                                       "spans", "ON", " true "])
    def test_enabling_values(self, value):
        config = config_from_env_value(value)
        assert config is not None
        assert not config.packet_traces

    def test_full_enables_packet_traces(self):
        config = config_from_env_value("full")
        assert config is not None and config.packet_traces

    def test_integer_sets_interval(self):
        config = config_from_env_value("128")
        assert config is not None
        assert config.sample_interval == 128

    @pytest.mark.parametrize("value", ["", "off", "0", "-3", "nope"])
    def test_disabling_values(self, value):
        assert config_from_env_value(value) is None

    def test_telemetry_from_env(self, monkeypatch):
        network = make_mesh_network()
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_from_env(network) is None
        monkeypatch.setenv("REPRO_TELEMETRY", "32")
        observer = telemetry_from_env(network)
        assert observer is not None
        assert observer.config.sample_interval == 32

    def test_env_gate_through_simulate_point(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "16")
        network = make_mesh_network()
        traffic = _uniform_traffic(network, stop_at=150)
        point = simulate_point(
            network, traffic,
            SimulationConfig(warmup_cycles=50, measure_cycles=100,
                             drain_cycles=100))
        assert point.events.get("telemetry_samples", 0) > 0


class TestObserver:
    def test_double_attach_rejected(self):
        network = make_mesh_network()
        simulator = Simulator()
        simulator.register(network)
        observer = TelemetryObserver(network).attach(simulator)
        with pytest.raises(ConfigurationError):
            observer.attach(simulator)

    def test_samples_at_interval(self):
        network = make_mesh_network()
        traffic = _uniform_traffic(network, stop_at=100)
        observer = _run_with_observer(
            network, 100, TelemetryConfig(sample_interval=25),
            traffic=traffic)
        cycles = [sample["cycle"] for sample in observer.samples]
        assert cycles == [0, 25, 50, 75, 100]  # finalize adds the last

    def test_finalize_idempotent(self):
        network = make_mesh_network()
        observer = _run_with_observer(network, 10)
        count = len(observer.samples)
        observer.finalize(10)
        assert len(observer.samples) == count

    def test_sample_shape(self):
        network = make_mesh_network()
        traffic = _uniform_traffic(network, stop_at=64)
        observer = _run_with_observer(
            network, 64, TelemetryConfig(sample_interval=32),
            traffic=traffic)
        sample = observer.samples[-1]
        assert sample["type"] == "sample"
        assert len(sample["occupancy"]) == len(network.routers)
        assert len(sample["stalled"]) == len(network.routers)
        for key in ("created", "injected", "delivered", "in_flight",
                    "backlog", "frozen", "links", "events"):
            assert key in sample
        assert network.stats.events["telemetry_samples"] == \
            len(observer.samples)

    def test_event_deltas_skip_own_counters(self):
        network = make_mesh_network()
        traffic = _uniform_traffic(network, stop_at=128)
        observer = _run_with_observer(
            network, 128, TelemetryConfig(sample_interval=16),
            traffic=traffic)
        for sample in observer.samples:
            assert not any(name.startswith("telemetry_")
                           for name in sample["events"])

    def test_packet_traces_record_hops_and_deliveries(self):
        network = make_mesh_network()
        traffic = _uniform_traffic(network, stop_at=100)
        observer = _run_with_observer(
            network, 200, TelemetryConfig(packet_traces=True),
            traffic=traffic)
        kinds = {record[1] for record in observer.hops}
        assert kinds == {"hop", "deliver"}
        delivered = sum(1 for record in observer.hops
                        if record[1] == "deliver")
        assert delivered == network.stats.packets_delivered

    def test_spans_need_spin(self):
        network = make_mesh_network()  # no SPIN framework
        observer = TelemetryObserver(network)
        assert observer._tracer is None
        spin_network = make_mesh_network(spin=SpinParams(tdd=16))
        assert TelemetryObserver(spin_network)._tracer is not None

    def test_max_samples_caps_records_not_counters(self):
        network = make_mesh_network()
        config = TelemetryConfig(sample_interval=1, max_samples=5)
        observer = _run_with_observer(network, 20, config)
        assert len(observer.samples) == 5
        assert network.stats.events["telemetry_samples"] == 21

    def test_frozen_vcs_counted(self):
        network = make_mesh_network(spin=SpinParams(tdd=8))
        craft_square_deadlock(network)
        observer = _run_with_observer(
            network, 300, TelemetryConfig(sample_interval=8))
        assert any(sample["frozen"] > 0 for sample in observer.samples)
        assert network.stats.packets_delivered == 4
