"""Experiment harness: named configurations, runners and report tables."""

from repro.harness.configs import (
    DesignConfig,
    MESH_DESIGNS,
    DRAGONFLY_DESIGNS,
    get_design,
    resolve_design_name,
    build_network,
)
from repro.harness.parallel import ParallelRunner, SpecResult
from repro.harness.runner import (
    ExperimentSpec,
    latency_curve,
    run_design,
    spec_grid,
)
from repro.harness.tables import format_table
from repro.harness.theories import TABLE_I, TheoryRow

__all__ = [
    "DesignConfig",
    "MESH_DESIGNS",
    "DRAGONFLY_DESIGNS",
    "get_design",
    "resolve_design_name",
    "build_network",
    "ExperimentSpec",
    "ParallelRunner",
    "SpecResult",
    "spec_grid",
    "latency_curve",
    "run_design",
    "format_table",
    "TABLE_I",
    "TheoryRow",
]
