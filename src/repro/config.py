"""Configuration dataclasses shared across the simulator.

Two configuration objects parameterize every experiment:

* :class:`NetworkConfig` — the datapath: virtual channels, virtual networks,
  buffer depth, router/link latencies, packet sizes.
* :class:`SpinParams` — the SPIN recovery framework of the paper (Sec. IV):
  the deadlock-detection threshold ``tdd``, the rotating-priority epoch, and
  implementation knobs called out in DESIGN.md for ablation.

Both objects validate themselves on construction so an inconsistent
experiment fails loudly before any cycles are simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Length (in flits) of a control packet in the paper's synthetic traffic mix.
CONTROL_PACKET_FLITS = 1
#: Length (in flits) of a data packet in the paper's synthetic traffic mix.
DATA_PACKET_FLITS = 5


@dataclass
class NetworkConfig:
    """Datapath parameters of the simulated network.

    The simulator models virtual-cut-through (VCT) switching: each virtual
    channel buffer is deep enough to hold one maximum-size packet and is
    allocated to at most one packet at a time.  This matches the VCT
    implementation the paper describes in Sec. IV-B.

    Attributes:
        vcs_per_vnet: Virtual channels per virtual network at each input
            port.  ``1`` gives the paper's headline "truly one-VC" designs.
        num_vnets: Number of virtual networks (message classes).  Synthetic
            traffic uses 1; the PARSEC proxy uses 3 as in the paper.
        buffer_depth: Flit capacity of one VC buffer.  Must be at least
            ``max_packet_length`` for VCT.
        router_latency: Pipeline latency of a router in cycles (the paper
            evaluates single-cycle routers).
        link_latency: Default link traversal latency in cycles; individual
            links may override it (dragonfly global links are 3 cycles).
        max_packet_length: Largest packet, in flits, that the traffic may
            inject.

    Each NIC has one ejection port with unbounded acceptance — the paper's
    NICs "eject flits without any stalls".
    """

    vcs_per_vnet: int = 1
    num_vnets: int = 1
    buffer_depth: int = DATA_PACKET_FLITS
    router_latency: int = 1
    link_latency: int = 1
    max_packet_length: int = DATA_PACKET_FLITS

    def __post_init__(self) -> None:
        if self.vcs_per_vnet < 1:
            raise ConfigurationError("vcs_per_vnet must be >= 1")
        if self.num_vnets < 1:
            raise ConfigurationError("num_vnets must be >= 1")
        if self.router_latency < 1 or self.link_latency < 1:
            raise ConfigurationError("router and link latency must be >= 1")
        if self.max_packet_length < 1:
            raise ConfigurationError("max_packet_length must be >= 1")
        if self.buffer_depth < self.max_packet_length:
            raise ConfigurationError(
                "virtual-cut-through requires buffer_depth >= max_packet_length "
                f"(got depth={self.buffer_depth}, max packet={self.max_packet_length})"
            )

    @property
    def total_vcs(self) -> int:
        """Total VCs per input port across all virtual networks."""
        return self.vcs_per_vnet * self.num_vnets


@dataclass
class SpinParams:
    """Parameters of the SPIN deadlock-recovery framework (paper Sec. IV).

    Attributes:
        enabled: Whether SPIN controllers are attached to the routers.
        tdd: Deadlock-detection threshold in cycles.  The paper's default is
            128; smaller values are convenient for unit tests.
        epoch_factor: The rotating-priority epoch is ``epoch_factor * tdd``
            cycles (Sec. IV-C1 chooses 4).
        probe_move_enabled: Enables the probe_move optimization for deadlocks
            that need multiple spins (Sec. IV-B4).  Exposed for ablation.
        strict_priority_drop: If true, a probe is dropped at *any* router
            whose dynamic priority exceeds its sender's (the literal reading
            of Sec. IV-C1).  The default drops probes only on output-link
            contention, matching the paper's "common case" discussion.  See
            DESIGN.md substitution note 5.
        sync_slack: Extra cycles added on top of ``2 x loop_delay`` when
            scheduling the spin cycle.  0 reproduces the paper's formula.
        probe_path_factor: A probe whose recorded path exceeds
            ``probe_path_factor x num_routers`` hops is dropped.  Any simple
            dependency chain visits a router at most once per input port, and
            the paper's figure-8 case at most twice, so 2 covers every
            resolvable loop; the cap exists to shoot down *orbiting* probes
            (rho-shaped dependency walks) which otherwise win link contention
            for their whole orbit and starve other recoveries.
        max_spins: Safety valve for simulation only — abort the run if one
            deadlock needs more than this many spins (the theory bounds the
            number of spins, so hitting this indicates a bug, not a policy).
        watchdog_enabled: Hardening against *lost* special messages (faulty
            control wiring, runtime link failures — see docs/FAULTS.md):
            every SM round trip an initiator starts is covered by a
            watchdog timeout derived from the theorem's loop-delay bound;
            on expiry the SM is retried a bounded number of times with
            exponential backoff, after which the FSM degrades gracefully
            back to detection/OFF instead of hanging.
        watchdog_margin: Extra cycles added on top of the loop-delay bound
            when arming a watchdog (absorbs SM queueing jitter).
        max_sm_retries: Retries per lost SM round trip before the watchdog
            gives up and the FSM resets.
        backoff_factor: Multiplier applied to the watchdog timeout after
            each retry (exponential backoff).
    """

    enabled: bool = True
    tdd: int = 128
    epoch_factor: int = 4
    probe_move_enabled: bool = True
    strict_priority_drop: bool = False
    sync_slack: int = 0
    probe_path_factor: int = 2
    max_spins: int = 10_000
    watchdog_enabled: bool = True
    watchdog_margin: int = 16
    max_sm_retries: int = 3
    backoff_factor: int = 2

    def __post_init__(self) -> None:
        if self.tdd < 1:
            raise ConfigurationError("tdd must be >= 1")
        if self.epoch_factor < 1:
            raise ConfigurationError("epoch_factor must be >= 1")
        if self.sync_slack < 0:
            raise ConfigurationError("sync_slack must be >= 0")
        if self.probe_path_factor < 1:
            raise ConfigurationError("probe_path_factor must be >= 1")
        if self.max_spins < 1:
            raise ConfigurationError("max_spins must be >= 1")
        if self.watchdog_margin < 0:
            raise ConfigurationError("watchdog_margin must be >= 0")
        if self.max_sm_retries < 0:
            raise ConfigurationError("max_sm_retries must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be >= 1")

    @property
    def epoch_length(self) -> int:
        """Length of one rotating-priority epoch in cycles."""
        return self.epoch_factor * self.tdd


@dataclass
class SimulationConfig:
    """Run-length and measurement-window parameters for one simulation.

    Attributes:
        warmup_cycles: Cycles simulated before statistics collection starts.
        measure_cycles: Cycles during which injected packets are tracked for
            latency/throughput statistics.
        drain_cycles: Extra cycles after the measurement window to let
            measured packets reach their destinations.
        seed: Seed for the simulation's deterministic RNG.
        deadlock_abort_cycles: If no flit moves anywhere in the network for
            this many consecutive cycles, the run is declared wedged and
            stopped early (used to detect unrecovered deadlocks in baseline
            designs).  ``0`` disables the check.
        wedge_poll_interval: How many cycles the measure/drain loop
            simulates between wedge checks.  Smaller values detect a wedge
            sooner (tighter abort latency) at the cost of more Python-level
            loop overhead; the former hardcoded value was 200.
    """

    warmup_cycles: int = 1_000
    measure_cycles: int = 5_000
    drain_cycles: int = 2_000
    seed: int = 1
    deadlock_abort_cycles: int = 0
    wedge_poll_interval: int = 200

    def __post_init__(self) -> None:
        if min(self.warmup_cycles, self.measure_cycles, self.drain_cycles) < 0:
            raise ConfigurationError("cycle counts must be non-negative")
        if self.wedge_poll_interval < 1:
            raise ConfigurationError("wedge_poll_interval must be >= 1")

    @property
    def total_cycles(self) -> int:
        """Total number of cycles one run simulates."""
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles

    def to_dict(self) -> dict:
        """JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return {
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "drain_cycles": self.drain_cycles,
            "seed": self.seed,
            "deadlock_abort_cycles": self.deadlock_abort_cycles,
            "wedge_poll_interval": self.wedge_poll_interval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild from :meth:`to_dict` output (validates on construction)."""
        known = {
            "warmup_cycles", "measure_cycles", "drain_cycles", "seed",
            "deadlock_abort_cycles", "wedge_poll_interval",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SimulationConfig field(s) {sorted(unknown)}",
                known=sorted(known))
        return cls(**data)
