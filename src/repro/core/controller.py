"""Per-router SPIN controller.

Implements the paper's router-side machinery (Sec. IV-A/B, Table II):

* the **detection counter** — points at one occupied VC at a time
  (round-robin) and fires after ``tDD`` cycles without movement;
* the **probe manager** — forks/forwards/drops probes per the rules of
  Sec. IV-B1 and initiates recovery when its own probe returns;
* the **move manager** — freezes VCs on move/probe_move, unfreezes on
  kill_move, tracks the latched source id and the ``is_deadlock`` bit;
* the **loop buffer** — stores the deadlock path between spins.

The controller never touches the datapath directly except by freezing VCs;
the synchronized movement itself is performed by
:class:`repro.core.executor.SpinExecutor`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.fsm import FREEZABLE_STATES, SpinState
from repro.core.messages import (
    KillMoveMessage,
    MoveMessage,
    ProbeMessage,
    ProbeMoveMessage,
)
from repro.network.router import is_ejection_port
from repro.network.vc import VirtualChannel


class SpinController:
    """SPIN state machine and SM handlers for one router."""

    def __init__(self, router, framework) -> None:
        self.router = router
        self.framework = framework
        self.params = framework.params
        self.state = SpinState.OFF
        #: Absolute cycle of the next counter event in the current state.
        self.deadline: Optional[int] = None

        # Detection counter pointer.
        self.pointer: Optional[Tuple[int, int]] = None  # (inport, vc index)
        self.pointed_uid: Optional[int] = None

        # Initiator-side latched context.
        self.probe_inport: Optional[int] = None
        self.probe_outport: Optional[int] = None
        #: Message class of the probed dependency; all SMs of this recovery
        #: are scoped to it (deadlocks form within one vnet).
        self.probe_vnet: int = 0
        #: The loop buffer (Table II): outports of the loop's other routers.
        self.loop_path: Tuple[int, ...] = ()
        self.loop_delay = 0
        self.spin_cycle: Optional[int] = None
        #: Deferred probe_move emission ("after one spin is complete").
        self.probe_move_send_at: Optional[int] = None

        # Move-manager state shared by initiator and others.
        self.is_deadlock = False
        self.latched_source: Optional[int] = None

        # Watchdog state (SM-loss hardening, docs/FAULTS.md): the last
        # outstanding probe round trip as (inport, outport, vnet,
        # timeout_cycle, retries), and the kill_move retry budget used.
        self.probe_pending: Optional[Tuple[int, int, int, int, int]] = None
        self.kill_retries = 0

        # Round-robin scan ring over the network VCs (cached: the router's
        # inports are fixed after fabric construction).
        self._vc_ring: Optional[list] = None
        self._vc_pos: Optional[dict] = None

    # ------------------------------------------------------------------
    # Counter tick (called once per cycle)
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        state = self.state
        if state is SpinState.OFF:
            if self.router.active_vcs:
                self._point_at_next_active_vc(now)
            return
        if state is SpinState.DD:
            self._check_probe_watchdog(now)
            self._tick_detection(now)
        elif state is SpinState.MOVE:
            if now >= self.deadline:
                # The move round trip timed out: some hop dropped it (link
                # contention, dead link, or an injected SM fault).
                self.framework.stats.count("watchdog_fires")
                self._start_kill(now)
        elif state is SpinState.PROBE_MOVE:
            if self.probe_move_send_at is not None and now >= self.probe_move_send_at:
                self._emit_probe_move(now)
            elif self.probe_move_send_at is None and now >= self.deadline:
                self.framework.stats.count("watchdog_fires")
                self._start_kill(now)
        elif state is SpinState.KILL_MOVE:
            if now >= self.deadline:
                self._kill_watchdog(now)
        elif state in (SpinState.FROZEN, SpinState.FORWARD_PROGRESS):
            # The executor normally drives these states at the spin cycle.
            # If that cycle passed without a callback (lost kill_move race),
            # escape back to detection rather than hang forever.
            if self.deadline is not None and now > self.deadline + 1:
                if self.latched_source is not None:
                    self._unfreeze_own(self.latched_source)
                self.is_deadlock = False
                self.latched_source = None
                self.framework.stats.count("freeze_timeouts")
                self.framework.stats.count("watchdog_fires")
                self._reset_to_detection(now)

    def _tick_detection(self, now: int) -> None:
        vc = self._pointed_vc()
        if vc is None or vc.packet is None or vc.packet.uid != self.pointed_uid:
            self._point_at_next_active_vc(now)
            return
        if now < self.deadline:
            return
        packet = vc.packet
        request = packet.current_request
        if (
            not vc.frozen
            and vc.fully_arrived(now)
            and request is not None
            and not is_ejection_port(request)
        ):
            self._send_probe(now, vc.inport, request, packet.vnet)
        # Counter resets with the same threshold and the pointer advances
        # round-robin, so every stuck VC at this router is eventually
        # probed.  (A pointer parked on one VC forever could starve the
        # core cycle of a rho-shaped dependency chain: that VC's probe
        # walks into a loop it is not part of and orbits without ever
        # returning, while the VC that *is* on the loop never gets probed.)
        self._point_at_next_active_vc(now)

    # ------------------------------------------------------------------
    # Pointer management
    # ------------------------------------------------------------------
    def _pointed_vc(self) -> Optional[VirtualChannel]:
        if self.pointer is None:
            return None
        inport, index = self.pointer
        vcs = self.router.inports.get(inport)
        if vcs is None or index >= len(vcs):
            return None
        return vcs[index]

    def _network_vcs(self):
        for inport in sorted(self.router.inports):
            for vc in self.router.inports[inport]:
                yield vc

    def _point_at_next_active_vc(self, now: int) -> None:
        """Advance the pointer round-robin to the next occupied VC."""
        vcs = self._vc_ring
        if vcs is None:
            vcs = self._vc_ring = list(self._network_vcs())
            self._vc_pos = {(vc.inport, vc.index): i
                            for i, vc in enumerate(vcs)}
        if not vcs:
            self._go_off()
            return
        start = 0
        if self.pointer is not None:
            pos = self._vc_pos.get(self.pointer)
            if pos is not None:
                start = pos + 1
        count = len(vcs)
        for offset in range(count):
            vc = vcs[(start + offset) % count]
            if vc.packet is not None:
                self.pointer = (vc.inport, vc.index)
                self.pointed_uid = vc.packet.uid
                self.state = SpinState.DD
                self.deadline = now + self.params.tdd
                return
        self._go_off()

    def _go_off(self) -> None:
        self.state = SpinState.OFF
        self.pointer = None
        self.pointed_uid = None
        self.deadline = None
        self.probe_pending = None

    # ------------------------------------------------------------------
    # Initiator actions
    # ------------------------------------------------------------------
    def _send_probe(self, now: int, inport: int, outport: int,
                    vnet: int, retries: int = 0) -> None:
        probe = ProbeMessage(sender=self.router.id, send_cycle=now,
                             origin_inport=inport, origin_outport=outport,
                             vnet=vnet)
        self.framework.send_sm(self.router.id, outport, probe, now)
        self.framework.on_probe_sent(self.router.id, now)
        if self.params.watchdog_enabled:
            # Arm the SM-loss watchdog (docs/FAULTS.md): the round trip is
            # bounded by the theorem's loop-delay bound; exponential backoff
            # keeps retries of a persistently-lossy path cheap.
            timeout = (self.framework.sm_rtt_bound
                       * self.params.backoff_factor ** retries
                       + self.params.watchdog_margin)
            self.probe_pending = (inport, outport, vnet, now + timeout,
                                  retries)

    def _check_probe_watchdog(self, now: int) -> None:
        """Retry (bounded) a probe whose round trip outlived its bound.

        The rotating detection pointer is the natural re-probe mechanism in
        fault-free operation; the watchdog is the backstop for *lost* SMs —
        it re-probes the same dependency promptly instead of waiting a full
        ``tdd`` rotation, and gives up after ``max_sm_retries`` so a truly
        dead control path degrades back to plain detection.
        """
        pending = self.probe_pending
        if pending is None or now < pending[3]:
            return
        inport, outport, vnet, _, retries = pending
        self.probe_pending = None
        self.framework.stats.count("watchdog_fires")
        if retries >= self.params.max_sm_retries:
            self.framework.stats.count("watchdog_gave_up")
            return
        if self._freezable_vc(inport, outport, vnet, now) is None:
            return  # The dependency resolved itself; nothing to retry.
        self.framework.stats.count("sm_retries")
        self.framework.stats.count("probe_retries")
        self._send_probe(now, inport, outport, vnet, retries=retries + 1)

    def _kill_watchdog(self, now: int) -> None:
        """The kill_move round trip timed out: retry it, then reset.

        A lost kill_move is the most dangerous SM loss — downstream routers
        keep VCs frozen for a spin that will never happen (the FROZEN escape
        in :meth:`tick` eventually unsticks them, but slowly).  Retrying the
        kill is cheap and idempotent: unfreezing an already-thawed VC is a
        no-op.  After ``max_sm_retries`` the initiator resets regardless —
        its own state must not hang on a dead control path.
        """
        self.framework.stats.count("watchdog_fires")
        if (
            self.params.watchdog_enabled
            and self.kill_retries < self.params.max_sm_retries
            and self.loop_path
        ):
            self.kill_retries += 1
            self.framework.stats.count("sm_retries")
            self.framework.stats.count("kill_move_retries")
            self.deadline = now + (
                (self.loop_delay + self.params.sync_slack + 1)
                * self.params.backoff_factor ** self.kill_retries)
            kill = KillMoveMessage(sender=self.router.id, send_cycle=now,
                                   path=self.loop_path, hop_index=1,
                                   vnet=self.probe_vnet)
            self.framework.send_sm(self.router.id, self.probe_outport, kill,
                                   now)
            self.framework.stats.count("kill_moves_sent")
            return
        self.framework.stats.count("watchdog_resets")
        self._finish_recovery(now)

    def _start_move(self, now: int, probe: ProbeMessage) -> None:
        self.loop_path = probe.path
        self.loop_delay = now - probe.send_cycle
        self.state = SpinState.MOVE
        self.deadline = now + self.loop_delay + self.params.sync_slack + 1
        self.spin_cycle = now + 2 * self.loop_delay + self.params.sync_slack
        move = MoveMessage(sender=self.router.id, send_cycle=now,
                           path=self.loop_path, spin_cycle=self.spin_cycle,
                           hop_index=1, vnet=self.probe_vnet)
        self.framework.send_sm(self.router.id, self.probe_outport, move, now)
        self.framework.stats.count("moves_sent")

    def _emit_probe_move(self, now: int) -> None:
        self.probe_move_send_at = None
        self.spin_cycle = now + 2 * self.loop_delay + self.params.sync_slack
        self.deadline = now + self.loop_delay + self.params.sync_slack + 1
        probe_move = ProbeMoveMessage(
            sender=self.router.id, send_cycle=now, path=self.loop_path,
            spin_cycle=self.spin_cycle, hop_index=1, vnet=self.probe_vnet)
        self.framework.send_sm(self.router.id, self.probe_outport,
                               probe_move, now)
        self.framework.stats.count("probe_moves_sent")

    def _start_kill(self, now: int) -> None:
        """The move/probe_move was dropped somewhere: cancel the spin."""
        self.state = SpinState.KILL_MOVE
        self.kill_retries = 0
        self.deadline = now + self.loop_delay + self.params.sync_slack + 1
        kill = KillMoveMessage(sender=self.router.id, send_cycle=now,
                               path=self.loop_path, hop_index=1,
                               vnet=self.probe_vnet)
        self.framework.send_sm(self.router.id, self.probe_outport, kill, now)
        self.framework.stats.count("kill_moves_sent")

    def _finish_recovery(self, now: int) -> None:
        """Clear all initiator context and resume detection."""
        if self.latched_source == self.router.id:
            self.is_deadlock = False
            self.latched_source = None
            self._unfreeze_own(self.router.id)
        self.loop_path = ()
        self.spin_cycle = None
        self.probe_move_send_at = None
        self.probe_inport = None
        self.probe_outport = None
        self.pointer = None
        self.pointed_uid = None
        self.probe_pending = None
        self.kill_retries = 0
        self.state = SpinState.DD
        self._point_at_next_active_vc(now)

    def _unfreeze_own(self, source: int) -> None:
        for inport, vcs in self.router.all_inports():
            for vc in vcs:
                if vc.frozen and vc.freeze_source == source:
                    vc.clear_freeze()

    # ------------------------------------------------------------------
    # SM reception
    # ------------------------------------------------------------------
    def on_sm(self, sm, inport: int, now: int) -> None:
        if sm.kind == "probe":
            self._on_probe(sm, inport, now)
        elif sm.kind == "move":
            self._on_move(sm, inport, now)
        elif sm.kind == "probe_move":
            self._on_probe_move(sm, inport, now)
        elif sm.kind == "kill_move":
            self._on_kill_move(sm, inport, now)

    # --- probe ---------------------------------------------------------
    def _on_probe(self, probe: ProbeMessage, inport: int, now: int) -> None:
        if (
            probe.sender == self.router.id
            and inport == probe.origin_inport
            and self.state is SpinState.DD
        ):
            self._accept_own_probe(probe, inport, now)
            return
        self._forward_probe(probe, inport, now)

    def _accept_own_probe(self, probe: ProbeMessage, inport: int,
                          now: int) -> None:
        # The detection pointer may have rotated onward since this probe was
        # sent; what matters is that the probed dependency still exists:
        # some VC at the probe's origin input port still waits on its origin
        # output port.  Latch the origin as the recovery context — the move
        # must leave through the same port the probe did for the path to
        # align hop-by-hop.
        self.probe_pending = None  # The round trip completed: disarm.
        self.probe_inport = probe.origin_inport
        self.probe_outport = probe.origin_outport
        self.probe_vnet = probe.vnet
        vc = self._freezable_vc(self.probe_inport, self.probe_outport,
                                probe.vnet, now)
        if vc is None:
            # Stale: the situation changed while the probe was in flight.
            self.framework.stats.count("probes_stale")
            return
        if self.is_deadlock and self.latched_source != self.router.id:
            # Another recovery already owns this router.
            self.framework.stats.count("probes_stale")
            return
        self.framework.stats.count("probes_returned")
        self._start_move(now, probe)

    def _forward_probe(self, probe: ProbeMessage, inport: int,
                       now: int) -> None:
        framework = self.framework
        if self.params.strict_priority_drop:
            mine = framework.priority.dynamic_priority(self.router.id, now)
            theirs = framework.priority.dynamic_priority(probe.sender, now)
            if mine > theirs:
                framework.stats.count("probes_dropped_priority")
                return
        if len(probe.path) >= framework.max_probe_path:
            framework.stats.count("probes_dropped_length")
            return
        if inport not in self.router.inports:
            return
        vcs = self.router.vnet_slice(inport, probe.vnet)
        if not vcs:
            return
        requests = []
        for vc in vcs:
            packet = vc.packet
            if packet is None:
                # Not all VCs at the probe's input port are active: drop.
                framework.stats.count("probes_dropped_idle_vc")
                return
            request = packet.current_request
            if request is None or is_ejection_port(request):
                continue
            if request not in requests:
                requests.append(request)
        if not requests:
            # Every packet here is waiting for ejection (or undecided).
            framework.stats.count("probes_dropped_ejecting")
            return
        for outport in requests:
            framework.send_sm(self.router.id, outport,
                              probe.forked(outport), now)

    # --- move ----------------------------------------------------------
    def _on_move(self, move: MoveMessage, inport: int, now: int) -> None:
        if move.sender == self.router.id and not move.path:
            self._on_own_move_returned(move, inport, now)
            return
        if self.is_deadlock and self.latched_source != move.sender:
            self.framework.stats.count("moves_dropped_busy")
            return
        if self._yields_to_rival_initiator(move.sender, now):
            self.framework.stats.count("moves_dropped_priority")
            return
        if not move.path:
            self.framework.stats.count("moves_dropped_malformed")
            return
        vc = self._freezable_vc(inport, move.first_port, move.vnet, now)
        if vc is None:
            self.framework.stats.count("moves_dropped_no_dependency")
            return
        self._freeze(vc, move, now)
        self.framework.send_sm(self.router.id, move.first_port,
                               move.advanced(), now)

    def _on_own_move_returned(self, move: MoveMessage, inport: int,
                              now: int) -> None:
        if self.state is not SpinState.MOVE or move.spin_cycle != self.spin_cycle:
            self.framework.stats.count("moves_stale")
            return
        if self.is_deadlock and self.latched_source != self.router.id:
            self._start_kill(now)
            return
        vc = self._freezable_vc(self.probe_inport, self.probe_outport,
                                self.probe_vnet, now)
        if vc is None:
            self._start_kill(now)
            return
        self.is_deadlock = True
        self.latched_source = self.router.id
        vc.freeze(self.probe_outport, self.router.id, self.spin_cycle,
                  path_index=0)
        self.framework.executor.register(vc)
        self.state = SpinState.FORWARD_PROGRESS
        self.deadline = self.spin_cycle
        self.framework.stats.count("moves_returned")

    def _yields_to_rival_initiator(self, sender: int, now: int) -> bool:
        """Symmetry breaker between concurrent recovery initiators.

        When multiple routers of the *same* deadlocked ring initiate
        recovery in the same epoch (possible because their tDD counters are
        independent), every move would otherwise kill every other through
        the source-id latch, livelocking the recovery.  The rotating
        priority of Sec. IV-C1 resolves the race: an active initiator
        processes a rival's move only if that rival currently outranks it —
        so exactly one recovery (the highest-priority initiator's) survives
        each round.
        """
        if self.state not in (SpinState.MOVE, SpinState.PROBE_MOVE,
                              SpinState.KILL_MOVE):
            return False
        priority = self.framework.priority
        return (priority.dynamic_priority(sender, now)
                < priority.dynamic_priority(self.router.id, now))

    def _freezable_vc(self, inport: Optional[int], outport: int,
                      vnet: int, now: int) -> Optional[VirtualChannel]:
        """A VC of ``vnet`` at ``inport`` whose packet waits on ``outport``."""
        if inport is None:
            return None
        if inport not in self.router.inports:
            return None
        vcs = self.router.vnet_slice(inport, vnet)
        if not vcs:
            return None
        for vc in vcs:
            packet = vc.packet
            if (
                packet is not None
                and not vc.frozen
                and vc.fully_arrived(now)
                and packet.current_request == outport
            ):
                return vc
        return None

    def _freeze(self, vc: VirtualChannel, move, now: int) -> None:
        vc.freeze(move.first_port, move.sender, move.spin_cycle,
                  path_index=move.hop_index)
        self.is_deadlock = True
        self.latched_source = move.sender
        if self.state in FREEZABLE_STATES:
            self.state = SpinState.FROZEN
            self.deadline = move.spin_cycle
        self.framework.executor.register(vc)

    # --- probe_move ------------------------------------------------------
    def _on_probe_move(self, probe_move: ProbeMoveMessage, inport: int,
                       now: int) -> None:
        if probe_move.sender == self.router.id and not probe_move.path:
            self._on_own_probe_move_returned(probe_move, now)
            return
        if self.is_deadlock and self.latched_source != probe_move.sender:
            self.framework.stats.count("probe_moves_dropped_busy")
            return
        if self._yields_to_rival_initiator(probe_move.sender, now):
            self.framework.stats.count("probe_moves_dropped_priority")
            return
        if not probe_move.path:
            self.framework.stats.count("probe_moves_dropped_malformed")
            return
        vc = self._freezable_vc(inport, probe_move.first_port,
                                probe_move.vnet, now)
        if vc is None:
            # The dependency chain is gone: the previous spin resolved it.
            self.framework.stats.count("probe_moves_dropped_no_dependency")
            return
        self._freeze(vc, probe_move, now)
        self.framework.send_sm(self.router.id, probe_move.first_port,
                               probe_move.advanced(), now)

    def _on_own_probe_move_returned(self, probe_move: ProbeMoveMessage,
                                    now: int) -> None:
        if (
            self.state is not SpinState.PROBE_MOVE
            or probe_move.spin_cycle != self.spin_cycle
        ):
            self.framework.stats.count("probe_moves_stale")
            return
        if self.is_deadlock and self.latched_source != self.router.id:
            self._start_kill(now)
            return
        vc = self._freezable_vc(self.probe_inport, self.probe_outport,
                                self.probe_vnet, now)
        if vc is None:
            self._start_kill(now)
            return
        self.is_deadlock = True
        self.latched_source = self.router.id
        vc.freeze(self.probe_outport, self.router.id, self.spin_cycle,
                  path_index=0)
        self.framework.executor.register(vc)
        self.state = SpinState.FORWARD_PROGRESS
        self.deadline = self.spin_cycle
        self.framework.stats.count("probe_moves_returned")

    # --- kill_move -------------------------------------------------------
    def _on_kill_move(self, kill: KillMoveMessage, inport: int,
                      now: int) -> None:
        if kill.sender == self.router.id and not kill.path:
            if self.state is SpinState.KILL_MOVE:
                self._finish_recovery(now)
            return
        if self.is_deadlock and self.latched_source != kill.sender:
            self.framework.stats.count("kill_moves_dropped_busy")
            return
        if not kill.path:
            self.framework.stats.count("kill_moves_dropped_malformed")
            return
        self._unfreeze_own(kill.sender)
        if self.latched_source == kill.sender:
            self.is_deadlock = False
            self.latched_source = None
            if self.state is SpinState.FROZEN:
                self.state = SpinState.DD
                self._point_at_next_active_vc(now)
        self.framework.send_sm(self.router.id, kill.first_port,
                               kill.advanced(), now)

    # ------------------------------------------------------------------
    # Executor callbacks
    # ------------------------------------------------------------------
    def on_spin_complete(self, now: int, was_initiator: bool) -> None:
        """A spin this router participated in just happened."""
        self.is_deadlock = False
        self.latched_source = None
        if was_initiator and self.params.probe_move_enabled and self.loop_path:
            self.state = SpinState.PROBE_MOVE
            # "After one spin is complete": wait for the rotated packets'
            # tails to land and their new requests to be computed.
            settle = (self.framework.network.config.max_packet_length
                      + self.framework.network.config.router_latency + 1)
            self.probe_move_send_at = now + settle
            self.deadline = self.probe_move_send_at + self.loop_delay + 2
        else:
            self._reset_to_detection(now)

    def on_spin_aborted(self, now: int) -> None:
        """The executor refused the spin (broken chain / unsafe push)."""
        self.is_deadlock = False
        self.latched_source = None
        self._reset_to_detection(now)

    def _reset_to_detection(self, now: int) -> None:
        self.loop_path = ()
        self.spin_cycle = None
        self.probe_move_send_at = None
        self.probe_inport = None
        self.probe_outport = None
        self.pointer = None
        self.pointed_uid = None
        self.probe_pending = None
        self.kill_retries = 0
        self.state = SpinState.DD
        self._point_at_next_active_vc(now)
