"""The runtime invariant oracle.

:class:`InvariantOracle` watches one network from inside the cycle loop.  It
registers itself as a simulator *observer* (:meth:`repro.sim.engine.Simulator
.register_observer`), so it sees the settled state of every cycle after all
components ran — and costs nothing when not attached.  On top of the
stateless snapshot checks of :mod:`repro.verify.invariants` it owns the
history-dependent invariants:

* **packet conservation** — a per-cycle census of resident packet uids; a
  uid may only vanish by delivery or a counted loss (both captured by
  wrapping ``network.deliver`` and ``stats.record_loss`` at attach time);
* **teleport detection** — between consecutive censuses a resident packet
  moves at most one hop along an existing link (or from its NIC queue into
  the attached router);
* **delivery soundness** — no packet delivered twice, none delivered to a
  foreign NIC;
* **FSM transition legality** — per-router SPIN state deltas checked against
  :data:`repro.verify.invariants.ILLEGAL_TRANSITIONS`;
* **link counter monotonicity** — utilization counters never run backwards
  within one measurement epoch;
* **deadlock persistence** — periodically, the ground-truth wait-graph
  oracle (:mod:`repro.deadlock.waitgraph`) must not report the *same*
  deadlocked packet (no hop progress) for longer than the theory's
  recovery-latency bound.

Policy lives here too: ``mode="raise"`` turns the first violation into an
:class:`~repro.errors.InvariantViolation` exception; ``mode="record"``
accumulates deduplicated violations on :attr:`InvariantOracle.violations`
and counts every occurrence into ``network.stats.events`` (keys
``invariant_violations`` and ``violation_<name>``), from where they flow
into :class:`~repro.stats.sweep.SweepPoint` untouched.

Enable without code changes via the ``REPRO_VERIFY`` environment variable
(see :func:`oracle_from_env`): ``strict``/``raise`` raises on first
violation, ``record``/``1`` records.  See docs/VERIFY.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.deadlock.waitgraph import (
    find_deadlocked_packets,
    spin_persistence_bound,
)
from repro.errors import ConfigurationError, InvariantViolation
from repro.verify.invariants import (
    ILLEGAL_TRANSITIONS,
    INVARIANTS,
    STATELESS_CHECKS,
    check_freeze_legality,
    iter_resident,
)

#: ``REPRO_VERIFY`` values that enable the oracle, mapped to its mode.
_ENV_MODES = {
    "1": "record",
    "record": "record",
    "strict": "raise",
    "raise": "raise",
}

#: Deadlock-persistence bound when recovery is a Static Bubble control
#: plane (its detection threshold plus drain, with ample margin).
_STATIC_BUBBLE_BOUND = 8192


@dataclass
class OracleConfig:
    """Tuning knobs of :class:`InvariantOracle`.

    Attributes:
        mode: ``"raise"`` (fail the run on first violation) or ``"record"``
            (accumulate and count, never raise).
        check_interval: Cycles between full snapshot checks (1 = every
            cycle).  History checks that need *consecutive* observations
            (teleport, FSM transitions) disable themselves automatically
            when the interval exceeds 1.
        deadlock_check_interval: Cycles between ground-truth wait-graph
            evaluations (they walk the whole network).
        deadlock_bound: Max cycles one packet may stay truly deadlocked
            without hop progress.  ``None`` auto-derives from the attached
            recovery theory (see :meth:`InvariantOracle.deadlock_bound`);
            pass ``0`` to flag any deadlock confirmed by two consecutive
            evaluations, or a negative value to disable the check.
        overdue_slack: Max cycles a frozen VC may outlive its spin cycle.
            ``None`` auto-derives from the SPIN watchdog bounds.
        journal: Record per-delivery signatures for the differential
            conformance runner (:mod:`repro.verify.differential`).
        max_violations: Stop checking after this many recorded violations
            (record mode only) so a broken run cannot flood memory.
        checks: Restriction to a subset of :data:`INVARIANTS` names, or
            ``None`` for all.
    """

    mode: str = "raise"
    check_interval: int = 1
    deadlock_check_interval: int = 64
    deadlock_bound: Optional[int] = None
    overdue_slack: Optional[int] = None
    journal: bool = False
    max_violations: int = 1000
    checks: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "record"):
            raise ConfigurationError(
                "oracle mode must be 'raise' or 'record'", mode=self.mode)
        if self.check_interval < 1 or self.deadlock_check_interval < 1:
            raise ConfigurationError(
                "check intervals must be >= 1",
                check_interval=self.check_interval,
                deadlock_check_interval=self.deadlock_check_interval)
        if self.checks is not None:
            self.checks = frozenset(self.checks)
            unknown = self.checks - set(INVARIANTS)
            if unknown:
                raise ConfigurationError(
                    f"unknown invariant name(s) {sorted(unknown)}",
                    known=sorted(INVARIANTS))


class InvariantOracle:
    """Per-cycle invariant checker for one network.

    Usage::

        oracle = InvariantOracle(network, OracleConfig(mode="record"))
        oracle.attach(simulator)      # observer + delivery/loss hooks
        simulator.run(...)
        assert oracle.violation_count == 0, oracle.violations

    The oracle may also be used without a simulator: :meth:`check_now`
    performs one full sweep against the network's current state and returns
    the violations found (never raising) — the shape the mutation-kill
    property tests consume.
    """

    def __init__(self, network, config: Optional[OracleConfig] = None
                 ) -> None:
        self.network = network
        self.config = config or OracleConfig()
        #: Deduplicated violations (record mode keeps the first per site).
        self.violations: List[InvariantViolation] = []
        #: Total violation occurrences (including site duplicates).
        self.violation_count = 0
        #: Delivery journal for differential runs, when config.journal:
        #: (src_node, dst_node, length, vnet, create_cycle) per delivery.
        self.delivered_signatures: List[Tuple[int, int, int, int, int]] = []
        self._attached = False
        self._saturated = False
        self._seen_sites: Set[tuple] = set()

        # --- cross-cycle state ---
        self._census: Dict[int, tuple] = {}       # uid -> (location, hops)
        self._census_cycle: Optional[int] = None
        self._pending_exits: Set[int] = set()     # delivered/lost uids not
        self._delivered_ever: Set[int] = set()    # yet seen leaving census
        self._fsm_states: Optional[list] = None
        self._link_marks: Dict[tuple, tuple] = {}
        self._deadlock_seen: Dict[int, Tuple[int, int]] = {}
        self._last_deadlock_check: Optional[int] = None

        # --- static structure ---
        self._neighbors: Dict[int, Set[int]] = {}
        for link in network.links.values():
            self._neighbors.setdefault(link.src, set()).add(link.dst)
        self._nic_router = {nic.node: nic.router_id for nic in network.nics}

        self._deadlock_bound = self._auto_deadlock_bound()
        self._overdue_slack = self._auto_overdue_slack()

    # ------------------------------------------------------------------
    # Auto-configuration
    # ------------------------------------------------------------------
    def _recovery_latency_bound(self) -> Optional[int]:
        """Generous bound on one full SPIN recovery (detection through
        spin), covering watchdog retries; None when SPIN is not attached."""
        spin = self.network.spin
        if spin is None:
            return None
        return spin_persistence_bound(spin.params.tdd, spin.sm_rtt_bound)

    def _auto_deadlock_bound(self) -> Optional[int]:
        """Derive the deadlock-persistence bound from the attached theory.

        Returns None (check disabled) when no recovery/avoidance theory is
        recognized — without one, a persistent deadlock is a legitimate
        outcome (that is what Fig. 2 demonstrates), not a simulator bug.
        """
        if self.config.deadlock_bound is not None:
            bound = self.config.deadlock_bound
            return None if bound < 0 else bound
        network = self.network
        spin_bound = self._recovery_latency_bound()
        if spin_bound is not None:
            return spin_bound
        for plane in network.control_planes:
            if type(plane).__name__ == "StaticBubbleControlPlane":
                return _STATIC_BUBBLE_BOUND
        from repro.deadlock.bubble import BubbleFlowControlRouting
        from repro.routing.dor import DimensionOrderRouting
        from repro.routing.escape import EscapeVcRouting
        from repro.routing.table import UpDownRouting
        from repro.routing.turn_model import TurnModelRouting
        avoidance = (DimensionOrderRouting, BubbleFlowControlRouting,
                     EscapeVcRouting, TurnModelRouting, UpDownRouting)
        if isinstance(network.routing, avoidance):
            return 0  # provably deadlock-free: flag on confirmation
        return None

    def _auto_overdue_slack(self) -> int:
        if self.config.overdue_slack is not None:
            return self.config.overdue_slack
        bound = self._recovery_latency_bound()
        if bound is None:
            return _STATIC_BUBBLE_BOUND
        if self.network.fault_injector is not None:
            bound *= 4  # SM faults stretch kill/unfreeze retries
        return bound

    @property
    def deadlock_bound(self) -> Optional[int]:
        """Effective deadlock-persistence bound (None = check disabled)."""
        return self._deadlock_bound

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, simulator) -> "InvariantOracle":
        """Register as an observer and hook delivery/loss accounting."""
        if self._attached:
            raise ConfigurationError("oracle already attached")
        self._attached = True
        # Fault injectors bind between spec build and simulate; re-derive
        # the bounds now that the network is in its final shape.
        self._deadlock_bound = self._auto_deadlock_bound()
        self._overdue_slack = self._auto_overdue_slack()
        self._hook_network()
        simulator.register_observer(self)
        return self

    def _hook_network(self) -> None:
        network = self.network
        inner_deliver = network.deliver
        inner_loss = network.stats.record_loss

        def checked_deliver(packet, router_id, eject_port, now):
            self._on_deliver(packet, router_id, eject_port, now)
            inner_deliver(packet, router_id, eject_port, now)

        def counted_loss(packet, now):
            self._pending_exits.add(packet.uid)
            inner_loss(packet, now)

        network.deliver = checked_deliver
        network.stats.record_loss = counted_loss

    def _on_deliver(self, packet, router_id: int, eject_port: int,
                    now: int) -> None:
        uid = packet.uid
        if self._enabled("duplicate_delivery") and uid in self._delivered_ever:
            self._emit(InvariantViolation(
                "packet delivered twice",
                invariant="duplicate_delivery", packet=uid, cycle=now,
                router=router_id))
        self._delivered_ever.add(uid)
        self._pending_exits.add(uid)
        if self._enabled("misdelivery"):
            expected_port = self.network.eject_port_for(packet.dst_node)
            if (router_id != packet.dst_router
                    or eject_port != expected_port):
                self._emit(InvariantViolation(
                    "packet ejected at a foreign NIC",
                    invariant="misdelivery", packet=uid, cycle=now,
                    router=router_id, port=eject_port,
                    dst_router=packet.dst_router, dst_port=expected_port))
        if self.config.journal:
            self.delivered_signatures.append(
                (packet.src_node, packet.dst_node, packet.length,
                 packet.vnet, packet.create_cycle))

    # ------------------------------------------------------------------
    # Observer hook
    # ------------------------------------------------------------------
    def phase_collect(self, cycle: int) -> None:
        if self._saturated or cycle % self.config.check_interval:
            return
        for violation in self._sweep(cycle):
            self._emit(violation)

    def check_now(self, cycle: Optional[int] = None
                  ) -> List[InvariantViolation]:
        """One full sweep against the current state; never raises.

        Returns the violations found by *this* call (they are also
        recorded).  The cycle defaults to the network's current time.
        """
        if cycle is None:
            cycle = self.network.now
        found = self._sweep(cycle)
        for violation in found:
            self._record(violation)
        return found

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _sweep(self, cycle: int) -> List[InvariantViolation]:
        config = self.config
        enabled = (set(INVARIANTS) if config.checks is None
                   else set(config.checks))
        found: List[InvariantViolation] = []
        for name, checker in STATELESS_CHECKS.items():
            if name in enabled:
                found.extend(checker(self.network, cycle))
        if "freeze_legality" in enabled:
            found.extend(check_freeze_legality(
                self.network, cycle, self._overdue_slack))
        consecutive = (self._census_cycle is not None
                       and cycle - self._census_cycle == 1)
        census = {
            uid: (location, packet.hops, packet)
            for uid, packet, location in iter_resident(self.network)
        }
        if self._census_cycle is not None:
            if "packet_conservation" in enabled:
                found.extend(self._check_conservation(census, cycle))
            if "teleport" in enabled and consecutive:
                found.extend(self._check_teleport(census, cycle))
        self._census = census
        self._census_cycle = cycle
        if "fsm_transition" in enabled:
            found.extend(self._check_fsm_transitions(cycle, consecutive))
        if "link_accounting" in enabled:
            found.extend(self._check_link_monotonicity(cycle))
        if ("deadlock_persistence" in enabled
                and self._deadlock_bound is not None
                and self.network.fault_injector is None
                and self._due_for_deadlock_check(cycle)):
            found.extend(self._check_deadlock_persistence(census, cycle))
        return found

    # --- packet conservation & teleport ---
    def _check_conservation(self, census, cycle: int):
        pending = self._pending_exits
        for uid, (location, _, _) in self._census.items():
            if uid in census:
                continue
            if uid in pending:
                pending.discard(uid)
            else:
                yield InvariantViolation(
                    "packet vanished without delivery or counted loss",
                    invariant="packet_conservation", packet=uid,
                    cycle=cycle, last_seen=location)

    def _check_teleport(self, census, cycle: int):
        previous = self._census
        neighbors = self._neighbors
        for uid, (location, _, _) in census.items():
            before = previous.get(uid)
            if before is None or before[0] == location:
                continue
            prev_loc = before[0]
            if location[0] == "vc":
                router = location[1]
                if prev_loc[0] == "vc":
                    legal = (prev_loc[1] == router
                             or router in neighbors.get(prev_loc[1], ()))
                else:  # nic -> vc: must enter the NIC's own router
                    legal = self._nic_router.get(prev_loc[1]) == router
            else:
                legal = False  # packets never re-enter a NIC queue
            if not legal:
                yield InvariantViolation(
                    "packet moved more than one hop in one cycle",
                    invariant="teleport", packet=uid, cycle=cycle,
                    before=prev_loc, after=location)

    # --- FSM transitions ---
    def _check_fsm_transitions(self, cycle: int, consecutive: bool):
        spin = self.network.spin
        if spin is None:
            return
        states = [controller.state for controller in spin.controllers]
        previous = self._fsm_states
        self._fsm_states = states
        if previous is None or not consecutive:
            return
        for router_id, (before, after) in enumerate(zip(previous, states)):
            if after is before:
                continue
            if after in ILLEGAL_TRANSITIONS.get(before, ()):
                yield InvariantViolation(
                    "illegal SPIN FSM transition",
                    invariant="fsm_transition", router=router_id,
                    cycle=cycle, before=before.name, after=after.name)

    # --- link counters ---
    def _check_link_monotonicity(self, cycle: int):
        marks = self._link_marks
        for key, link in self.network.links.items():
            mark = marks.get(key)
            current = (link.measure_from, link.flit_cycles, link.sm_cycles)
            marks[key] = current
            if mark is None or mark[0] != current[0]:
                continue  # first sight or a utilization reset: new epoch
            if current[1] < mark[1] or current[2] < mark[2]:
                yield InvariantViolation(
                    "link utilization counter ran backwards",
                    invariant="link_accounting", link=key, cycle=cycle,
                    before=mark[1:], after=current[1:])

    # --- deadlock persistence ---
    def _due_for_deadlock_check(self, cycle: int) -> bool:
        last = self._last_deadlock_check
        if (last is not None
                and cycle - last < self.config.deadlock_check_interval):
            return False
        self._last_deadlock_check = cycle
        return True

    def _check_deadlock_persistence(self, census, cycle: int):
        bound = self._deadlock_bound
        deadlocked = find_deadlocked_packets(self.network, cycle)
        seen = self._deadlock_seen
        confirmed: Dict[int, Tuple[int, int]] = {}
        for uid in deadlocked:
            entry = census.get(uid)
            hops = entry[1] if entry is not None else -1
            before = seen.get(uid)
            if before is not None and before[1] == hops:
                first = before[0]
                if cycle - first > bound:
                    yield InvariantViolation(
                        "true deadlock outlived the recovery bound",
                        invariant="deadlock_persistence", packet=uid,
                        cycle=cycle, since=first, bound=bound,
                        deadlocked=len(deadlocked))
                confirmed[uid] = (first, hops)
            else:
                confirmed[uid] = (cycle, hops)  # new, or made hop progress
        self._deadlock_seen = confirmed

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def _enabled(self, name: str) -> bool:
        checks = self.config.checks
        return checks is None or name in checks

    def _site_key(self, violation: InvariantViolation) -> tuple:
        context = violation.context
        return (violation.invariant,) + tuple(
            (key, context[key]) for key in
            ("router", "inport", "vc", "packet", "link", "source", "state")
            if key in context)

    def _record(self, violation: InvariantViolation) -> None:
        self.violation_count += 1
        stats = self.network.stats
        stats.count("invariant_violations")
        stats.count(f"violation_{violation.invariant}")
        site = self._site_key(violation)
        if site not in self._seen_sites:
            self._seen_sites.add(site)
            self.violations.append(violation)
        if len(self.violations) >= self.config.max_violations:
            self._saturated = True
            stats.count("oracle_saturated")

    def _emit(self, violation: InvariantViolation) -> None:
        self._record(violation)
        if self.config.mode == "raise":
            raise violation


def oracle_from_env(network,
                    journal: bool = False) -> Optional[InvariantOracle]:
    """Build an oracle if the ``REPRO_VERIFY`` environment variable asks
    for one; returns None otherwise.

    Recognized values (case-insensitive): ``strict``/``raise`` — raise on
    the first violation; ``record``/``1`` — record and count violations
    into the run's stats.  Anything else (including unset) disables the
    oracle.
    """
    mode = _ENV_MODES.get(os.environ.get("REPRO_VERIFY", "").strip().lower())
    if mode is None:
        return None
    return InvariantOracle(network, OracleConfig(mode=mode, journal=journal))
