"""2-D torus topology: a mesh with wrap-around channels.

Shares the compass port convention of :mod:`repro.topology.mesh`.  Included
as a substrate for the flow-control (bubble) family of deadlock-freedom
schemes the paper compares against conceptually (Table I), and for tests of
the channel-dependency-graph analysis (a torus ring has an inherently cyclic
CDG even under dimension-order routing).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology
from repro.topology.mesh import DELTA, DIRECTIONS, OPPOSITE


class TorusTopology(Topology):
    """A ``cols x rows`` 2-D torus with one terminal per router."""

    name = "torus"

    def __init__(self, cols: int, rows: int, link_latency: int = 1) -> None:
        super().__init__()
        if cols < 3 or rows < 3:
            # A width-2 torus would create duplicate channels between the
            # same router pair on the same ports.
            raise TopologyError("torus needs at least 3x3 routers")
        self.cols = cols
        self.rows = rows
        self.link_latency = link_latency
        self._links = self._build_links()

    def coordinates(self, router: int) -> Tuple[int, int]:
        """(x, y) position of a router."""
        return router % self.cols, router // self.cols

    def router_at(self, x: int, y: int) -> int:
        """Router id at (x, y), coordinates taken modulo the torus size."""
        return (y % self.rows) * self.cols + (x % self.cols)

    def neighbor_in(self, router: int, direction: int) -> int:
        """Router one hop away in a compass direction (always exists)."""
        x, y = self.coordinates(router)
        dx, dy = DELTA[direction]
        return self.router_at(x + dx, y + dy)

    def directions_toward(self, src_router: int, dst_router: int) -> List[int]:
        """Compass directions on a minimal path, honouring wrap-around."""
        from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

        sx, sy = self.coordinates(src_router)
        dx, dy = self.coordinates(dst_router)
        productive = []
        col_delta = (dx - sx) % self.cols
        if col_delta:
            if col_delta < self.cols - col_delta:
                productive.append(EAST)
            elif col_delta > self.cols - col_delta:
                productive.append(WEST)
            else:
                productive.extend([EAST, WEST])
        row_delta = (dy - sy) % self.rows
        if row_delta:
            if row_delta < self.rows - row_delta:
                productive.append(SOUTH)
            elif row_delta > self.rows - row_delta:
                productive.append(NORTH)
            else:
                productive.extend([SOUTH, NORTH])
        return productive

    @property
    def num_routers(self) -> int:
        return self.cols * self.rows

    @property
    def num_nodes(self) -> int:
        return self.num_routers

    def router_of_node(self, node: int) -> int:
        return node

    def links(self) -> List[LinkSpec]:
        return self._links

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coordinates(src_router)
        dx, dy = self.coordinates(dst_router)
        col_delta = abs(sx - dx)
        row_delta = abs(sy - dy)
        return min(col_delta, self.cols - col_delta) + min(
            row_delta, self.rows - row_delta
        )

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for router in range(self.num_routers):
            for direction in DIRECTIONS:
                neighbor = self.neighbor_in(router, direction)
                links.append(
                    LinkSpec(router, direction, neighbor,
                             OPPOSITE[direction], self.link_latency)
                )
        return links
