"""Physical links.

A link carries one flit per cycle in its single direction and has a fixed
pipeline latency.  Utilization counters distinguish regular flit traffic from
SPIN's special messages so Fig. 8(b) of the paper can be regenerated.
"""

from __future__ import annotations


class Link:
    """One direction of a channel between two router ports."""

    __slots__ = (
        "src", "src_port", "dst", "dst_port", "latency",
        "busy_until", "flit_cycles", "sm_cycles", "measure_from",
        "up", "down_since",
    )

    def __init__(self, src: int, src_port: int, dst: int, dst_port: int,
                 latency: int) -> None:
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.latency = latency
        #: Last cycle (inclusive) the link is occupied by a packet in flight.
        self.busy_until = -1
        #: Flit-cycles of regular traffic since ``measure_from``.
        self.flit_cycles = 0
        #: Cycles consumed by special messages since ``measure_from``.
        self.sm_cycles = 0
        #: Cycle utilization accounting started.
        self.measure_from = 0
        #: Fail-stop state: a dead link accepts no new packets or SMs.
        #: Flits already streaming complete (the fault acts at link entry).
        self.up = True
        #: Cycle the link last went down (-1 when it never has).
        self.down_since = -1

    def is_free(self, now: int) -> bool:
        """Whether a new packet may start traversing this cycle."""
        return self.up and now > self.busy_until

    def set_state(self, up: bool, now: int) -> bool:
        """Change fail-stop state; returns True if the state changed."""
        if self.up == up:
            return False
        self.up = up
        if not up:
            self.down_since = now
        return True

    def occupy(self, now: int, flits: int) -> None:
        """Start a ``flits``-long packet transmission at ``now``."""
        self.busy_until = now + flits - 1
        self.flit_cycles += flits

    def record_sm(self) -> None:
        """Account one special-message traversal (SMs bypass flit occupancy)."""
        self.sm_cycles += 1

    def reset_utilization(self, now: int) -> None:
        """Restart utilization accounting at ``now``."""
        self.flit_cycles = 0
        self.sm_cycles = 0
        self.measure_from = now

    def utilization(self, now: int) -> tuple:
        """(flit share, SM share, idle share) of cycles since measurement start."""
        elapsed = max(1, now - self.measure_from)
        flit_share = min(1.0, self.flit_cycles / elapsed)
        sm_share = min(1.0, self.sm_cycles / elapsed)
        return flit_share, sm_share, max(0.0, 1.0 - flit_share - sm_share)

    def __repr__(self) -> str:
        return (f"Link(r{self.src}.p{self.src_port} -> "
                f"r{self.dst}.p{self.dst_port}, lat={self.latency})")
