"""Analytical router area/power/EDP models.

Substitute for the paper's Nangate 15nm RTL synthesis (DESIGN.md
substitution note 3): parameterized analytical models whose constants are
calibrated so that every published ratio (1-VC vs 3-VC savings, Fig. 10
overheads) is reproduced, with the calibration asserted by tests.
"""

from repro.power.model import (
    AreaModel,
    EnergyModel,
    RouterSpec,
    network_energy,
    network_edp,
)
from repro.power.modules import SPIN_MODULES, loop_buffer_bits

__all__ = [
    "AreaModel",
    "EnergyModel",
    "RouterSpec",
    "network_energy",
    "network_edp",
    "SPIN_MODULES",
    "loop_buffer_bits",
]
