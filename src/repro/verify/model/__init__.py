"""Explicit-state model checking of the SPIN control plane.

See :mod:`repro.verify.model.state` for the abstraction,
:mod:`repro.verify.model.transitions` for the successor relation,
:mod:`repro.verify.model.properties` for the checked properties,
:mod:`repro.verify.model.checker` for the BFS engine,
:mod:`repro.verify.model.designs` for the checkable designs and
:mod:`repro.verify.model.scenario` for the counterexample-to-golden-
scenario pipeline.  Entry point: ``cli model-check``.
"""

from repro.verify.model.checker import (
    CheckResult,
    Counterexample,
    ModelChecker,
)
from repro.verify.model.properties import (
    PROPERTY_TO_INVARIANT,
    ActionWeights,
    LivenessReport,
    PropertyViolation,
)
from repro.verify.model.state import (
    NOBODY,
    GlobalState,
    Message,
    RouterModel,
    canonical,
    initial_state,
    project,
)
from repro.verify.model.transitions import (
    MUTATIONS,
    ModelConfig,
    successors,
)

__all__ = [
    "ActionWeights",
    "CheckResult",
    "Counterexample",
    "GlobalState",
    "LivenessReport",
    "MUTATIONS",
    "Message",
    "ModelChecker",
    "ModelConfig",
    "NOBODY",
    "PROPERTY_TO_INVARIANT",
    "PropertyViolation",
    "RouterModel",
    "canonical",
    "initial_state",
    "project",
    "successors",
]
