"""Unit tests for the network-inspection helpers."""

import pytest

from repro.config import SpinParams
from repro.network.inspect import (
    blocked_packet_report,
    ejection_pressure,
    occupancy_map,
    spin_report,
)
from repro.sim.engine import Simulator

from tests.conftest import craft_square_deadlock, make_mesh_network, make_ring_network


class TestOccupancyMap:
    def test_empty_mesh(self):
        network = make_mesh_network(side=4)
        text = occupancy_map(network)
        assert len(text.splitlines()) == 4
        assert "0/" in text
        assert "*" not in text

    def test_occupied_and_frozen_marks(self):
        network = make_mesh_network(side=4)
        craft_square_deadlock(network)
        text = occupancy_map(network)
        assert "1/" in text
        # Freeze one VC and check the marker appears.
        _, _, vc = next(iter(network.occupied_vcs()))
        vc.freeze(outport=1, source=0, spin_cycle=99, path_index=0)
        assert "*" in occupancy_map(network)

    def test_requires_mesh(self):
        network = make_ring_network()
        with pytest.raises(TypeError):
            occupancy_map(network)


class TestBlockedReport:
    def test_empty(self):
        network = make_mesh_network(side=4)
        assert "no blocked packets" in blocked_packet_report(network, 0)

    def test_deadlocked_marked(self):
        network = make_mesh_network(side=4)
        craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        report = blocked_packet_report(network, sim.cycle)
        assert "DEADLOCKED" in report
        assert "waits on" in report


class TestSpinReport:
    def test_without_spin(self):
        network = make_mesh_network(side=4)
        assert "not attached" in spin_report(network)

    def test_with_activity(self):
        network = make_mesh_network(side=4, spin=SpinParams(tdd=8))
        craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run_until(lambda: network.spin.frozen_vc_count() > 0,
                      max_cycles=200)
        report = spin_report(network)
        assert "frozen VCs" in report
        assert "controller states" in report


class TestEjectionPressure:
    def test_zero_when_empty(self):
        network = make_mesh_network(side=4)
        assert ejection_pressure(network, 0) == 0.0

    def test_detects_network_blocked_packets(self):
        network = make_mesh_network(side=4)
        craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        # The crafted packets wait on network ports, not ejection.
        assert ejection_pressure(network, sim.cycle) == 0.0
