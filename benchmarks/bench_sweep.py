#!/usr/bin/env python
"""Sweep-engine benchmark: serial vs parallel wall-clock on one mesh sweep.

Runs the same list of :class:`ExperimentSpec` points twice — once serially,
once across ``--jobs`` worker processes — verifies the two runs produce
*identical* points, and writes a ``BENCH_sweep.json`` record::

    {
      "schema": "repro.bench-sweep/v1",
      "design": ..., "pattern": ..., "rates": [...], "jobs": N,
      "points": n, "cycles": total-simulated-cycles,
      "serial":   {"wall_time_s": ..., "cycles_per_sec": ..., "points_per_sec": ...},
      "parallel": {"wall_time_s": ..., "cycles_per_sec": ..., "points_per_sec": ...},
      "speedup": serial / parallel,
      "identical_points": true,
      "telemetry": {
        "disabled": {...},              # same leg shape; no observer attached
        "enabled": {...},               # TelemetryObserver recording each point
        "enabled_overhead_pct": ...,    # cycles/sec cost of recording
        "points_match_ignoring_telemetry_events": true
      }
    }

The ``telemetry.disabled`` leg re-times the serial path with the telemetry
plumbing in place but the flag off (no observer is registered, so the hot
loop is byte-for-byte the pre-telemetry schedule); comparing it against
``serial`` bounds the disabled-mode overhead, which must stay ≤ 1%.

This file is the start of the repo's measurable perf trajectory: every PR
that touches the hot path can re-run it and diff the JSON.  Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 4 \
        --output BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SimulationConfig
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import ExperimentSpec

BENCH_SCHEMA = "repro.bench-sweep/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default="spin_mesh")
    parser.add_argument("--pattern", default="uniform")
    parser.add_argument("--rates",
                        default="0.02,0.04,0.06,0.08,0.10,0.12,0.14,0.16",
                        help="comma-separated offered loads")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel leg")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mesh-side", type=int, default=8)
    parser.add_argument("--tdd", type=int, default=32)
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--measure", type=int, default=1000)
    parser.add_argument("--drain", type=int, default=800)
    parser.add_argument("--abort-cycles", type=int, default=1000)
    parser.add_argument("--output", default="BENCH_sweep.json",
                        metavar="FILE.json")
    return parser


def _leg(runner: ParallelRunner, specs):
    """Time one execution leg; returns (points, wall_seconds)."""
    started = time.perf_counter()
    results = runner.run(specs)
    wall = time.perf_counter() - started
    failures = [r for r in results if not r.ok]
    if failures:
        raise SystemExit(
            f"benchmark leg failed on {len(failures)} point(s); first: "
            f"{failures[0].error}")
    return [r.point for r in results], wall


def _stats(points, wall: float) -> dict:
    cycles = sum(point.cycles for point in points)
    return {
        "wall_time_s": round(wall, 3),
        "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else None,
        "points_per_sec": round(len(points) / wall, 3) if wall > 0 else None,
    }


def _strip_telemetry_events(point):
    """A copy of a point without its ``telemetry_*`` event counters."""
    from dataclasses import replace

    events = {name: value for name, value in point.events.items()
              if not name.startswith("telemetry_")}
    return replace(point, events=events)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rates = [float(x) for x in args.rates.split(",")]
    sim = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=args.drain, deadlock_abort_cycles=args.abort_cycles)
    base = ExperimentSpec(design=args.design, pattern=args.pattern,
                          injection_rate=rates[0], seed=args.seed,
                          mesh_side=args.mesh_side, tdd=args.tdd, sim=sim)
    specs = base.curve(rates)

    serial_points, serial_wall = _leg(
        ParallelRunner(max_workers=1, backend="serial"), specs)
    parallel_points, parallel_wall = _leg(
        ParallelRunner(max_workers=args.jobs, backend="process"), specs)
    identical = serial_points == parallel_points

    # Telemetry legs: disabled (plumbing present, no observer — bounds the
    # disabled-mode overhead against the serial leg) and enabled
    # (recording observer on every point — the cost of observability).
    serial_runner = ParallelRunner(max_workers=1, backend="serial")
    disabled_points, disabled_wall = _leg(serial_runner, specs)
    from dataclasses import replace

    telemetry_specs = [replace(spec, telemetry=True) for spec in specs]
    enabled_points, enabled_wall = _leg(serial_runner, telemetry_specs)
    disabled_stats = _stats(disabled_points, disabled_wall)
    enabled_stats = _stats(enabled_points, enabled_wall)
    base_cps = _stats(serial_points, serial_wall)["cycles_per_sec"]
    disabled_cps = disabled_stats["cycles_per_sec"]
    enabled_cps = enabled_stats["cycles_per_sec"]
    telemetry_record = {
        "disabled": disabled_stats,
        "enabled": enabled_stats,
        "disabled_overhead_pct": (
            round((base_cps - disabled_cps) / base_cps * 100.0, 2)
            if base_cps else None),
        "enabled_overhead_pct": (
            round((disabled_cps - enabled_cps) / disabled_cps * 100.0, 2)
            if disabled_cps else None),
        "points_match_ignoring_telemetry_events": (
            [_strip_telemetry_events(p) for p in enabled_points]
            == serial_points),
    }

    record = {
        "schema": BENCH_SCHEMA,
        "design": base.design,
        "pattern": args.pattern,
        "rates": rates,
        "seed": args.seed,
        "mesh_side": args.mesh_side,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "points": len(serial_points),
        "cycles": sum(point.cycles for point in serial_points),
        "serial": _stats(serial_points, serial_wall),
        "parallel": _stats(parallel_points, parallel_wall),
        "speedup": (round(serial_wall / parallel_wall, 3)
                    if parallel_wall > 0 else None),
        "identical_points": identical,
        "telemetry": telemetry_record,
    }
    Path(args.output).write_text(json.dumps(record, indent=2,
                                            sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    if not identical:
        print("ERROR: serial and parallel points diverged", file=sys.stderr)
        return 1
    if not telemetry_record["points_match_ignoring_telemetry_events"]:
        print("ERROR: telemetry-enabled points diverged beyond the "
              "telemetry_* event counters", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
