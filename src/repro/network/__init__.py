"""Network datapath substrate: packets, VCs, links, routers, NICs.

This package is the Python equivalent of the Garnet2.0 model the paper
evaluates on: a cycle-accurate virtual-cut-through network with credit-style
buffer visibility, parameterized by :class:`repro.config.NetworkConfig` and
driven by the phase hooks of :class:`repro.sim.engine.Simulator`.
"""

from repro.network.packet import Packet
from repro.network.vc import VirtualChannel
from repro.network.link import Link
from repro.network.router import Router, EJECT_PORT_BASE, INJECT_PORT_BASE
from repro.network.nic import NetworkInterface
from repro.network.network import Network

__all__ = [
    "Packet",
    "VirtualChannel",
    "Link",
    "Router",
    "NetworkInterface",
    "Network",
    "EJECT_PORT_BASE",
    "INJECT_PORT_BASE",
]
