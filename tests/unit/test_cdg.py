"""Unit tests for channel-dependency-graph analysis.

These certify the premises of the paper's Table I: Dally-theory algorithms
(XY, west-first) have acyclic CDGs; fully adaptive routing on a mesh does
not (hence deadlocks, hence SPIN); dimension-order on a torus is cyclic
despite being deterministic (wraparound channels).
"""

from repro.config import NetworkConfig
from repro.deadlock.cdg import channel_dependency_graph, cdg_cycles, is_acyclic
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.turn_model import NorthLastRouting, WestFirstRouting
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

from tests.conftest import make_mesh_network


class TestAcyclicAlgorithms:
    def test_xy_mesh_cdg_acyclic(self):
        network = make_mesh_network(side=4, routing=DimensionOrderRouting(0))
        assert is_acyclic(channel_dependency_graph(network))

    def test_west_first_mesh_cdg_acyclic(self):
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        assert is_acyclic(channel_dependency_graph(network))

    def test_north_last_mesh_cdg_acyclic(self):
        network = make_mesh_network(side=4, routing=NorthLastRouting(0))
        assert is_acyclic(channel_dependency_graph(network))

    def test_acyclic_on_larger_mesh(self):
        network = make_mesh_network(side=6, routing=WestFirstRouting(0))
        assert is_acyclic(channel_dependency_graph(network))


class TestCyclicAlgorithms:
    def test_fully_adaptive_mesh_cdg_cyclic(self):
        network = make_mesh_network(side=4)
        graph = channel_dependency_graph(network)
        assert not is_acyclic(graph)
        assert cdg_cycles(graph, limit=1)

    def test_xy_torus_cdg_cyclic(self):
        # Deterministic but cyclic: the wraparound ring closes dependencies.
        network = Network(TorusTopology(4, 4), NetworkConfig(),
                          DimensionOrderRouting(0))
        assert not is_acyclic(channel_dependency_graph(network))


class TestExactness:
    def test_west_first_naive_pairing_would_be_cyclic(self):
        # Sanity check on why reachability matters: pairing every input
        # channel with every candidate output channel (ignoring whether a
        # packet can actually arrive there with that destination) creates
        # cycles for west-first.  The exact construction must not.
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        import networkx as nx

        from repro.deadlock.cdg import _fake_packet

        naive = nx.DiGraph()
        routing = network.routing
        for dst in range(16):
            packet = _fake_packet(network, dst)
            for router in network.routers:
                if router.id == dst:
                    continue
                ports = routing.candidate_outports(router, packet)
                for in_port, (neighbor, _) in router.out_neighbors.items():
                    # channel INTO router = (neighbor, their port to us)
                    for out_port in ports:
                        naive.add_edge((neighbor.id, "x"), (router.id, out_port))
        # The naive graph collapses information and is (vacuously) cyclic
        # or at least much denser than the exact one.
        exact = channel_dependency_graph(network)
        assert exact.number_of_edges() < naive.number_of_edges() * 10

    def test_cdg_nodes_are_real_channels(self):
        network = make_mesh_network(side=4, routing=DimensionOrderRouting(0))
        graph = channel_dependency_graph(network)
        for router_id, port in graph.nodes:
            assert port in network.routers[router_id].out_links
