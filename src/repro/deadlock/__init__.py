"""Deadlock analysis and baseline recovery schemes.

* :mod:`repro.deadlock.waitgraph` — ground-truth deadlock detection over the
  live simulator state (an AND-OR wait-graph fixpoint).  Used to validate
  SPIN, to classify false positives (Fig. 9), and to find the minimum
  deadlocking injection rates (Fig. 3).
* :mod:`repro.deadlock.cdg` — channel dependency graph construction and
  acyclicity checks (Dally's sufficient condition).
* :mod:`repro.deadlock.static_bubble` — the Static Bubble-style recovery
  baseline (one reserved VC drained by dimension-order routing).
"""

from repro.deadlock.waitgraph import (
    blocked_packets,
    find_deadlocked_packets,
    has_deadlock,
)
from repro.deadlock.bubble import BubbleFlowControlRouting
from repro.deadlock.cdg import channel_dependency_graph, is_acyclic
from repro.deadlock.static_bubble import (
    StaticBubbleControlPlane,
    StaticBubbleRouting,
)

__all__ = [
    "blocked_packets",
    "find_deadlocked_packets",
    "has_deadlock",
    "channel_dependency_graph",
    "is_acyclic",
    "StaticBubbleControlPlane",
    "StaticBubbleRouting",
    "BubbleFlowControlRouting",
]
