"""FAvORS — Fully Adaptive One-VC Routing with Spin (paper Sec. V).

The paper's headline routing capability: a truly one-VC, fully adaptive,
deadlock-free (via SPIN) algorithm with two variants:

* :class:`FavorsMinimal` — adaptive among all minimal paths; output selected
  randomly among ports with an idle next-hop VC, otherwise the port whose
  next-hop VC has been active least long (a congestion proxy read from
  credits).
* :class:`FavorsNonMinimal` — additionally decides *once at the source*
  whether to detour through a random intermediate node, using the paper's
  rule:  route non-minimally iff
  ``H_min + t_active_min > H_nonmin + t_active_nonmin``.
  Because a packet is misrouted at most once, the algorithm is livelock-free
  and the SPIN theorem's misroute bound holds with p = 1.
"""

from __future__ import annotations

from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting


class FavorsMinimal(MinimalAdaptiveRouting):
    """FAvORS, minimal variant (the paper's mesh FAvORS-Min).

    Args:
        seed: RNG seed for adaptive tie-breaks.
        wait_policy: Which port a blocked packet waits on when no candidate
            has an idle VC — "least_active" (the paper's credit-based
            congestion proxy) or "random" (ablation baseline isolating the
            proxy's value; see DESIGN.md §6).
    """

    name = "FAvORS-Min"
    theory = "SPIN"

    def __init__(self, seed: int = 0, wait_policy: str = "least_active") -> None:
        super().__init__(seed)
        if wait_policy not in ("least_active", "random"):
            raise ValueError(f"unknown wait policy {wait_policy!r}")
        self.wait_policy = wait_policy

    def wait_choice(self, router, packet, candidates, now):
        if self.wait_policy == "random":
            return self.rng.choice(list(candidates))
        return super().wait_choice(router, packet, candidates, now)


class FavorsNonMinimal(MinimalAdaptiveRouting):
    """FAvORS, non-minimal variant (the paper's dragonfly FAvORS-NMin)."""

    name = "FAvORS-NMin"
    minimal = False
    max_misroutes = 1
    theory = "SPIN"

    def on_inject(self, packet: Packet, now: int) -> None:
        if packet.dst_router == packet.src_router:
            return
        source = self.network.routers[packet.src_router]
        min_ports = self.productive_ports(source, packet.dst_router)
        vnet = packet.vnet
        choices = range(self.network.config.vcs_per_vnet)
        if any(source.downstream_has_idle(port, vnet, choices, now)
               for port in min_ports):
            return  # a free minimal first hop: the network is lightly loaded
        intermediate = self._random_intermediate(packet)
        if intermediate is None:
            return
        topology = self.topology
        h_min = topology.min_hops(packet.src_router, packet.dst_router)
        h_non = (topology.min_hops(packet.src_router, intermediate)
                 + topology.min_hops(intermediate, packet.dst_router))
        t_min = min(
            source.downstream_min_active_time(port, vnet, choices, now)
            for port in min_ports
        )
        non_ports = self.productive_ports(source, intermediate)
        t_non = min(
            source.downstream_min_active_time(port, vnet, choices, now)
            for port in non_ports
        )
        if h_min + t_min > h_non + t_non:
            packet.intermediate_router = intermediate
            packet.phase = 0

    def _random_intermediate(self, packet: Packet):
        """A random router distinct from source and destination."""
        count = self.topology.num_routers
        if count <= 2:
            return None
        while True:
            router = self.rng.randint(0, count - 1)
            if router not in (packet.src_router, packet.dst_router):
                return router
