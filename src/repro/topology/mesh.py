"""2-D mesh topology.

Routers are laid out row-major: router id ``r = y * cols + x``.  Ports use
the fixed compass indices below so routing algorithms can reason in
directions; edge routers simply lack the ports that would leave the mesh.
One terminal node attaches to each router (node id == router id), matching
the paper's 8x8 64-core mesh.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology

#: Compass port indices shared by mesh and torus.
NORTH, EAST, SOUTH, WEST = 0, 1, 2, 3

#: All compass directions in port-index order.
DIRECTIONS = (NORTH, EAST, SOUTH, WEST)

#: Printable names for compass ports.
DIRECTION_NAMES = {NORTH: "N", EAST: "E", SOUTH: "S", WEST: "W"}

#: The port a flit arrives on after leaving through a given compass port.
OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}

#: (dx, dy) displacement of each compass direction.  North decreases y.
DELTA = {NORTH: (0, -1), EAST: (1, 0), SOUTH: (0, 1), WEST: (-1, 0)}


class MeshTopology(Topology):
    """A ``cols x rows`` 2-D mesh with one terminal per router."""

    name = "mesh"

    def __init__(self, cols: int, rows: int, link_latency: int = 1) -> None:
        super().__init__()
        if cols < 2 or rows < 2:
            raise TopologyError("mesh needs at least 2x2 routers")
        self.cols = cols
        self.rows = rows
        self.link_latency = link_latency
        self._links = self._build_links()

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coordinates(self, router: int) -> Tuple[int, int]:
        """(x, y) position of a router."""
        return router % self.cols, router // self.cols

    def router_at(self, x: int, y: int) -> int:
        """Router id at position (x, y)."""
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise TopologyError(f"({x}, {y}) outside {self.cols}x{self.rows} mesh")
        return y * self.cols + x

    def neighbor_in(self, router: int, direction: int) -> Optional[int]:
        """Router one hop away in a compass direction, or None at an edge."""
        x, y = self.coordinates(router)
        dx, dy = DELTA[direction]
        nx_, ny = x + dx, y + dy
        if 0 <= nx_ < self.cols and 0 <= ny < self.rows:
            return self.router_at(nx_, ny)
        return None

    def directions_toward(self, src_router: int, dst_router: int) -> List[int]:
        """Compass directions that reduce distance to the destination."""
        sx, sy = self.coordinates(src_router)
        dx, dy = self.coordinates(dst_router)
        productive = []
        if dy < sy:
            productive.append(NORTH)
        if dx > sx:
            productive.append(EAST)
        if dy > sy:
            productive.append(SOUTH)
        if dx < sx:
            productive.append(WEST)
        return productive

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.cols * self.rows

    @property
    def num_nodes(self) -> int:
        return self.num_routers

    def router_of_node(self, node: int) -> int:
        return node

    def links(self) -> List[LinkSpec]:
        return self._links

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coordinates(src_router)
        dx, dy = self.coordinates(dst_router)
        return abs(sx - dx) + abs(sy - dy)

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for router in range(self.num_routers):
            for direction in DIRECTIONS:
                neighbor = self.neighbor_in(router, direction)
                if neighbor is not None:
                    links.append(
                        LinkSpec(router, direction, neighbor,
                                 OPPOSITE[direction], self.link_latency)
                    )
        return links
