"""The fast engine: idle skipping + a struct-of-arrays core for active work.

Design contract
---------------

:class:`FastSimulator` is **not** a second implementation of the datapath.
All authoritative state stays in the reference objects (``Router``,
``VirtualChannel``, ``Link``, ``NetworkInterface``, the SPIN controllers).
The engine layers two mechanisms on top of them:

* **Event-driven idle skipping** — per-router dirty bits + wake times (set
  by every VC reserve/release event), per-controller FSM due times, and
  per-NIC injection wake times let quiescent regions cost zero cycles, with
  a whole-run fast-forward once traffic stops and the network drains.
* **A struct-of-arrays core for the regions that *are* active** —
  :class:`repro.sim.fastcore.soa.SoaCore` compiles the network at build
  time into integer-indexed tables (global VC id space with occupancy /
  ready / credit mirrors, per-router active rows, precombined candidate
  entries with downstream-VC id slices, arbitration keys, lazy hop rows)
  and advances the ``allocate`` and ``inject`` phases over those tables
  with the reference datapath inlined, writing the authoritative objects
  directly so the oracle, golden traces and SPIN controllers see identical
  state at every phase boundary.  See the :mod:`soa` module docstring for
  the mirror-synchronization invariants.

The per-cycle work that does run is semantically a line-for-line replica of
``Router.allocate`` / ``NetworkInterface.try_inject`` (same request scan
order, same RNG draws, same arbitration pointers, same field writes), so
granted cycles are bit-identical to the reference engine; the analysis for
*skipped* cycles proves them to be reference no-ops.

SPIN controller ticks are skipped before their FSM-derived deadlines unless
an SM arrived or a VC event touched their router (``_ctrl_due`` covers all
seven FSM states); spin-execution cycles conservatively tick (and wake)
everything, because the executor may freeze/unfreeze VCs without datapath
events.

The skip/inline analysis is only valid for configurations it was proven
against: stock minimal-adaptive or dimension-order routing (base-class
decision, selection, VC-choice, downstream-VC *and* ``on_hop``/
``on_inject`` hook implementations), the known control planes, and no
runtime fault injector.  Anything else — Static Bubble / escape-VC routing,
custom planes, faults — compiles to the *pure reference schedule*: the
engine still satisfies the API but performs exactly the reference work, so
conformance is trivial.  A runtime link failure while the fast path is
active likewise drops allocation back to the reference rotation (the SoA
mirrors stay synchronized through the event funnel) for as long as dead
links exist.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.core.fsm import SpinState
from repro.network.vc import VirtualChannel
from repro.sim.engine import Simulator, _PHASES
from repro.sim.fastcore.soa import SoaCore

#: Sentinel wake/due time meaning "never (until an event)".
_NEVER = 1 << 60


def _ctrl_due(controller, cycle: int) -> int:
    """Next cycle at which a controller's ``tick`` is not a no-op.

    Derived from :meth:`repro.core.controller.SpinController.tick`: every
    branch is a pure no-op strictly before the returned cycle, *given* that
    SM arrivals and VC events at the router re-dirty the controller (they
    are the only ways the tick's guards can change earlier).
    """
    state = controller.state
    if state is SpinState.OFF:
        # OFF ticks only re-point at occupied network VCs; occupancy changes
        # require a VC event (dirty).  With no occupied network VC the
        # re-point is a no-op.
        return _NEVER
    deadline = controller.deadline
    if state is SpinState.DD:
        due = deadline if deadline is not None else cycle + 1
        pending = controller.probe_pending
        if pending is not None and pending[3] < due:
            due = pending[3]
        return due
    if state is SpinState.PROBE_MOVE:
        send_at = controller.probe_move_send_at
        if send_at is not None:
            return send_at
        return deadline if deadline is not None else cycle + 1
    if state is SpinState.MOVE or state is SpinState.KILL_MOVE:
        return deadline if deadline is not None else cycle + 1
    # FROZEN / FORWARD_PROGRESS: the escape fires when now > deadline + 1.
    return deadline + 2 if deadline is not None else _NEVER


class FastSimulator(Simulator):
    """Drop-in engine: reference state, event-driven skips, SoA hot loops."""

    name = "fast"

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._fw = None
        self._traffic = None
        self._fast_ok = False
        self._ff_ok = False
        self._core: SoaCore = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Decide whether the fast paths apply and build the SoA core."""
        from repro.network.network import Network

        self._fast_ok = False
        self._ff_ok = False
        nets = [c for c in self._components if isinstance(c, Network)]
        if len(nets) != 1:
            self._detach_sink()
            return
        net = nets[0]
        self._net = net
        if net.fault_injector is not None or net.dead_link_count:
            self._detach_sink()
            return
        if not self._routing_whitelisted(net.routing):
            self._detach_sink()
            return
        if not self._planes_whitelisted(net):
            self._detach_sink()
            return

        self._fast_ok = True
        self._fw = net.spin
        self._core = SoaCore(net)
        net.engine_sink = self

        # Fast-forward additionally requires that no component or observer
        # could do per-cycle work on a drained network.
        from repro.traffic.generator import SyntheticTraffic

        others = [c for c in self._components if c is not net]
        self._traffic = None
        if not others:
            self._ff_ok = not self._observers
        elif len(others) == 1 and type(others[0]) is SyntheticTraffic:
            self._traffic = others[0]
            self._ff_ok = not self._observers
        else:
            self._ff_ok = False

    def _detach_sink(self) -> None:
        if self._net is not None and getattr(self._net, "engine_sink", None) is self:
            self._net.engine_sink = None

    @staticmethod
    def _routing_whitelisted(routing) -> bool:
        """Only stock MinAdaptive/XY: base-class decide/select/VC policies.

        Exact-type plus method-identity checks: subclasses (Static Bubble,
        escape-VC, west-first...) override selection, VC disciplines or the
        per-hop/inject hooks in ways the skip/inline analysis does not
        model, and a future override on the whitelisted classes themselves
        must fail closed.  ``on_hop``/``on_inject`` must be the base no-ops
        because the SoA grant/inject paths elide those calls entirely.
        """
        from repro.routing.adaptive import MinimalAdaptiveRouting
        from repro.routing.base import RoutingAlgorithm
        from repro.routing.dor import DimensionOrderRouting

        cls = type(routing)
        if cls not in (MinimalAdaptiveRouting, DimensionOrderRouting):
            return False
        base = RoutingAlgorithm
        shared = ("decide", "select", "wait_choice", "vc_choices",
                  "pick_downstream_vc", "injection_vc_choices",
                  "on_hop", "on_inject")
        for method in shared:
            if getattr(cls, method) is not getattr(base, method):
                return False
            if method in routing.__dict__:
                return False  # instance-level monkeypatch
        return "candidate_outports" not in routing.__dict__

    @staticmethod
    def _planes_whitelisted(net) -> bool:
        from repro.core.centralized import CentralizedSpinPlane
        from repro.core.framework import SpinFramework
        from repro.core.proactive import ProactiveSpinPlane

        known = (SpinFramework, ProactiveSpinPlane, CentralizedSpinPlane)
        return all(isinstance(plane, known) for plane in net.control_planes)

    def _build_schedule(self):
        self._compile()
        if not self._fast_ok:
            return super()._build_schedule()
        substitutes = {
            "phase_control": self._fast_phase_control,
            "phase_inject": self._fast_phase_inject,
            "phase_allocate": self._fast_phase_allocate,
        }
        schedule = []
        for phase in _PHASES:
            bound = []
            for component in self._components:
                if component is self._net and phase in substitutes:
                    bound.append(substitutes[phase])
                elif hasattr(component, phase):
                    bound.append(getattr(component, phase))
            bound.extend(
                getattr(observer, phase)
                for observer in self._observers
                if hasattr(observer, phase)
            )
            schedule.append(bound)
        return self._wrap_schedule(schedule)

    # ------------------------------------------------------------------
    # Event sink (called from Network.note_vc_* and NIC.enqueue)
    # ------------------------------------------------------------------
    def vc_reserved(self, router, vc=None) -> None:
        if vc is None:
            # Legacy vc-less event: scenario planting mutated VC fields
            # directly — rebuild every mirror from the objects.
            self._core.resync()
            return
        self._core.on_reserved(router, vc)

    def vc_released(self, router, vc=None) -> None:
        if vc is None:
            self._core.resync()
            return
        self._core.on_released(router, vc)

    def nic_backlogged(self, node: int) -> None:
        self._core.nic_backlogged(node)

    # ------------------------------------------------------------------
    # Phase: control
    # ------------------------------------------------------------------
    def _fast_phase_control(self, cycle: int) -> None:
        net = self._net
        net.now = cycle
        fw = self._fw
        for plane in net.control_planes:
            if plane is fw:
                self._spin_control(cycle)
            else:
                plane.phase_control(cycle)

    def _spin_control(self, cycle: int) -> None:
        """Replica of SpinFramework.phase_control with no-op ticks skipped."""
        fw = self._fw
        core = self._core
        executor = fw.executor
        # Peek before execute() pops: spin cycles freeze/unfreeze VCs and run
        # controller callbacks with no datapath events, so they tick (and
        # wake) everything.
        pending = executor._pending
        full_cycle = cycle in pending
        if pending:
            executor.execute(cycle)
        arrivals = fw._arrivals.pop(cycle, None) if fw._arrivals else None
        c_dirty = core.c_dirty
        r_dirty = core.r_dirty
        if arrivals:
            by_router: Dict[int, list] = defaultdict(list)
            for router_id, inport, sm in arrivals:
                by_router[router_id].append((inport, sm))
            for router_id in sorted(by_router):
                batch = by_router[router_id]
                batch.sort(key=lambda item: (
                    -item[1].class_priority,
                    -fw.priority.dynamic_priority(item[1].sender, cycle),
                    item[0],
                ))
                controller = fw.controllers[router_id]
                for inport, sm in batch:
                    controller.on_sm(sm, inport, cycle)
                c_dirty[router_id] = 1
                r_dirty[router_id] = 1
            core.c_any_dirty = True
            core.r_any_dirty = True
        c_due = core.c_due
        ticked = 0
        if full_cycle:
            for i, controller in enumerate(fw.controllers):
                c_dirty[i] = 0
                controller.tick(cycle)
                c_due[i] = _ctrl_due(controller, cycle)
                r_dirty[i] = 1
            ticked = len(fw.controllers)
            core.r_any_dirty = True
            core.c_any_dirty = 1 in c_dirty
            core.c_min_due = min(c_due)
        elif core.c_any_dirty or cycle >= core.c_min_due:
            for i, controller in enumerate(fw.controllers):
                if not c_dirty[i] and cycle < c_due[i]:
                    continue
                c_dirty[i] = 0
                # A tick may freeze/unfreeze VCs (watchdog resets, FROZEN
                # escapes) without firing datapath events; the epoch says
                # whether this one did.  Detection-pointer ticks — the vast
                # majority — leave the datapath untouched and must not force
                # an allocate re-run.
                epoch = VirtualChannel.freeze_epoch
                controller.tick(cycle)
                c_due[i] = _ctrl_due(controller, cycle)
                if VirtualChannel.freeze_epoch != epoch:
                    r_dirty[i] = 1
                    core.r_any_dirty = True
                ticked += 1
            core.c_any_dirty = 1 in c_dirty
            core.c_min_due = min(c_due)
        if self._profiler is not None:
            self._profiler.count("controller_ticks", ticked)
            self._profiler.count("controller_ticks_skipped",
                                 len(fw.controllers) - ticked)
        if fw._outbox:
            fw._resolve_outbox(cycle)

    # ------------------------------------------------------------------
    # Phase: inject
    # ------------------------------------------------------------------
    def _fast_phase_inject(self, cycle: int) -> None:
        self._core.phase_inject(cycle)

    # ------------------------------------------------------------------
    # Phase: allocate
    # ------------------------------------------------------------------
    def _fast_phase_allocate(self, cycle: int) -> None:
        net = self._net
        core = self._core
        count = core.router_count
        offset = net._allocation_offset
        if net.dead_link_count:
            # Runtime link failure: the dead-link candidate filter mutates
            # packet route state inside decide(), which the inline analysis
            # does not model.  Run the reference rotation until links heal
            # (the SoA mirrors stay synchronized via the event funnel),
            # keeping every router dirty so the fast path restarts cleanly.
            routers = net.routers
            for i in range(count):
                routers[(i + offset) % count].allocate(cycle)
            net._allocation_offset = (offset + 1) % count
            r_dirty = core.r_dirty
            for i in range(count):
                r_dirty[i] = 1
            core.r_any_dirty = True
            core.r_min_wake = 0
            return
        if not core.r_any_dirty and cycle < core.r_min_wake:
            # No router can grant or change its decision this cycle; only
            # the rotation pointer advances (as it would over N no-ops).
            net._allocation_offset = (offset + 1) % count
            if self._profiler is not None:
                self._profiler.count("alloc_cycles_skipped")
                self._profiler.count("router_cycles_skipped", count)
            return
        r_dirty = core.r_dirty
        r_wake = core.r_wake
        router_cycle = core.router_cycle
        ran = 0
        for i in range(count):
            rid = (i + offset) % count
            if r_dirty[rid] or cycle >= r_wake[rid]:
                router_cycle(rid, cycle)
                ran += 1
        net._allocation_offset = (offset + 1) % count
        core.r_any_dirty = 1 in r_dirty
        core.r_min_wake = min(r_wake)
        if self._profiler is not None:
            self._profiler.count("alloc_cycles_run")
            self._profiler.count("router_cycles_run", ran)
            self._profiler.count("router_cycles_skipped", count - ran)

    # ------------------------------------------------------------------
    # Quiescence fast-forward
    # ------------------------------------------------------------------
    def _quiescent(self, cycle: int) -> bool:
        core = self._core
        if core.occupied or core.active_nics:
            return False
        traffic = self._traffic
        if traffic is not None:
            if traffic.packet_probability > 0 and (
                    traffic.stop_at is None or cycle < traffic.stop_at):
                return False
        fw = self._fw
        if fw is not None:
            if fw._arrivals or fw._outbox or fw.executor._pending:
                return False
            for controller in fw.controllers:
                if controller.state is not SpinState.OFF:
                    return False
        return True

    def run(self, cycles: int) -> None:
        if self._schedule is None:
            self._schedule = self._build_schedule()
        if not (self._fast_ok and self._ff_ok):
            super().run(cycles)
            return
        end = self.cycle + cycles
        while self.cycle < end:
            if self._quiescent(self.cycle):
                # Every remaining cycle is a no-op for every component:
                # land exactly where the reference loop would.
                if self._profiler is not None:
                    self._profiler.count("cycles_fast_forwarded",
                                         end - self.cycle)
                self.cycle = end
                self._net.now = end
                return
            self.step()
