"""Unit tests for the 2-D mesh topology."""

import pytest

from repro.errors import TopologyError
from repro.topology.mesh import (
    DIRECTIONS, EAST, NORTH, OPPOSITE, SOUTH, WEST, MeshTopology,
)


class TestStructure:
    def test_router_count(self):
        assert MeshTopology(8, 8).num_routers == 64

    def test_one_terminal_per_router(self):
        mesh = MeshTopology(3, 4)
        assert mesh.num_nodes == 12
        assert all(mesh.router_of_node(n) == n for n in range(12))

    def test_validate_passes(self):
        MeshTopology(5, 3).validate()

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            MeshTopology(1, 8)

    def test_corner_router_has_two_ports(self):
        mesh = MeshTopology(4, 4)
        assert mesh.radix(0) == 2  # top-left corner

    def test_interior_router_has_four_ports(self):
        mesh = MeshTopology(4, 4)
        assert mesh.radix(mesh.router_at(1, 1)) == 4

    def test_edge_router_has_three_ports(self):
        mesh = MeshTopology(4, 4)
        assert mesh.radix(mesh.router_at(1, 0)) == 3

    def test_link_count(self):
        # 2 * (cols-1) * rows + 2 * cols * (rows-1) directed links.
        mesh = MeshTopology(4, 4)
        assert len(mesh.links()) == 2 * 3 * 4 + 2 * 4 * 3


class TestGeometry:
    def test_coordinates_roundtrip(self):
        mesh = MeshTopology(5, 3)
        for router in range(mesh.num_routers):
            x, y = mesh.coordinates(router)
            assert mesh.router_at(x, y) == router

    def test_neighbor_directions(self):
        mesh = MeshTopology(4, 4)
        center = mesh.router_at(1, 1)
        assert mesh.neighbor_in(center, NORTH) == mesh.router_at(1, 0)
        assert mesh.neighbor_in(center, SOUTH) == mesh.router_at(1, 2)
        assert mesh.neighbor_in(center, EAST) == mesh.router_at(2, 1)
        assert mesh.neighbor_in(center, WEST) == mesh.router_at(0, 1)

    def test_edges_have_no_outside_neighbor(self):
        mesh = MeshTopology(4, 4)
        assert mesh.neighbor_in(0, NORTH) is None
        assert mesh.neighbor_in(0, WEST) is None

    def test_ports_pair_with_opposites(self):
        mesh = MeshTopology(4, 4)
        for link in mesh.links():
            assert link.dst_port == OPPOSITE[link.src_port]

    def test_min_hops_is_manhattan(self):
        mesh = MeshTopology(8, 8)
        assert mesh.min_hops(mesh.router_at(0, 0), mesh.router_at(7, 7)) == 14
        assert mesh.min_hops(3, 3) == 0

    def test_min_hops_matches_bfs(self):
        mesh = MeshTopology(4, 3)
        bfs = mesh._all_pairs_hops()
        for src in range(mesh.num_routers):
            for dst in range(mesh.num_routers):
                assert mesh.min_hops(src, dst) == bfs[src][dst]


class TestProductiveDirections:
    def test_toward_southeast(self):
        mesh = MeshTopology(4, 4)
        dirs = mesh.directions_toward(mesh.router_at(0, 0), mesh.router_at(2, 2))
        assert set(dirs) == {EAST, SOUTH}

    def test_toward_self_is_empty(self):
        mesh = MeshTopology(4, 4)
        assert mesh.directions_toward(5, 5) == []

    def test_every_direction_constant_is_distinct(self):
        assert len(set(DIRECTIONS)) == 4

    def test_productive_dirs_reduce_distance(self):
        mesh = MeshTopology(5, 5)
        for src in range(mesh.num_routers):
            for dst in range(mesh.num_routers):
                if src == dst:
                    continue
                for direction in mesh.directions_toward(src, dst):
                    neighbor = mesh.neighbor_in(src, direction)
                    assert neighbor is not None
                    assert mesh.min_hops(neighbor, dst) == mesh.min_hops(src, dst) - 1
