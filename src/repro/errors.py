"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TopologyError(ReproError):
    """A topology is malformed (bad ports, unreachable nodes, ...)."""


class RoutingError(ReproError):
    """A routing algorithm produced an illegal decision."""


class ProtocolError(ReproError):
    """The network datapath violated one of its invariants.

    This is raised by internal self-checks (e.g. a flit pushed into an
    occupied virtual channel) and always indicates a simulator bug, never a
    property of the simulated design.
    """


class SimulationError(ReproError):
    """A simulation could not be completed (e.g. unresolved deadlock when the
    configuration promised deadlock freedom)."""
