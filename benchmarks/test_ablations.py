"""Ablations of the SPIN design choices called out in DESIGN.md §6.

* tDD sensitivity — detection threshold vs recovery latency and false
  recovery work (the paper fixes tDD = 128; we show the tradeoff).
* probe_move on/off — the Sec. IV-B4 multi-spin optimization.
* strict vs contention-only probe dropping — the two readings of the
  Sec. IV-C1 priority rule (DESIGN.md substitution note 5).
* FAvORS output selection — least-active-VC wait choice vs naive fixed
  choice, isolating the value of the credit-based congestion proxy.
"""

from repro.config import NetworkConfig, SpinParams
from repro.harness.tables import format_table
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_ring_deadlock

from benchmarks._common import run_once, scale, write_result

RING = 10
DST_AHEAD = 4


def ring_recovery_cycles(spin_params):
    """Cycles to fully drain a crafted multi-spin ring deadlock."""
    network = Network(RingTopology(RING), NetworkConfig(vcs_per_vnet=1),
                      MinimalAdaptiveRouting(1), spin=spin_params, seed=1)
    packets = craft_ring_deadlock(network, dst_ahead=DST_AHEAD)
    simulator = Simulator()
    simulator.register(network)
    done = simulator.run_until(
        lambda: network.stats.packets_delivered == len(packets),
        max_cycles=20_000)
    return simulator.cycle if done else None, dict(network.stats.events)


def saturated_mesh_run(spin_params, rate=0.3, seed=3):
    """Delivered packets under sustained overload on a 1-VC mesh."""
    cycles = scale(3000, 6000, 20000)
    network = Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                      MinimalAdaptiveRouting(seed), spin=spin_params,
                      seed=seed)
    network.stats.open_window(0, cycles)
    traffic = SyntheticTraffic(network, make_pattern("uniform", 16), rate,
                               seed=seed, stop_at=cycles // 2,
                               mix=PacketMix.single(1))
    simulator = Simulator()
    simulator.register(traffic)
    simulator.register(network)
    simulator.run(cycles)
    return network.stats.packets_delivered, dict(network.stats.events)


def run_tdd_ablation():
    rows = []
    for tdd in (8, 32, 128):
        cycles, events = ring_recovery_cycles(SpinParams(tdd=tdd))
        rows.append([tdd, cycles, events.get("spins", 0),
                     events.get("probes_sent", 0)])
    return format_table(
        ["tDD", "Recovery cycles", "Spins", "Probes sent"],
        rows,
        title=f"Ablation: tDD sensitivity ({RING}-ring, {DST_AHEAD} spins "
              "needed)"), rows


def run_probe_move_ablation():
    rows = []
    results = {}
    for enabled in (True, False):
        cycles, events = ring_recovery_cycles(
            SpinParams(tdd=16, probe_move_enabled=enabled))
        results[enabled] = cycles
        rows.append(["on" if enabled else "off", cycles,
                     events.get("spins", 0),
                     events.get("probe_moves_sent", 0)])
    return format_table(
        ["probe_move", "Recovery cycles", "Spins", "probe_moves"],
        rows,
        title="Ablation: the probe_move multi-spin optimization "
              "(Sec. IV-B4)"), results


def run_strict_priority_ablation():
    rows = []
    results = {}
    for strict in (False, True):
        delivered, events = saturated_mesh_run(
            SpinParams(tdd=16, strict_priority_drop=strict))
        results[strict] = delivered
        rows.append(["strict" if strict else "contention-only", delivered,
                     events.get("spins", 0),
                     events.get("probes_dropped_priority", 0)
                     + events.get("probes_dropped_contention", 0)])
    return format_table(
        ["Probe drop rule", "Delivered", "Spins", "Probes dropped"],
        rows,
        title="Ablation: strict vs contention-only probe priority drop "
              "(saturated 1-VC mesh)"), results


def run_wait_policy_ablation():
    """FAvORS output selection: credit-based least-active vs random wait."""
    from repro.routing.favors import FavorsMinimal

    rows = []
    results = {}
    for policy in ("least_active", "random"):
        cycles = scale(2000, 4000, 20000)
        network = Network(MeshTopology(8, 8), NetworkConfig(vcs_per_vnet=1),
                          FavorsMinimal(3, wait_policy=policy),
                          spin=SpinParams(tdd=32), seed=3)
        network.stats.open_window(400, cycles)
        traffic = SyntheticTraffic(
            network, make_pattern("transpose", 64, cols=8), 0.18, seed=3,
            stop_at=cycles)
        simulator = Simulator()
        simulator.register(traffic)
        simulator.register(network)
        simulator.run(cycles + 2000)
        latency = network.stats.latency().mean
        results[policy] = latency
        rows.append([policy, round(latency, 1),
                     round(network.stats.delivery_ratio(), 3),
                     network.stats.events.get("spins", 0)])
    return format_table(
        ["Wait policy", "Mean latency", "Delivered", "Spins"],
        rows,
        title="Ablation: FAvORS blocked-output selection "
              "(8x8 mesh, transpose, 1 VC)"), results


def run_implementation_mode_ablation():
    """Three implementations of the SPIN theory side by side.

    distributed — the paper's Sec. IV protocol (probes/moves/kill_moves);
    centralized — the Sec. III reference (oracle + orchestrated spin);
    proactive   — footnote 3 / DRAIN (detectionless periodic drains).
    """
    from repro.core.centralized import CentralizedSpinPlane
    from repro.core.proactive import ProactiveSpinPlane

    rows = []
    results = {}
    cycles = scale(3000, 6000, 20000)
    modes = {
        "distributed": dict(spin=SpinParams(tdd=32)),
        "centralized": dict(control_planes=(CentralizedSpinPlane(32),)),
        "proactive": dict(control_planes=(ProactiveSpinPlane(32, 8),)),
    }
    for mode, kwargs in modes.items():
        network = Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(5), seed=5, **kwargs)
        network.stats.open_window(0, cycles // 2)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.3, seed=5,
            stop_at=cycles // 2, mix=PacketMix.single(1))
        simulator = Simulator()
        simulator.register(traffic)
        simulator.register(network)
        simulator.run(cycles)
        delivered = network.stats.packets_delivered
        results[mode] = delivered
        events = network.stats.events
        spins = (events.get("spins", 0) + events.get("centralized_spins", 0)
                 + events.get("proactive_drains", 0))
        rows.append([mode, delivered, spins, events.get("probes_sent", 0)])
    return format_table(
        ["Implementation", "Delivered", "Spins/drains", "Probes"],
        rows,
        title="Ablation: distributed vs centralized vs proactive SPIN "
              "(saturated 1-VC mesh)"), results


def run_experiment():
    tdd_table, tdd_rows = run_tdd_ablation()
    pm_table, pm_results = run_probe_move_ablation()
    sp_table, sp_results = run_strict_priority_ablation()
    wp_table, wp_results = run_wait_policy_ablation()
    pa_table, pa_results = run_implementation_mode_ablation()
    text = "\n\n".join([tdd_table, pm_table, sp_table, wp_table, pa_table])
    return text, tdd_rows, pm_results, sp_results, wp_results, pa_results


def test_ablations(benchmark):
    (text, tdd_rows, pm_results, sp_results, wp_results,
     pa_results) = run_once(benchmark, run_experiment)
    write_result("ablations", text)
    # Every configuration recovers.
    assert all(row[1] is not None for row in tdd_rows)
    # Larger tDD -> strictly slower recovery of the same deadlock.
    recovery = [row[1] for row in tdd_rows]
    assert recovery == sorted(recovery)
    # probe_move accelerates multi-spin recovery.
    assert pm_results[True] <= pm_results[False]
    # Both priority readings keep the network live under saturation.
    assert all(delivered > 0 for delivered in sp_results.values())
    # Both FAvORS wait policies work; both proactive and reactive modes
    # keep a saturated 1-VC mesh delivering.
    assert all(latency > 0 for latency in wp_results.values())
    assert all(delivered > 0 for delivered in pa_results.values())
