"""Deterministic random-number generation for reproducible simulations.

Every stochastic decision in the simulator (traffic arrivals, adaptive
route tie-breaks, intermediate-node choice in non-minimal routing) draws from
a :class:`DeterministicRng`.  A single seed therefore fixes an entire run,
which the test suite relies on heavily.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, purpose-named wrapper around :class:`random.Random`.

    Separate subsystems should derive independent streams via :meth:`fork`
    so that, e.g., adding a routing tie-break draw does not perturb the
    traffic arrival sequence of an otherwise-identical experiment.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Create an independent stream derived from this one.

        The child stream depends only on ``(seed, label)``, never on how many
        draws the parent has made.  A stable digest (not Python's randomized
        ``hash``) keeps runs reproducible across processes.
        """
        digest = hashlib.sha256(f"{self._seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFF_FFFF
        return DeterministicRng(child_seed)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive on both ends."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def choice_or_none(self, items: Sequence[T]) -> Optional[T]:
        """Uniform choice, or ``None`` when the sequence is empty."""
        if not items:
            return None
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability
