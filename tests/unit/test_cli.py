"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError, FaultInjectionError
from repro.stats.results import load_results


class TestParser:
    def test_designs_command(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "mesh:favors-min-spin-1vc" in out
        assert "dfly:ugal-dally-3vc" in out

    def test_run_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "x"])

    def test_area_command(self, capsys):
        assert main(["area", "--radix", "5", "--vcs", "3"]) == 0
        out = capsys.readouterr().out
        assert "router area" in out
        assert "SPIN modules" in out


class TestRunCommand:
    def test_small_run(self, capsys):
        code = main([
            "run", "--design", "mesh:favors-min-spin-1vc",
            "--pattern", "uniform", "--rate", "0.05",
            "--mesh-side", "4", "--warmup", "100", "--measure", "500",
            "--drain", "500", "--tdd", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean latency" in out
        assert "delivery ratio" in out

    def test_unknown_design_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            main(["run", "--design", "mesh:bogus", "--rate", "0.1"])

    def test_design_alias_accepted(self, capsys):
        code = main([
            "run", "--design", "spin_mesh", "--rate", "0.05",
            "--mesh-side", "4", "--warmup", "100", "--measure", "400",
            "--drain", "400", "--tdd", "32",
        ])
        assert code == 0
        assert "mean latency" in capsys.readouterr().out

    def test_faulty_run_prints_fault_counters(self, capsys):
        code = main([
            "run", "--design", "spin_mesh", "--rate", "0.05",
            "--mesh-side", "4", "--warmup", "100", "--measure", "500",
            "--drain", "500", "--tdd", "32",
            "--faults", "link_down@200:r1-r2,sm_drop:p=0.05",
            "--fault-seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "watchdog fires" in out
        assert "packets lost" in out


class TestRunValidation:
    BASE = ["run", "--design", "spin_mesh"]

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="offered load"):
            main(self.BASE + ["--rate", "0.0"])

    def test_rate_capped_at_one(self):
        with pytest.raises(ConfigurationError, match="offered load"):
            main(self.BASE + ["--rate", "1.5"])

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="--seed"):
            main(self.BASE + ["--rate", "0.1", "--seed", "-3"])

    def test_nonpositive_tdd_rejected(self):
        with pytest.raises(ConfigurationError, match="--tdd"):
            main(self.BASE + ["--rate", "0.1", "--tdd", "0"])

    def test_malformed_dragonfly_rejected(self):
        with pytest.raises(ConfigurationError, match="--dragonfly"):
            main(["run", "--design", "dfly:minimal-spin-1vc",
                  "--rate", "0.1", "--dragonfly", "2,4"])
        with pytest.raises(ConfigurationError, match="--dragonfly"):
            main(["run", "--design", "dfly:minimal-spin-1vc",
                  "--rate", "0.1", "--dragonfly", "2,x,4"])
        with pytest.raises(ConfigurationError, match="--dragonfly"):
            main(["run", "--design", "dfly:minimal-spin-1vc",
                  "--rate", "0.1", "--dragonfly", "2,0,4"])

    def test_bad_fault_spec_rejected_before_simulation(self):
        with pytest.raises(FaultInjectionError):
            main(self.BASE + ["--rate", "0.1", "--faults", "warp_core_breach"])

    def test_negative_fault_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="--fault-seed"):
            main(self.BASE + ["--rate", "0.1", "--fault-seed", "-1"])

    def test_sweep_rates_validated(self):
        with pytest.raises(ConfigurationError, match="offered load"):
            main(["sweep", "--design", "spin_mesh", "--rates", "0.05,1.2"])


class TestSweepCommand:
    SMALL = ["sweep", "--design", "spin_mesh", "--pattern", "uniform",
             "--mesh-side", "4", "--warmup", "100", "--measure", "400",
             "--drain", "300", "--abort-cycles", "500"]

    def test_small_sweep(self, capsys):
        code = main([
            "sweep", "--design", "mesh:westfirst-3vc",
            "--pattern", "uniform", "--rates", "0.05,0.3",
            "--mesh-side", "4", "--warmup", "100", "--measure", "400",
            "--drain", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation rate" in out

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            main(self.SMALL + ["--rates", "0.05", "--jobs", "0"])

    def test_output_writes_loadable_results(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        code = main(self.SMALL + ["--rates", "0.02,0.05",
                                  "--output", str(out_file)])
        assert code == 0
        assert "wrote 2 points" in capsys.readouterr().out
        points, meta = load_results(out_file)
        assert [p.injection_rate for p in points] == [0.02, 0.05]
        assert meta["design"] == "mesh:minadaptive-spin-1vc"  # canonical
        assert meta["pattern"] == "uniform"
        assert "jobs" not in meta  # files are --jobs independent

    def test_parallel_sweep_output_matches_serial_byte_for_byte(
            self, capsys, tmp_path):
        serial, parallel = tmp_path / "jobs1.json", tmp_path / "jobs2.json"
        assert main(self.SMALL + ["--rates", "0.02,0.05",
                                  "--output", str(serial)]) == 0
        assert main(self.SMALL + ["--rates", "0.02,0.05", "--jobs", "2",
                                  "--output", str(parallel)]) == 0
        capsys.readouterr()  # drain the tables
        assert serial.read_bytes() == parallel.read_bytes()

    def test_failed_points_exit_nonzero_with_summary(self, capsys):
        code = main(["sweep", "--design", "spin_mesh",
                     "--pattern", "nonexistent", "--rates", "0.02,0.05",
                     "--mesh-side", "4", "--warmup", "100",
                     "--measure", "400", "--drain", "300",
                     "--abort-cycles", "500"])
        assert code == 1
        out = capsys.readouterr().out
        assert "point(s) failed" in out
        assert "worker raised" in out  # the per-error-class table

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="--retries"):
            main(self.SMALL + ["--rates", "0.05", "--retries", "-1"])

    def test_negative_max_failures_rejected(self):
        with pytest.raises(ConfigurationError, match="--max-failures"):
            main(self.SMALL + ["--rates", "0.05", "--max-failures", "-1"])


class TestSweepCampaign:
    SMALL = TestSweepCommand.SMALL

    def test_campaign_writes_manifest_and_journal(self, capsys, tmp_path):
        campaign = tmp_path / "camp"
        code = main(self.SMALL + ["--rates", "0.02,0.05",
                                  "--campaign", str(campaign)])
        assert code == 0
        assert (campaign / "manifest.json").exists()
        journal = (campaign / "journal.jsonl").read_text()
        assert len(journal.strip().split("\n")) == 2

    def test_campaign_rerun_resumes_all_points(self, capsys, tmp_path):
        campaign = tmp_path / "camp"
        args = self.SMALL + ["--rates", "0.02,0.05",
                             "--campaign", str(campaign)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "points_resumed=2" in capsys.readouterr().out

    def test_campaign_dir_spec_mismatch_rejected(self, tmp_path):
        campaign = tmp_path / "camp"
        assert main(self.SMALL + ["--rates", "0.02",
                                  "--campaign", str(campaign)]) == 0
        with pytest.raises(ConfigurationError, match="different sweep"):
            main(self.SMALL + ["--rates", "0.02,0.05",
                               "--campaign", str(campaign)])

    def test_resume_rebuilds_identical_artifact(self, capsys, tmp_path):
        campaign, out_file = tmp_path / "camp", tmp_path / "out.json"
        assert main(self.SMALL + ["--rates", "0.02,0.05",
                                  "--campaign", str(campaign),
                                  "--output", str(out_file)]) == 0
        golden = out_file.read_bytes()
        out_file.unlink()
        # --resume takes everything (specs, meta, output) from the manifest.
        assert main(["sweep", "--resume", str(campaign)]) == 0
        assert out_file.read_bytes() == golden

    def test_resume_conflicts_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            main(["sweep", "--resume", str(tmp_path / "a"),
                  "--campaign", str(tmp_path / "b")])
        with pytest.raises(ConfigurationError, match="drop --design"):
            main(["sweep", "--resume", str(tmp_path / "a"),
                  "--design", "spin_mesh"])

    def test_sweep_without_design_or_resume_rejected(self):
        with pytest.raises(ConfigurationError, match="--resume"):
            main(["sweep"])

    def test_resume_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="manifest"):
            main(["sweep", "--resume", str(tmp_path / "nowhere")])
