"""Determinism: identical seeds must reproduce identical simulations.

Reproducibility is load-bearing for the whole benchmark methodology (the
same workload must hit every design identically) and for debugging (any
failure can be replayed).  These tests run complete simulations twice and
require exact equality of every observable.
"""

from repro.config import SimulationConfig, SpinParams
from repro.harness.runner import run_design
from repro.stats.sweep import run_point
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import make_mesh_network

SIM = SimulationConfig(warmup_cycles=200, measure_cycles=1200,
                       drain_cycles=1200)


def fingerprint(network, point):
    stats = network.stats
    return (
        stats.packets_created,
        stats.packets_delivered,
        tuple(stats.latencies),
        tuple(stats.hop_counts),
        tuple(sorted(stats.events.items())),
        round(point.mean_latency, 6),
        round(point.throughput, 6),
    )


def run_spin_mesh(seed):
    def network_factory():
        return make_mesh_network(side=4, vcs=1, spin=SpinParams(tdd=24),
                                 seed=seed)

    def traffic_factory(network, rate, stop_at):
        return SyntheticTraffic(network, make_pattern("uniform", 16), rate,
                                seed=seed, stop_at=stop_at)

    return run_point(network_factory, traffic_factory, SIM,
                     injection_rate=0.25)


class TestExactReplay:
    def test_same_seed_identical_everything(self):
        first = fingerprint(*run_spin_mesh(seed=9))
        second = fingerprint(*run_spin_mesh(seed=9))
        assert first == second

    def test_different_seed_differs(self):
        first = fingerprint(*run_spin_mesh(seed=9))
        other = fingerprint(*run_spin_mesh(seed=10))
        assert first != other

    def test_spin_recovery_is_deterministic(self):
        # A run with heavy SPIN activity (probes, contention drops, spins)
        # replays exactly: the whole control plane is seed-stable.
        _, point_a = run_spin_mesh(seed=3)
        _, point_b = run_spin_mesh(seed=3)
        assert point_a.events == point_b.events

    def test_design_runner_deterministic(self):
        results = [
            run_design("mesh:escapevc-2vc", "transpose", 0.12, SIM,
                       seed=4, mesh_side=4)[1]
            for _ in range(2)
        ]
        assert results[0].mean_latency == results[1].mean_latency
        assert results[0].events == results[1].events
