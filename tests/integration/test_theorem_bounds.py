"""Integration tests for the SPIN theorem (paper Sec. III).

Theorem: in a deadlocked ring of length m, at most k spins are required to
resolve the deadlock, with k = m - 1 for minimal routing and
k = m*p + (m-1) for non-minimal routing with misroute bound p.

We plant deterministic deadlocked rings of varying length and destination
distance, let the full distributed implementation (probes, moves, spins)
run, and assert the bound on the actual number of spins each packet
experienced before the deadlock broke.
"""

import pytest

from repro.config import SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.sim.engine import Simulator

from tests.conftest import craft_ring_deadlock, make_ring_network


def resolve_ring(m: int, dst_ahead: int, tdd: int = 8,
                 max_cycles: int = 4000):
    """Craft, detect and fully resolve an m-ring; returns (network, packets)."""
    network = make_ring_network(m=m, spin=SpinParams(tdd=tdd))
    packets = craft_ring_deadlock(network, dst_ahead=dst_ahead)
    sim = Simulator()
    sim.register(network)
    sim.run(2)
    assert has_deadlock(network, sim.cycle), "ring must start deadlocked"
    done = sim.run_until(
        lambda: network.stats.packets_delivered == len(packets),
        max_cycles=max_cycles)
    assert done, (
        f"m={m} ring not fully drained after {max_cycles} cycles "
        f"(delivered {network.stats.packets_delivered}/{len(packets)})")
    return network, packets


class TestMinimalRoutingBound:
    @pytest.mark.parametrize("m,dst_ahead", [
        (4, 2), (5, 2), (6, 2), (6, 3), (8, 2), (8, 4), (10, 3), (12, 5),
    ])
    def test_spins_bounded_by_m_minus_1(self, m, dst_ahead):
        network, packets = resolve_ring(m, dst_ahead)
        worst = max(p.spins for p in packets)
        assert worst <= m - 1, (
            f"theorem violated: {worst} spins for ring of {m}")

    @pytest.mark.parametrize("m,dst_ahead", [(6, 2), (8, 3), (10, 4)])
    def test_spins_equal_dst_ahead_on_uniform_ring(self, m, dst_ahead):
        # On a uniform ring where every packet is dst_ahead hops from its
        # destination, the chain stays fully deadlocked after each spin
        # until packets reach their destinations: exactly dst_ahead spins.
        network, packets = resolve_ring(m, dst_ahead)
        assert max(p.spins for p in packets) == dst_ahead

    def test_every_spin_made_forward_progress(self):
        # Minimal routing: every hop (spun or granted) reduces distance.
        network, packets = resolve_ring(8, 3)
        for packet in packets:
            assert packet.misroutes == 0
            assert packet.hops == 3  # exactly the minimal distance

    def test_probe_move_accelerates_multi_spin_recovery(self):
        # With the optimization, subsequent spins come from probe_move, not
        # from fresh tDD timeouts.
        network, packets = resolve_ring(8, 4)
        events = network.stats.events
        assert events.get("probe_moves_sent", 0) >= 1
        assert events.get("spins", 0) >= 2

    def test_without_probe_move_still_resolves(self):
        network = make_ring_network(
            m=8, spin=SpinParams(tdd=8, probe_move_enabled=False))
        packets = craft_ring_deadlock(network, dst_ahead=4)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done
        assert network.stats.events.get("probe_moves_sent", 0) == 0
        assert max(p.spins for p in packets) <= 7


class TestRecoveryLatency:
    def test_first_spin_within_analytic_bound(self):
        # Detection <= tDD after requests stabilize; probe takes m cycles;
        # move m; spin at 2 x loop delay after the move went out.
        m, tdd = 6, 8
        network = make_ring_network(m=m, spin=SpinParams(tdd=tdd))
        craft_ring_deadlock(network, dst_ahead=2)
        sim = Simulator()
        sim.register(network)
        bound = 4 * tdd + 4 * m + 10
        done = sim.run_until(
            lambda: network.stats.events.get("spins", 0) >= 1,
            max_cycles=bound)
        assert done, f"first spin later than {bound} cycles"

    def test_spin_hop_count_matches_ring(self):
        network, packets = resolve_ring(6, 2)
        spins = network.stats.events.get("spins", 0)
        # Every spin rotates the whole 6-ring (until packets start ejecting,
        # at which point the chain shrinks or dissolves).
        assert network.stats.events.get("spin_hops", 0) >= 6
        assert spins >= 1
