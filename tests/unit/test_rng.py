"""Unit tests for the deterministic RNG."""

from repro.sim.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]

    def test_fork_is_independent_of_parent_draw_count(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        for _ in range(100):
            a.random()  # advance only one parent
        assert a.fork("x").random() == b.fork("x").random()

    def test_fork_labels_differ(self):
        rng = DeterministicRng(7)
        assert rng.fork("x").random() != rng.fork("y").random()


class TestDraws:
    def test_randint_inclusive_bounds(self):
        rng = DeterministicRng(3)
        values = {rng.randint(0, 2) for _ in range(200)}
        assert values == {0, 1, 2}

    def test_choice_covers_items(self):
        rng = DeterministicRng(3)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(100)} == set(items)

    def test_choice_or_none_empty(self):
        assert DeterministicRng(1).choice_or_none([]) is None

    def test_choice_or_none_nonempty(self):
        assert DeterministicRng(1).choice_or_none([5]) == 5

    def test_bernoulli_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(9)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
