"""The telemetry observer: recording counterpart of the invariant oracle.

:class:`TelemetryObserver` watches one network from inside the cycle loop
through the same zero-cost hook the oracle uses
(:meth:`repro.sim.engine.Simulator.register_observer`): when telemetry is
disabled nothing is registered and the hot loop is byte-for-byte the
schedule it always was.  When enabled it records three things:

* **metric samples** — every ``sample_interval`` cycles, per-router VC
  occupancy and stalled-VC counts, per-link flit/SM utilization deltas,
  NIC backlog, packets in flight, frozen VCs, and the delta of every
  ``network.stats`` event counter, all folded into a
  :class:`~repro.telemetry.registry.MetricsRegistry` and kept as compact
  JSON-safe sample records for the exporters;
* **SPIN spans** — the :class:`~repro.telemetry.spans.SpanTracer` runs
  every cycle (it needs consecutive FSM states) and streams closed spans
  into the registry's detection/recovery-latency histograms;
* **per-packet hop traces** — optional (``packet_traces=True``): wraps
  ``network.routing.on_hop`` and ``network.deliver`` at attach time,
  exactly the oracle's wrapping idiom.

Deterministic merge into sweep results: span and sample tallies are
counted into ``network.stats.events`` under ``telemetry_*`` keys, from
where they flow into :class:`~repro.stats.sweep.SweepPoint.events` and the
``repro.sweep-results/v1`` JSON unchanged — the counts are a pure function
of the spec, so ``--jobs N`` sweeps stay byte-identical.

Enable without code changes via ``REPRO_TELEMETRY`` (see
:func:`telemetry_from_env`): ``1``/``on``/``metrics`` records metrics and
spans; ``full`` adds per-packet hop traces; an integer > 1 sets the sample
interval.  See docs/TELEMETRY.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanTracer, SpinSpan

#: Hard cap on retained hop-trace records (full traces of a saturated run
#: would otherwise dwarf the simulation itself).
MAX_HOP_RECORDS = 200_000


@dataclass
class TelemetryConfig:
    """Tuning knobs of :class:`TelemetryObserver`.

    Attributes:
        sample_interval: Cycles between metric samples (1 = every cycle).
        metrics: Record per-component metric samples.
        spans: Trace SPIN control-plane episodes (needs a SPIN network to
            produce anything; harmless otherwise).
        packet_traces: Record one event per packet hop and delivery.
            Off by default — hop traces are the one telemetry stream whose
            volume scales with traffic, and their uids are process-local.
        gauge_capacity: Retained samples per gauge series.
        max_samples: Stop recording new sample records beyond this many
            (the registry keeps aggregating; only the exporter stream is
            capped).
    """

    sample_interval: int = 64
    metrics: bool = True
    spans: bool = True
    packet_traces: bool = False
    gauge_capacity: int = 4096
    max_samples: int = 100_000

    def __post_init__(self) -> None:
        if self.sample_interval < 1:
            raise ConfigurationError("sample_interval must be >= 1",
                                     sample_interval=self.sample_interval)
        if self.max_samples < 1:
            raise ConfigurationError("max_samples must be >= 1",
                                     max_samples=self.max_samples)


class TelemetryObserver:
    """Per-cycle metric/span/hop recorder for one network.

    Usage::

        telemetry = TelemetryObserver(network, TelemetryConfig())
        telemetry.attach(simulator)
        simulator.run(...)
        telemetry.finalize(simulator.cycle)
        spans = telemetry.spans          # closed SpinSpan records
        samples = telemetry.samples      # JSON-safe sample dicts
    """

    def __init__(self, network,
                 config: Optional[TelemetryConfig] = None) -> None:
        self.network = network
        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry(self.config.gauge_capacity)
        #: JSON-safe metric sample records, in cycle order.
        self.samples: List[Dict[str, object]] = []
        #: Closed spans, in close order (open ones close via finalize()).
        self.spans: List[SpinSpan] = []
        #: Hop/delivery records when ``packet_traces``:
        #: ``[cycle, "hop"|"deliver", uid, router, port]``.
        self.hops: List[list] = []
        self._attached = False
        self._finalized = False
        self._tracer: Optional[SpanTracer] = None
        if self.config.spans and network.spin is not None:
            self._tracer = SpanTracer(network.spin)
            self._tracer.on_span_close = self._on_span_close
        # Delta baselines.
        self._last_counts = (0, 0, 0, 0)
        self._last_events: Dict[str, int] = {}
        self._link_marks: Dict[Tuple[int, int], Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, simulator) -> "TelemetryObserver":
        """Register as a simulator observer (and hook hop tracing)."""
        if self._attached:
            raise ConfigurationError("telemetry observer already attached")
        self._attached = True
        if self.config.packet_traces:
            self._hook_packet_traces()
        simulator.register_observer(self)
        return self

    def _hook_packet_traces(self) -> None:
        network = self.network
        routing = network.routing
        inner_hop = routing.on_hop
        inner_deliver = network.deliver
        hops = self.hops

        def traced_hop(packet, router, outport):
            if len(hops) < MAX_HOP_RECORDS:
                hops.append([network.now, "hop", packet.uid, router.id,
                             outport])
            inner_hop(packet, router, outport)

        def traced_deliver(packet, router_id, eject_port, now):
            if len(hops) < MAX_HOP_RECORDS:
                hops.append([now, "deliver", packet.uid, router_id,
                             eject_port])
            inner_deliver(packet, router_id, eject_port, now)

        routing.on_hop = traced_hop
        network.deliver = traced_deliver

    # ------------------------------------------------------------------
    # Observer hook
    # ------------------------------------------------------------------
    def phase_collect(self, cycle: int) -> None:
        if self._tracer is not None:
            self._tracer.observe(cycle)
        if self.config.metrics and cycle % self.config.sample_interval == 0:
            self._sample(cycle)

    def finalize(self, cycle: int) -> None:
        """Close open spans and take a final sample; idempotent."""
        if self._finalized:
            return
        self._finalized = True
        if self._tracer is not None:
            self._tracer.finish(cycle)
        if (self.config.metrics
                and (not self.samples
                     or self.samples[-1]["cycle"] != cycle)):
            self._sample(cycle)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self, cycle: int) -> None:
        network = self.network
        stats = network.stats
        registry = self.registry
        now = network.now

        counts = (stats.packets_created, stats.packets_injected,
                  stats.packets_delivered, stats.packets_lost)
        deltas = [cur - before
                  for cur, before in zip(counts, self._last_counts)]
        self._last_counts = counts

        occupancy: List[int] = []
        stalled: List[int] = []
        frozen = 0
        for router in network.routers:
            active = router.active_vcs
            occupancy.append(active)
            stuck = 0
            if active:
                for _, vcs in router.all_inports():
                    for vc in vcs:
                        if vc.packet is None:
                            continue
                        if vc.frozen:
                            frozen += 1
                        elif vc.fully_arrived(now):
                            # Resident, whole, and not pinned for a spin:
                            # waiting on a credit/grant — a credit stall.
                            stuck += 1
            stalled.append(stuck)
            registry.gauge("router_occupancy", router.id).record(
                cycle, active)
            if stuck:
                registry.counter("credit_stalls", router.id).inc(stuck)

        links: List[list] = []
        for key in sorted(network.links):
            link = network.links[key]
            mark = self._link_marks.get(key)
            current = (link.measure_from, link.flit_cycles, link.sm_cycles)
            self._link_marks[key] = current
            if mark is None or mark[0] != current[0]:
                continue  # first sight or a utilization reset: new epoch
            flit_delta = current[1] - mark[1]
            sm_delta = current[2] - mark[2]
            if flit_delta or sm_delta:
                links.append([key[0], key[1], flit_delta, sm_delta])
                registry.gauge("link_flits", key).record(cycle, flit_delta)
                if sm_delta:
                    registry.gauge("link_sms", key).record(cycle, sm_delta)

        events: Dict[str, int] = {}
        for name in sorted(stats.events):
            value = stats.events[name]
            if name.startswith("telemetry_"):
                continue  # our own merge counters are not an observation
            delta = value - self._last_events.get(name, 0)
            if delta:
                events[name] = delta
                self._last_events[name] = value

        in_flight = sum(occupancy)
        backlog = network.total_backlog()
        registry.gauge("in_flight").record(cycle, in_flight)
        registry.gauge("nic_backlog").record(cycle, backlog)
        registry.gauge("frozen_vcs").record(cycle, frozen)
        registry.histogram(
            "router_occupancy",
            edges=(0, 1, 2, 4, 8, 16, 32)).observe(max(occupancy) if
                                                   occupancy else 0)

        stats.count("telemetry_samples")
        if len(self.samples) >= self.config.max_samples:
            return
        self.samples.append({
            "type": "sample",
            "cycle": cycle,
            "created": deltas[0],
            "injected": deltas[1],
            "delivered": deltas[2],
            "lost": deltas[3],
            "in_flight": in_flight,
            "backlog": backlog,
            "frozen": frozen,
            "occupancy": occupancy,
            "stalled": stalled,
            "links": links,
            "events": events,
        })

    # ------------------------------------------------------------------
    # Span streaming
    # ------------------------------------------------------------------
    def _on_span_close(self, span: SpinSpan) -> None:
        self.spans.append(span)
        stats = self.network.stats
        registry = self.registry
        if span.kind == "frozen":
            stats.count("telemetry_frozen_spans")
            if span.recovery_latency is not None:
                registry.histogram("frozen_residency").observe(
                    span.recovery_latency)
            return
        stats.count("telemetry_spans")
        if span.outcome is not None:
            stats.count(f"telemetry_spans_{span.outcome}")
        stats.count("telemetry_span_spins", len(span.spin_cycles))
        stats.count("telemetry_detection_cycles", span.detection_latency)
        registry.histogram("detection_latency").observe(
            span.detection_latency)
        registry.histogram("span_spins",
                           edges=(0, 1, 2, 4, 8, 16)).observe(
            len(span.spin_cycles))
        latency = span.recovery_latency
        if latency is not None:
            stats.count("telemetry_recovery_cycles", latency)
            registry.histogram("recovery_latency").observe(latency)


#: ``REPRO_TELEMETRY`` values that enable telemetry (lowercased).
_ENV_ON = ("1", "on", "true", "metrics", "spans", "full")


def config_from_env_value(value: str) -> Optional[TelemetryConfig]:
    """Parse one ``REPRO_TELEMETRY`` value into a config (None = off).

    Accepted (case-insensitive): ``1``/``on``/``true``/``metrics``/
    ``spans`` — metrics + spans at the default interval; ``full`` — also
    per-packet hop traces; an integer > 1 — metrics + spans sampled every
    that many cycles.  Anything else disables telemetry.
    """
    text = value.strip().lower()
    if not text:
        return None
    if text in _ENV_ON:
        return TelemetryConfig(packet_traces=(text == "full"))
    try:
        interval = int(text)
    except ValueError:
        return None
    if interval <= 1:
        return TelemetryConfig() if interval == 1 else None
    return TelemetryConfig(sample_interval=interval)


def telemetry_from_env(network) -> Optional[TelemetryObserver]:
    """Build an observer if ``REPRO_TELEMETRY`` asks for one, else None."""
    config = config_from_env_value(os.environ.get("REPRO_TELEMETRY", ""))
    if config is None:
        return None
    return TelemetryObserver(network, config)
