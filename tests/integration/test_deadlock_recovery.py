"""End-to-end deadlock recovery: live traffic, crafted special cases.

These reproduce the paper's correctness scenarios: plain rings (Fig. 2),
shared-router loops (Fig. 5a), a figure-8 chain (Fig. 5b), and the
demonstration that the same traffic wedges permanently without SPIN.
"""

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.stats.sweep import run_point
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import (
    craft_figure8_deadlock,
    craft_square_deadlock,
    make_mesh_network,
)


class TestLiveTrafficRecovery:
    """Uniform random at saturating load on a 1-VC mesh: deadlocks occur
    and SPIN keeps the network live."""

    def _run(self, spin, cycles=12000, rate=0.35, inject_until=1000, seed=3):
        network = make_mesh_network(side=4, vcs=1, spin=spin, seed=seed)
        network.stats.open_window(0, inject_until)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), rate, seed=seed,
            stop_at=inject_until, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(cycles)
        return network, sim

    def test_without_spin_wedges(self):
        network, sim = self._run(spin=None, cycles=4000)
        assert has_deadlock(network, sim.cycle)
        assert network.idle_cycles() > 500

    def test_with_spin_fully_drains(self):
        network, sim = self._run(spin=SpinParams(tdd=32))
        assert not has_deadlock(network, sim.cycle)
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())
        assert network.stats.events.get("spins", 0) >= 1

    def test_conservation_with_spin(self):
        network, sim = self._run(spin=SpinParams(tdd=32))
        stats = network.stats
        assert stats.packets_delivered == stats.packets_created
        # Every measured delivered packet took at least the minimal path.
        for hops, latency in zip(stats.hop_counts, stats.network_latencies):
            assert latency >= hops

    def test_spin_recovery_repeats_under_sustained_load(self):
        network, sim = self._run(spin=SpinParams(tdd=16), cycles=15000,
                                 rate=0.5)
        assert network.stats.events.get("spins", 0) >= 2
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())


class TestFigure8:
    def test_figure8_chain_detected_and_resolved(self):
        network = make_mesh_network(side=4, spin=SpinParams(tdd=8))
        packets = craft_figure8_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=4000)
        assert done, (network.stats.packets_delivered, dict(network.stats.events))

    def test_crossover_router_spins_two_vcs(self):
        network = make_mesh_network(side=4, spin=SpinParams(tdd=8))
        packets = craft_figure8_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run_until(lambda: network.stats.events.get("spins", 0) >= 1,
                      max_cycles=3000)
        # When the full 8-entry chain spins at once, the spin rotates more
        # VCs than any simple 4-loop would.
        if network.stats.events.get("spin_hops", 0):
            assert network.stats.events["spin_hops"] >= 4


class TestSharedRouterLoops:
    def test_two_loops_sharing_a_router_resolve_serially(self):
        # Square A on (1,1)-(2,2) crafted; square B overlaps at (1,1) via
        # the figure-8 helper's upper-left loop shape.  Simpler: craft the
        # square, let live traffic create more pressure, everything drains.
        network = make_mesh_network(side=4, vcs=1, spin=SpinParams(tdd=16),
                                    seed=9)
        packets = craft_square_deadlock(network)
        network.stats.open_window(0, 1500)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.3, seed=9, stop_at=1500,
            mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(6000)
        assert network.is_drained()
        assert network.stats.packets_delivered == network.stats.packets_created


class TestMultiFlitTraffic:
    def test_mixed_packet_sizes_recover(self):
        network = make_mesh_network(side=4, vcs=1, spin=SpinParams(tdd=32),
                                    seed=5)
        network.stats.open_window(0, 1500)
        traffic = SyntheticTraffic(
            network, make_pattern("transpose", 16, cols=4), 0.4, seed=5,
            stop_at=1500)  # default 1/5-flit mix
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(8000)
        assert network.is_drained()
        assert network.stats.packets_delivered == network.stats.packets_created


class TestSpinParamsVariants:
    @pytest.mark.parametrize("strict", [False, True])
    def test_strict_priority_drop_still_recovers(self, strict):
        network = make_mesh_network(
            side=4, vcs=1,
            spin=SpinParams(tdd=16, strict_priority_drop=strict), seed=11)
        network.stats.open_window(0, 1200)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.45, seed=11,
            stop_at=1200, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(8000)
        assert network.is_drained()

    def test_larger_tdd_delays_but_still_recovers(self):
        network = make_mesh_network(side=4, vcs=1,
                                    spin=SpinParams(tdd=128), seed=3)
        network.stats.open_window(0, 1200)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.4, seed=3, stop_at=1200,
            mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(10000)
        assert network.is_drained()
