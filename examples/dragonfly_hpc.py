#!/usr/bin/env python
"""Dragonfly (HPC-scale topology): UGAL with Dally VC ordering vs SPIN.

Reproduces the flavor of the paper's Fig. 6 in one script: on a dragonfly,
the standard deadlock-avoidance discipline forces a packet onto a specific
VC class after every global hop.  Under adversarial traffic that
serializes packets onto a fraction of the buffers.  SPIN lifts the
restriction (any packet may take any free VC) and FAvORS-NMin matches UGAL
with a *single* VC.

Uses a reduced dragonfly (p=2,a=4,h=2 -> 72 nodes) so it runs in seconds;
pass --full for the paper's 1056-node instance (slow in pure Python).

Run:
    python examples/dragonfly_hpc.py [--full]
"""

import sys

from repro.config import SimulationConfig
from repro.harness.runner import run_design

SMALL = (2, 4, 2)
FULL = (4, 8, 4)  # the paper's "1024-node" dragonfly (1056 terminals)


def main():
    dragonfly = FULL if "--full" in sys.argv else SMALL
    p, a, h = dragonfly
    nodes = (a * h + 1) * a * p
    sim = SimulationConfig(warmup_cycles=400, measure_cycles=2000,
                           drain_cycles=2500)
    pattern = "tornado"   # adversarial: every group loads the same links
    rate = 0.08

    print(f"Dragonfly p={p} a={a} h={h}: {nodes} terminals")
    print(f"{pattern} traffic at {rate} flits/node/cycle\n")

    designs = [
        ("UGAL + Dally VC ordering (3 VC)", "dfly:ugal-dally-3vc"),
        ("UGAL + SPIN, any VC       (3 VC)", "dfly:ugal-spin-3vc"),
        ("Minimal + SPIN            (1 VC)", "dfly:minimal-spin-1vc"),
        ("FAvORS-NMin + SPIN        (1 VC)", "dfly:favors-nmin-spin-1vc"),
    ]

    header = (f"{'design':36s} {'mean lat':>9s} {'throughput':>11s} "
              f"{'delivered':>10s} {'spins':>6s}")
    print(header)
    print("-" * len(header))
    for label, name in designs:
        network, point = run_design(name, pattern, rate, sim,
                                    dragonfly=dragonfly, tdd=64)
        print(f"{label:36s} {point.mean_latency:9.1f} "
              f"{point.throughput:11.3f} {point.delivery_ratio:10.3f} "
              f"{point.events.get('spins', 0):6d}")

    print("\nTakeaways (paper Sec. VI-C):")
    print(" * lifting the VC-use restriction (row 2 vs row 1) buys "
          "throughput under adversarial traffic;")
    print(" * FAvORS-NMin routes around loaded minimal paths, beating "
          "pure minimal routing at the same single-VC cost;")
    print(" * the 1-VC router costs ~53% less area and ~55% less power "
          "than the 3-VC baseline (see benchmarks/test_fig10_area.py).")


if __name__ == "__main__":
    main()
