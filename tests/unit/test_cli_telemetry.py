"""Unit tests for the ``trace`` and ``report`` CLI subcommands."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.telemetry import validate_chrome_trace


def _trace_scenario(tmp_path, capsys):
    prefix = str(tmp_path / "dl")
    code = main(["trace", "--scenario", "mesh4_square_deadlock",
                 "--output", prefix])
    out = capsys.readouterr().out
    assert code == 0
    return prefix, out


class TestTraceCommand:
    def test_scenario_trace_writes_both_files(self, tmp_path, capsys):
        prefix, out = _trace_scenario(tmp_path, capsys)
        assert "SPIN episode(s)" in out
        jsonl = (tmp_path / "dl.jsonl").read_text().splitlines()
        header = json.loads(jsonl[0])
        assert header["type"] == "header"
        assert header["scenario"] == "mesh4_square_deadlock"
        assert header["topology"] == "mesh"
        trace = json.loads((tmp_path / "dl.chrome.json").read_text())
        assert validate_chrome_trace(trace) == []

    def test_design_trace(self, tmp_path, capsys):
        prefix = str(tmp_path / "run")
        code = main(["trace", "--design", "mesh:minadaptive-spin-1vc",
                     "--rate", "0.05", "--mesh-side", "4",
                     "--warmup", "50", "--measure", "200", "--drain", "100",
                     "--packet-traces", "--output", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "hop record(s)" in out
        header = json.loads(
            (tmp_path / "run.jsonl").read_text().splitlines()[0])
        assert header["design"] == "mesh:minadaptive-spin-1vc"
        assert header["packet_traces"] is True

    def test_trace_requires_design_or_scenario(self):
        with pytest.raises(ConfigurationError):
            main(["trace"])

    def test_trace_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            main(["trace", "--scenario", "nonesuch"])

    def test_trace_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            main(["trace", "--scenario", "mesh4_square_deadlock",
                  "--interval", "0"])


class TestReportCommand:
    def test_report_prints_recovered_span(self, tmp_path, capsys):
        prefix, _ = _trace_scenario(tmp_path, capsys)
        assert main(["report", f"{prefix}.jsonl"]) == 0
        out = capsys.readouterr().out
        # The acceptance criterion: >= 1 SPIN span, nonzero detection
        # latency, and the wedge/link/heatmap sections render.
        assert "SPIN episodes:" in out
        assert "recovered" in out
        assert "detection latency: mean=12.0" in out
        assert "hot links" in out
        assert "wedge timeline" in out
        assert "occupancy heatmap" in out

    def test_report_top_links_bound(self, tmp_path, capsys):
        prefix, _ = _trace_scenario(tmp_path, capsys)
        assert main(["report", f"{prefix}.jsonl", "--top-links", "2"]) == 0
        out = capsys.readouterr().out
        assert "hot links (top 2 by flits):" in out
        with pytest.raises(ConfigurationError):
            main(["report", f"{prefix}.jsonl", "--top-links", "0"])

    def test_report_rejects_non_telemetry_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"type":"header","format":"wrong/v1"}\n')
        with pytest.raises(ConfigurationError):
            main(["report", str(path)])

    def test_run_with_telemetry_flag(self, capsys):
        code = main(["run", "--design", "mesh:minadaptive-spin-1vc",
                     "--rate", "0.05", "--mesh-side", "4",
                     "--warmup", "50", "--measure", "200",
                     "--drain", "100", "--telemetry"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry samples" in out
