"""Unit tests for escape-VC (Duato) routing."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.escape import EscapeVcRouting
from repro.topology.mesh import MeshTopology, EAST, SOUTH

from tests.conftest import make_mesh_network


def packet_to(dst, src=0):
    return Packet(src_node=src, dst_node=dst, src_router=src,
                  dst_router=dst, length=1)


@pytest.fixture
def network():
    return make_mesh_network(side=4, vcs=3, routing=EscapeVcRouting(0))


class TestConfiguration:
    def test_requires_two_vcs(self):
        with pytest.raises(ConfigurationError):
            Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                    EscapeVcRouting(0))


class TestVcDiscipline:
    def test_adaptive_grants_avoid_vc0(self, network):
        routing = network.routing
        packet = packet_to(10)
        packet.route_state["escape"] = False
        assert list(routing.vc_choices(packet, network.routers[0], EAST)) == [1, 2]

    def test_escape_grants_use_vc0_only(self, network):
        routing = network.routing
        packet = packet_to(10)
        packet.route_state["escape"] = True
        assert list(routing.vc_choices(packet, network.routers[0], EAST)) == [0]

    def test_select_marks_escape_when_adaptive_full(self, network):
        routing = network.routing
        mesh = network.topology
        packet = packet_to(mesh.router_at(2, 2))
        router = network.routers[mesh.router_at(0, 0)]
        # Fill every adaptive VC (indices 1, 2) on both productive ports.
        for port in (EAST, SOUTH):
            neighbor, inport = router.out_neighbors[port]
            for vc in neighbor.vcs_at(inport)[1:]:
                vc.reserve(packet_to(9), now=0, link_latency=1,
                           router_latency=1)
        chosen = routing.decide(router, 0, packet, now=10)
        assert packet.route_state["escape"]
        # West-first escape: no west component, so the escape port is
        # one of the productive directions (its west-first choice).
        assert chosen in (EAST, SOUTH)

    def test_select_prefers_adaptive_when_free(self, network):
        routing = network.routing
        mesh = network.topology
        packet = packet_to(mesh.router_at(2, 2))
        router = network.routers[mesh.router_at(0, 0)]
        routing.decide(router, 0, packet, now=0)
        assert not packet.route_state["escape"]


class TestWaitTargets:
    def test_blocked_packet_always_waits_on_escape_too(self, network):
        routing = network.routing
        mesh = network.topology
        packet = packet_to(mesh.router_at(2, 2))
        router = network.routers[mesh.router_at(0, 0)]
        targets = routing.wait_targets(router, packet, now=0)
        escape_vcs = [vcs for port, vcs in targets
                      if any(vc.index == 0 for vc in vcs)]
        assert escape_vcs, "escape VC missing from wait set"

    def test_no_targets_at_destination(self, network):
        routing = network.routing
        packet = packet_to(5)
        assert routing.wait_targets(network.routers[5], packet, now=0) == []


class TestEscapeSubfunctionAcyclic:
    def test_escape_cdg_is_acyclic(self, network):
        from repro.deadlock.cdg import channel_dependency_graph, is_acyclic

        escape_graph = channel_dependency_graph(
            network, routing=network.routing.escape_routing)
        assert is_acyclic(escape_graph)
