"""Fig. 9 — false positives and spins vs injection rate.

SPIN resolves deadlocks without a global view, so congestion can trigger
spins with no true deadlock (false positives).  Each executed spin is
labelled against the ground-truth wait-graph oracle.

Paper's shape: false positives are zero up to ~10x application loads; the
1-VC design has (near-)zero false positives at every rate because probes
cannot fork; spins appear only at high load.
"""

from repro.config import NetworkConfig, SpinParams
from repro.harness.tables import format_table
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from benchmarks._common import (
    DRAGONFLY,
    MESH_SIDE,
    TDD,
    run_once,
    scale,
    sim_config,
    write_result,
)

MESH_RATES = scale([0.05, 0.2], [0.05, 0.15, 0.3, 0.45],
                   [0.02, 0.1, 0.2, 0.3, 0.4, 0.5])
DFLY_RATES = scale([0.05, 0.2], [0.05, 0.15, 0.3],
                   [0.02, 0.1, 0.2, 0.3, 0.4])


def run_config(topology_kind, vcs, rate, pattern_name):
    sim = sim_config()
    if topology_kind == "mesh":
        topology = MeshTopology(MESH_SIDE, MESH_SIDE)
        cols = MESH_SIDE
    else:
        p, a, h = DRAGONFLY
        topology = DragonflyTopology(p, a, h)
        cols = None
    network = Network(topology, NetworkConfig(vcs_per_vnet=vcs),
                      MinimalAdaptiveRouting(9), spin=SpinParams(tdd=TDD),
                      seed=9)
    network.spin.collect_ground_truth = True
    stop = sim.warmup_cycles + sim.measure_cycles
    network.stats.open_window(sim.warmup_cycles, stop)
    traffic = SyntheticTraffic(
        network, make_pattern(pattern_name, topology.num_nodes, cols=cols),
        rate, seed=9, stop_at=stop, mix=PacketMix.single(1))
    simulator = Simulator()
    simulator.register(traffic)
    simulator.register(network)
    simulator.run(sim.total_cycles)
    events = network.stats.events
    return {
        "spins": events.get("spins", 0),
        "false_positives": events.get("spins_false_positive", 0),
        "true": events.get("spins_true_deadlock", 0),
        "probes": events.get("probes_sent", 0),
    }


def run_experiment():
    rows = []
    data = {}
    for vcs in (1, 3):
        for rate in MESH_RATES:
            result = run_config("mesh", vcs, rate, "uniform")
            data[("mesh", vcs, rate)] = result
            rows.append([f"mesh uniform {vcs}VC", rate, result["spins"],
                         result["false_positives"]])
    for vcs in (1, 3):
        for rate in DFLY_RATES:
            result = run_config("dragonfly", vcs, rate, "bit_complement")
            data[("dfly", vcs, rate)] = result
            rows.append([f"dfly bit-compl {vcs}VC", rate, result["spins"],
                         result["false_positives"]])
    table = format_table(
        ["Configuration", "Rate", "Spins", "False-positive spins"],
        rows,
        title="Fig. 9: spins and false positives vs injection rate")
    return table, data


def test_fig9(benchmark):
    table, data = run_once(benchmark, run_experiment)
    write_result("fig9_false_positives", table)
    # No spins (hence no false positives) at application-level load.
    low_rate = MESH_RATES[0]
    for vcs in (1, 3):
        assert data[("mesh", vcs, low_rate)]["spins"] == 0
    # High load on 1 VC produces real recoveries ...
    high = data[("mesh", 1, MESH_RATES[-1])]
    assert high["spins"] > 0
    # ... and every executed spin is classified one way or the other.
    for result in data.values():
        assert result["false_positives"] + result["true"] == result["spins"]
    # Paper: the 1-VC design has (near) zero false positives — probes never
    # fork, so a returned probe traces a genuine single dependency cycle.
    total_fp_1vc = sum(result["false_positives"]
                       for key, result in data.items() if key[1] == 1)
    total_spins_1vc = sum(result["spins"]
                          for key, result in data.items() if key[1] == 1)
    assert total_fp_1vc <= max(1, total_spins_1vc // 10)
