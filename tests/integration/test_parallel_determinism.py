"""Parallel-vs-serial determinism: ``--jobs N`` must reproduce ``--jobs 1``.

This is the load-bearing guarantee of the spec-based sweep engine: every
point is built from a self-contained picklable :class:`ExperimentSpec`, so
where the point executes (parent process or worker N) cannot change the
measurement.  The tests check both the in-memory :class:`SweepPoint`
equality and the byte-level results-file identity.
"""

import json

from repro.config import SimulationConfig
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import ExperimentSpec, latency_curve, spec_grid
from repro.stats.results import results_from_json, results_to_json

SIM = SimulationConfig(warmup_cycles=100, measure_cycles=500,
                       drain_cycles=400, deadlock_abort_cycles=600)
RATES = [0.02, 0.05, 0.08, 0.11]


def _points(runner, specs):
    results = runner.run(specs)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    return [r.point for r in results]


class TestPointIdentity:
    def test_jobs4_equals_jobs1_per_seed(self):
        """Identical SweepPoints per seed across --jobs 1 and --jobs 4."""
        specs = spec_grid(["spin_mesh"], ["uniform"], RATES, seeds=(1, 2),
                          mesh_side=4, tdd=32, sim=SIM)
        serial = _points(ParallelRunner(backend="serial"), specs)
        parallel = _points(
            ParallelRunner(max_workers=4, backend="process"), specs)
        assert serial == parallel

    def test_faulty_points_identical_across_backends(self):
        base = ExperimentSpec(design="spin_mesh", pattern="transpose",
                              injection_rate=RATES[0], mesh_side=4, tdd=32,
                              faults="sm_drop:p=0.05", fault_seed=11, sim=SIM)
        specs = base.curve(RATES[:3])
        serial = _points(ParallelRunner(backend="serial"), specs)
        parallel = _points(
            ParallelRunner(max_workers=3, backend="process"), specs)
        assert serial == parallel

    def test_latency_curve_jobs_parameter(self):
        serial_points, serial_sat = latency_curve(
            "spin_mesh", "uniform", RATES, SIM, mesh_side=4, tdd=32, jobs=1)
        par_points, par_sat = latency_curve(
            "spin_mesh", "uniform", RATES, SIM, mesh_side=4, tdd=32, jobs=4)
        assert serial_points == par_points
        assert serial_sat == par_sat


class TestFileIdentity:
    def test_results_json_byte_identical(self):
        specs = ExperimentSpec(design="spin_mesh", injection_rate=RATES[0],
                               mesh_side=4, tdd=32, sim=SIM).curve(RATES)
        meta = {"design": specs[0].design, "pattern": "uniform",
                "rates": RATES}
        serial = results_to_json(
            _points(ParallelRunner(backend="serial"), specs), meta)
        parallel = results_to_json(
            _points(ParallelRunner(max_workers=4, backend="process"), specs),
            meta)
        assert serial == parallel  # byte-for-byte

        points, meta_back = results_from_json(serial)
        assert meta_back == meta
        assert len(points) == len(RATES)

    def test_results_json_is_deterministic_serialization(self):
        specs = ExperimentSpec(design="spin_mesh", injection_rate=RATES[0],
                               mesh_side=4, tdd=32, sim=SIM).curve(RATES[:2])
        points = _points(ParallelRunner(backend="serial"), specs)
        text = results_to_json(points, {"rates": RATES[:2]})
        # Stable key order and trailing newline: re-dumping the parsed
        # document reproduces the exact bytes.
        redumped = json.dumps(json.loads(text), indent=2,
                              sort_keys=True) + "\n"
        assert text == redumped
