"""SPIN — Synchronized Progress in Interconnection Networks.

The paper's primary contribution: a distributed, topology-agnostic deadlock
*recovery* framework that resolves routing deadlocks by synchronized one-hop
movement ("spins") of the deadlocked ring, instead of avoiding cyclic buffer
dependencies with routing restrictions (Dally) or extra escape buffers
(Duato).

Components map one-to-one onto the paper's Sec. IV implementation:

* :mod:`repro.core.fsm`        — the 7-state per-router counter FSM (Fig. 4a).
* :mod:`repro.core.messages`   — probe / move / probe_move / kill_move SMs.
* :mod:`repro.core.priority`   — rotating-priority rule (epoch = 4 x tDD).
* :mod:`repro.core.controller` — per-router controller: detection counter,
  probe manager, move manager, loop buffer (Table II's modules).
* :mod:`repro.core.executor`   — the spin itself: validated, synchronized
  rotation of the frozen dependency ring.
* :mod:`repro.core.framework`  — control plane wiring: bufferless SM
  transport with priority-based dropping, controller scheduling.
"""

from repro.core.fsm import SpinState
from repro.core.messages import (
    KillMoveMessage,
    MoveMessage,
    ProbeMessage,
    ProbeMoveMessage,
    SpecialMessage,
)
from repro.core.centralized import CentralizedSpinPlane
from repro.core.framework import SpinFramework
from repro.core.proactive import ProactiveSpinPlane

__all__ = [
    "CentralizedSpinPlane",
    "ProactiveSpinPlane",
    "SpinState",
    "SpecialMessage",
    "ProbeMessage",
    "MoveMessage",
    "ProbeMoveMessage",
    "KillMoveMessage",
    "SpinFramework",
]
