"""Unit tests for the runtime invariant oracle (repro.verify)."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.core.fsm import SpinState
from repro.errors import ConfigurationError, InvariantViolation
from repro.network.network import Network
from repro.routing.dor import DimensionOrderRouting
from repro.sim.engine import Simulator
from repro.stats.sweep import SweepPoint, simulate_point
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern
from repro.verify import INVARIANTS, InvariantOracle, OracleConfig
from repro.verify.invariants import iter_resident
from repro.verify.oracle import oracle_from_env

from tests.conftest import (
    craft_square_deadlock,
    make_mesh_network,
    simulate,
)


def _traffic(network, rate=0.2, stop_at=400, seed=1):
    pattern = make_pattern("uniform", network.topology.num_nodes, 4)
    return SyntheticTraffic(network, pattern, rate, seed=seed,
                            stop_at=stop_at)


def run_with_oracle(network, cycles=300, config=None, rate=0.2):
    simulator = Simulator()
    simulator.register(_traffic(network, rate=rate, stop_at=cycles - 50))
    simulator.register(network)
    oracle = InvariantOracle(network, config or OracleConfig(mode="raise"))
    oracle.attach(simulator)
    simulator.run(cycles)
    return oracle


def families(violations):
    return {violation.invariant for violation in violations}


# ----------------------------------------------------------------------
# Engine observer mechanics
# ----------------------------------------------------------------------
class _Recorder:
    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def phase_control(self, cycle):
        self.log.append((self.tag, "control", cycle))

    def phase_collect(self, cycle):
        self.log.append((self.tag, "collect", cycle))


def test_observers_run_after_all_components_each_phase():
    simulator = Simulator()
    log = []
    observer = _Recorder(log, "observer")
    simulator.register_observer(observer)  # registered FIRST on purpose
    simulator.register(_Recorder(log, "a"))
    simulator.register(_Recorder(log, "b"))
    simulator.step()
    assert log == [
        ("a", "control", 0), ("b", "control", 0), ("observer", "control", 0),
        ("a", "collect", 0), ("b", "collect", 0), ("observer", "collect", 0),
    ]


def test_registering_observer_mid_run_rebuilds_schedule():
    simulator = Simulator()
    log = []
    simulator.register(_Recorder(log, "a"))
    simulator.step()
    simulator.register_observer(_Recorder(log, "late"))
    simulator.step()
    assert ("late", "collect", 1) in log
    assert ("late", "collect", 0) not in log


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_clean_run_has_no_violations(mesh4_spin):
    oracle = run_with_oracle(mesh4_spin)
    assert oracle.violation_count == 0
    assert oracle.violations == []


def test_crafted_deadlock_is_not_a_false_positive(mesh4):
    # A genuine deadlock on a no-recovery network must not trip anything:
    # deadlock persistence is only enforced when a theory promises freedom.
    craft_square_deadlock(mesh4)
    oracle = InvariantOracle(mesh4, OracleConfig(mode="raise"))
    assert oracle.deadlock_bound is None
    simulator = Simulator()
    simulator.register(mesh4)
    oracle.attach(simulator)
    simulator.run(200)
    assert oracle.violation_count == 0


def test_iter_resident_sees_planted_packets(mesh4):
    packets = craft_square_deadlock(mesh4)
    seen = {uid for uid, _, _ in iter_resident(mesh4)}
    assert {packet.uid for packet in packets} <= seen


# ----------------------------------------------------------------------
# Config and policy
# ----------------------------------------------------------------------
def test_config_rejects_bad_mode_interval_and_checks():
    with pytest.raises(ConfigurationError):
        OracleConfig(mode="explode")
    with pytest.raises(ConfigurationError):
        OracleConfig(check_interval=0)
    with pytest.raises(ConfigurationError):
        OracleConfig(checks={"not_an_invariant"})


def test_double_attach_rejected(mesh4):
    oracle = InvariantOracle(mesh4)
    simulator = Simulator()
    oracle.attach(simulator)
    with pytest.raises(ConfigurationError):
        oracle.attach(simulator)


def test_raise_mode_raises_on_corruption(mesh4):
    craft_square_deadlock(mesh4)
    mesh4.routers[5].active_vcs += 1  # drop a credit
    oracle = InvariantOracle(mesh4, OracleConfig(mode="raise"))
    simulator = Simulator()
    simulator.register(mesh4)
    oracle.attach(simulator)
    with pytest.raises(InvariantViolation) as excinfo:
        simulator.run(2)
    assert excinfo.value.invariant == "credit_conservation"
    assert excinfo.value.context["router"] == 5


def test_record_mode_counts_and_dedups(mesh4):
    craft_square_deadlock(mesh4)
    mesh4.routers[5].active_vcs += 1
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    simulator = Simulator()
    simulator.register(mesh4)
    oracle.attach(simulator)
    simulator.run(10)
    # every cycle re-detects the same site: counted 10x, recorded once
    assert oracle.violation_count == 10
    assert len(oracle.violations) == 1
    assert mesh4.stats.events["invariant_violations"] == 10
    assert mesh4.stats.events["violation_credit_conservation"] == 10


def test_max_violations_saturates_checking(mesh4):
    craft_square_deadlock(mesh4)
    for router in mesh4.routers:
        router.active_vcs += 1
    oracle = InvariantOracle(
        mesh4, OracleConfig(mode="record", max_violations=3))
    simulator = Simulator()
    simulator.register(mesh4)
    oracle.attach(simulator)
    simulator.run(50)
    assert len(oracle.violations) <= 3 + len(mesh4.routers)
    assert mesh4.stats.events["oracle_saturated"] >= 1
    total_after = oracle.violation_count
    simulator.run(50)
    assert oracle.violation_count == total_after  # checking stopped


def test_checks_subset_restricts_families(mesh4):
    craft_square_deadlock(mesh4)
    mesh4.routers[5].active_vcs += 1          # credit_conservation bait
    oracle = InvariantOracle(
        mesh4, OracleConfig(mode="record", checks={"vc_occupancy"}))
    found = oracle.check_now()
    assert found == []  # the credit corruption family is disabled


# ----------------------------------------------------------------------
# check_now and stateless families
# ----------------------------------------------------------------------
def test_check_now_detects_credit_drift(mesh4):
    craft_square_deadlock(mesh4)
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    mesh4.routers[5].active_vcs -= 1
    assert families(oracle.check_now()) == {"credit_conservation"}


def test_check_now_detects_length_out_of_bounds(mesh4):
    packets = craft_square_deadlock(mesh4)
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    packets[0].length = mesh4.config.buffer_depth + 1
    assert families(oracle.check_now()) == {"vc_occupancy"}


def test_check_now_detects_overfilled_vc_timing(mesh4):
    craft_square_deadlock(mesh4)
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    router, inport, vc = next(iter(mesh4.occupied_vcs()))
    vc.tail_arrival = vc.head_arrival + vc.packet.length  # one extra flit
    assert families(oracle.check_now()) == {"vc_occupancy"}


def test_check_now_detects_link_over_occupancy(mesh4):
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    link = next(iter(mesh4.links.values()))
    link.busy_until = mesh4.now + mesh4.config.max_packet_length + 7
    assert families(oracle.check_now()) == {"link_accounting"}


def test_check_now_detects_negative_link_counter(mesh4):
    oracle = InvariantOracle(mesh4, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    next(iter(mesh4.links.values())).flit_cycles = -2
    assert families(oracle.check_now()) == {"link_accounting"}


# ----------------------------------------------------------------------
# Delivery hooks
# ----------------------------------------------------------------------
def _delivered_packet(network):
    """Run traffic until at least one packet was delivered; return one."""
    simulator = Simulator()
    traffic = _traffic(network, rate=0.1, stop_at=100)
    simulator.register(traffic)
    simulator.register(network)
    oracle = InvariantOracle(network, OracleConfig(mode="record",
                                                  journal=True))
    oracle.attach(simulator)
    simulator.run(200)
    assert oracle.violation_count == 0
    assert oracle.delivered_signatures
    return oracle


def test_duplicate_delivery_detected(mesh4):
    oracle = _delivered_packet(mesh4)
    from repro.network.packet import Packet

    packet = Packet(src_node=0, dst_node=3, src_router=0, dst_router=3,
                    length=1)
    port = mesh4.eject_port_for(3)
    mesh4.deliver(packet, 3, port, mesh4.now)       # first: fine
    mesh4.deliver(packet, 3, port, mesh4.now)       # second: duplicate
    assert families(oracle.violations) == {"duplicate_delivery"}


def test_misdelivery_detected(mesh4):
    oracle = _delivered_packet(mesh4)
    from repro.network.packet import Packet

    packet = Packet(src_node=0, dst_node=3, src_router=0, dst_router=3,
                    length=1)
    wrong_port = mesh4.eject_port_for(7)
    mesh4.deliver(packet, 7, wrong_port, mesh4.now)  # wrong NIC
    assert "misdelivery" in families(oracle.violations)


def test_journal_matches_stats_delivery_count(mesh4):
    oracle = _delivered_packet(mesh4)
    assert len(oracle.delivered_signatures) == mesh4.stats.packets_delivered


# ----------------------------------------------------------------------
# FSM families
# ----------------------------------------------------------------------
def test_fsm_context_detects_dd_without_pointer(mesh4_spin):
    simulate(mesh4_spin, 5, _traffic(mesh4_spin, stop_at=5))
    oracle = InvariantOracle(mesh4_spin, OracleConfig(mode="record"))
    oracle.check_now(cycle=mesh4_spin.now)
    controller = mesh4_spin.spin.controllers[0]
    controller.state = SpinState.DD
    controller.pointer = None
    controller.deadline = None
    assert families(oracle.check_now(cycle=mesh4_spin.now + 1)) == {
        "fsm_context"}


def test_fsm_transition_detects_off_to_move(mesh4_spin):
    oracle = InvariantOracle(mesh4_spin, OracleConfig(mode="record"))
    oracle.check_now(cycle=0)
    controller = mesh4_spin.spin.controllers[0]
    assert controller.state is SpinState.OFF
    controller.state = SpinState.MOVE
    controller.loop_path = (1, 2)     # plausible context so only the
    controller.deadline = 100         # transition itself is illegal
    assert families(oracle.check_now(cycle=1)) == {"fsm_transition"}


def test_frozen_vc_without_metadata_detected(mesh4_spin):
    craft_square_deadlock(mesh4_spin)
    oracle = InvariantOracle(mesh4_spin, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    router, inport, vc = next(iter(mesh4_spin.occupied_vcs()))
    vc.frozen = True  # freeze_* fields left at their -1 defaults
    assert families(oracle.check_now()) == {"freeze_legality"}


def test_duplicate_freeze_token_detected(mesh4_spin):
    craft_square_deadlock(mesh4_spin)
    oracle = InvariantOracle(mesh4_spin, OracleConfig(mode="record"))
    assert oracle.check_now() == []
    occupied = list(mesh4_spin.occupied_vcs())[:2]
    for _, _, vc in occupied:
        vc.frozen = True
        vc.freeze_outport = 1
        vc.freeze_source = occupied[0][0].id
        vc.freeze_spin_cycle = mesh4_spin.now + 50
        vc.freeze_path_index = 1      # duplicated index within one token
    assert families(oracle.check_now()) == {"freeze_token_uniqueness"}


# ----------------------------------------------------------------------
# Environment gate and sweep wiring
# ----------------------------------------------------------------------
def test_oracle_from_env(monkeypatch, mesh4):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert oracle_from_env(mesh4) is None
    monkeypatch.setenv("REPRO_VERIFY", "record")
    assert oracle_from_env(mesh4).config.mode == "record"
    monkeypatch.setenv("REPRO_VERIFY", "strict")
    assert oracle_from_env(mesh4).config.mode == "raise"
    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert oracle_from_env(mesh4) is None


def test_simulate_point_env_gate_counts_violations(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "record")
    network = make_mesh_network()
    # corrupt before the run so the env-attached oracle must notice
    network.routers[3].active_vcs += 1
    sim = SimulationConfig(warmup_cycles=10, measure_cycles=20,
                           drain_cycles=10)
    point = simulate_point(network, _traffic(network, stop_at=30), sim)
    assert point.invariant_violations > 0
    assert point.events["violation_credit_conservation"] > 0


def test_simulate_point_verify_flag_raises_on_corruption():
    network = make_mesh_network()
    network.routers[3].active_vcs += 1
    sim = SimulationConfig(warmup_cycles=10, measure_cycles=20,
                           drain_cycles=10)
    with pytest.raises(InvariantViolation):
        simulate_point(network, _traffic(network, stop_at=30), sim,
                       verify=True)


def test_simulate_point_rejects_foreign_oracle():
    network = make_mesh_network()
    other = make_mesh_network()
    oracle = InvariantOracle(other)
    sim = SimulationConfig(warmup_cycles=5, measure_cycles=5,
                           drain_cycles=5)
    with pytest.raises(ConfigurationError):
        simulate_point(network, _traffic(network, stop_at=10), sim,
                       oracle=oracle)


def test_sweep_point_serializes_violations():
    point = SweepPoint(injection_rate=0.1, mean_latency=10.0,
                       p99_latency=20.0, throughput=0.1,
                       delivery_ratio=1.0, wedged=False, delivered=5,
                       invariant_violations=7)
    data = point.to_dict()
    assert data["invariant_violations"] == 7
    assert SweepPoint.from_dict(data) == point
    # documents absent in pre-oracle results files: defaults to 0
    del data["invariant_violations"]
    assert SweepPoint.from_dict(data).invariant_violations == 0


def test_invariant_catalog_names_are_documented():
    for name, description in INVARIANTS.items():
        assert name and description
