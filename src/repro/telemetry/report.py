"""Trace analysis: the ``repro-sim report`` backend.

:class:`TraceReport` loads one ``repro.telemetry/v1`` JSONL log
(:func:`repro.telemetry.export.read_jsonl`) and derives the summaries the
CLI prints: SPIN episode tables with detection/recovery latency
distributions (reusing :class:`repro.stats.collectors.LatencySummary`, so
percentiles follow the same nearest-rank rule as simulation latencies),
top-k hot links by flit traffic, a wedge timeline (sampled intervals where
traffic was in flight but nothing was delivered), and an ASCII occupancy
heatmap for mesh designs.

Everything operates on the recorded log alone — reports are reproducible
from the artifact without rerunning the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.stats.collectors import LatencySummary
from repro.telemetry.export import read_jsonl
from repro.telemetry.spans import SpinSpan

#: Shade ramp for the occupancy heatmap (low -> high).
HEAT_RAMP = " .:-=+*#%@"


class TraceReport:
    """Derived views over one recorded telemetry log."""

    def __init__(self, records: List[Dict[str, object]]) -> None:
        self.records = records
        self.header: Dict[str, object] = records[0]
        self.samples = [r for r in records if r.get("type") == "sample"]
        self.spans = [SpinSpan.from_dict(r) for r in records
                      if r.get("type") == "span"]
        self.summary: Dict[str, object] = next(
            (r for r in records if r.get("type") == "summary"), {})
        self.hop_count = sum(1 for r in records
                             if r.get("type") in ("hop", "deliver"))

    @classmethod
    def load(cls, path: str) -> "TraceReport":
        """Read and index a ``repro.telemetry/v1`` log."""
        return cls(read_jsonl(path))

    # ------------------------------------------------------------------
    # Span analytics
    # ------------------------------------------------------------------
    @property
    def episodes(self) -> List[SpinSpan]:
        """The ``spin_episode`` spans, in close order."""
        return [span for span in self.spans if span.kind == "spin_episode"]

    @property
    def frozen_spans(self) -> List[SpinSpan]:
        """The FROZEN residency spans, in close order."""
        return [span for span in self.spans if span.kind == "frozen"]

    def outcome_counts(self) -> Dict[str, int]:
        """Episode count per outcome (open episodes under ``"open"``)."""
        counts: Dict[str, int] = {}
        for span in self.episodes:
            outcome = span.outcome or "open"
            counts[outcome] = counts.get(outcome, 0) + 1
        return dict(sorted(counts.items()))

    def detection_latencies(self) -> LatencySummary:
        """Distribution of per-episode detection latencies."""
        return LatencySummary.from_samples(
            [span.detection_latency for span in self.episodes])

    def recovery_latencies(self) -> LatencySummary:
        """Distribution of per-episode recovery latencies (closed only)."""
        return LatencySummary.from_samples(
            [span.recovery_latency for span in self.episodes
             if span.recovery_latency is not None])

    def total_spins(self) -> int:
        """Synchronized spins executed across all episodes."""
        return sum(len(span.spin_cycles) for span in self.episodes)

    # ------------------------------------------------------------------
    # Link and occupancy analytics
    # ------------------------------------------------------------------
    def link_totals(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """``(router, port) -> (flits, sm_flits)`` summed over samples."""
        totals: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for sample in self.samples:
            for router, port, flits, sms in sample.get("links", ()):
                key = (router, port)
                old = totals.get(key, (0, 0))
                totals[key] = (old[0] + flits, old[1] + sms)
        return totals

    def hot_links(self, k: int = 8) -> List[Tuple[Tuple[int, int], int, int]]:
        """Top-``k`` links by total flit traffic: ``(key, flits, sms)``.

        Ties break on the link key so the ranking is deterministic.
        """
        totals = self.link_totals()
        ranked = sorted(totals.items(),
                        key=lambda item: (-item[1][0], item[0]))
        return [(key, flits, sms) for key, (flits, sms) in ranked[:k]]

    def occupancy_totals(self) -> List[float]:
        """Mean sampled VC occupancy per router (empty without samples)."""
        if not self.samples:
            return []
        sums: Optional[List[float]] = None
        for sample in self.samples:
            occupancy = sample.get("occupancy") or []
            if sums is None:
                sums = [0.0] * len(occupancy)
            for index, value in enumerate(occupancy):
                sums[index] += value
        if not sums:
            return []
        count = len(self.samples)
        return [total / count for total in sums]

    def wedge_timeline(self) -> List[Tuple[int, int]]:
        """Sampled ``[start, end]`` cycle intervals of zero-progress.

        An interval covers consecutive samples where packets were in
        flight but none were delivered since the previous sample — the
        observable signature of a wedged (or recovering) network at the
        sampling resolution.
        """
        intervals: List[Tuple[int, int]] = []
        open_start: Optional[int] = None
        last_cycle = 0
        for sample in self.samples:
            cycle = int(sample["cycle"])
            stuck = (cycle > 0
                     and sample.get("delivered", 0) == 0
                     and sample.get("in_flight", 0) > 0)
            if stuck and open_start is None:
                open_start = cycle
            elif not stuck and open_start is not None:
                intervals.append((open_start, last_cycle))
                open_start = None
            last_cycle = cycle
        if open_start is not None:
            intervals.append((open_start, last_cycle))
        return intervals

    def heatmap(self, width: int = 0) -> str:
        """ASCII per-router occupancy heatmap.

        Mesh designs (header carries ``topology == "mesh"`` and
        ``mesh_side``) render as a 2-D grid in row-major router order;
        anything else renders as one shade strip.  Each cell maps the
        router's mean occupancy onto :data:`HEAT_RAMP`, normalized to the
        hottest router.
        """
        means = self.occupancy_totals()
        if not means:
            return "(no samples)"
        hottest = max(means)
        if width <= 0:
            if (self.header.get("topology") == "mesh"
                    and self.header.get("mesh_side")):
                width = int(self.header["mesh_side"])
            else:
                width = len(means)
        shades = []
        for value in means:
            if hottest <= 0:
                shades.append(HEAT_RAMP[0])
            else:
                index = int(round(value / hottest * (len(HEAT_RAMP) - 1)))
                shades.append(HEAT_RAMP[index])
        rows = ["".join(shades[offset:offset + width])
                for offset in range(0, len(shades), width)]
        return "\n".join(rows)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, top_links: int = 8) -> str:
        """The full human-readable report ``repro-sim report`` prints."""
        lines: List[str] = []
        header = self.header
        describe = ", ".join(
            f"{key}={header[key]}"
            for key in ("design", "pattern", "injection_rate", "seed",
                        "cycles")
            if key in header)
        lines.append(f"telemetry report ({describe})" if describe
                     else "telemetry report")
        lines.append(f"  samples={len(self.samples)} "
                     f"spans={len(self.spans)} hops={self.hop_count}")

        episodes = self.episodes
        lines.append("")
        lines.append(f"SPIN episodes: {len(episodes)} "
                     f"(frozen residencies: {len(self.frozen_spans)}, "
                     f"spins executed: {self.total_spins()})")
        if episodes:
            outcomes = " ".join(f"{name}={count}" for name, count
                                in self.outcome_counts().items())
            lines.append(f"  outcomes: {outcomes}")
            detect = self.detection_latencies()
            lines.append(
                f"  detection latency: mean={detect.mean:.1f} "
                f"p50={detect.p50:.0f} p99={detect.p99:.0f} "
                f"max={detect.maximum} cycles")
            recover = self.recovery_latencies()
            if recover.count:
                lines.append(
                    f"  recovery latency:  mean={recover.mean:.1f} "
                    f"p50={recover.p50:.0f} p99={recover.p99:.0f} "
                    f"max={recover.maximum} cycles")
            lines.append("  router  vnet  start..end      detect  recover"
                         "  spins  outcome")
            for span in episodes:
                end = span.end_cycle if span.end_cycle is not None else "-"
                recovery = (span.recovery_latency
                            if span.recovery_latency is not None else "-")
                lines.append(
                    f"  {span.router:>6}  {span.vnet:>4}  "
                    f"{span.start_cycle:>6}..{end:<6}  "
                    f"{span.detection_latency:>6}  {recovery:>7}  "
                    f"{len(span.spin_cycles):>5}  {span.outcome or 'open'}")

        hot = self.hot_links(top_links)
        lines.append("")
        if hot:
            lines.append(f"hot links (top {len(hot)} by flits):")
            lines.append("  router  port    flits  sm_flits")
            for (router, port), flits, sms in hot:
                lines.append(f"  {router:>6}  {port:>4}  {flits:>7}  "
                             f"{sms:>8}")
        else:
            lines.append("hot links: none recorded")

        wedges = self.wedge_timeline()
        lines.append("")
        if wedges:
            lines.append(f"wedge timeline ({len(wedges)} zero-progress "
                         "interval(s), sampled):")
            for start, end in wedges:
                lines.append(f"  cycles {start}..{end}")
        else:
            lines.append("wedge timeline: no zero-progress intervals")

        lines.append("")
        lines.append("occupancy heatmap (mean VCs per router, "
                     f"ramp '{HEAT_RAMP}'):")
        for row in self.heatmap().splitlines():
            lines.append(f"  |{row}|")
        return "\n".join(lines)
