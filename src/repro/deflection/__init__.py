"""Deflection (hot-potato) routing — the fourth framework of Table I.

A BLESS-style bufferless network: every flit arriving at a router is
assigned to *some* output port every cycle; on contention the oldest flit
(rank by injection time, then id) gets a productive port and the rest are
deflected.  Deadlock freedom is inherent (nothing ever waits for a buffer);
the costs the paper's Table I lists — injection restrictions (a node cannot
inject unless an output is free), possible livelock (addressed here by
oldest-first priority, which guarantees the oldest flit always makes
progress), and misrouting energy — are all observable in this model.

Implemented as a self-contained single-flit simulator sharing the topology
and pattern substrates, since a bufferless datapath has little in common
with the VC-based router model.
"""

from repro.deflection.network import DeflectionNetwork

__all__ = ["DeflectionNetwork"]
