"""Checkable designs: abstract loop + matching concrete fabric.

A :class:`Design` ties one abstract model configuration (loop size,
detection threshold, per-action cycle costs, the theory's persistence
bound) to a concrete network builder that plants the *same* dependency
loop on a real fabric.  The construction is uniform: each loop router
holds one fully-arrived packet, received from its loop predecessor,
destined its loop **successor** — one hop away, so under minimal routing
the packet's unique productive port is the next loop edge, whose
downstream VC holds the next packet.  A textbook single-cycle buffer
deadlock (paper Fig. 2) whose control plane is exactly the abstract
model's single loop:

* ``mesh2x2`` / ``mesh2x3`` — the mesh perimeter traversed clockwise;
* ``ring3`` / ``ring4``     — a unidirectional ring (forward-only
  ``min_hops``, so the clockwise port is uniquely minimal).

The concrete builders feed the golden scenarios
(:mod:`repro.verify.golden`), the counterexample replay pipeline
(:mod:`repro.verify.model.scenario`) and the soundness cross-check
(tests/property/test_prop_model_soundness.py); the abstract side feeds
``cli model-check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.deadlock.waitgraph import spin_persistence_bound
from repro.verify.model.properties import ActionWeights
from repro.verify.model.transitions import ModelConfig

#: (router id resolver args, inport) pairs are built lazily so importing
#: this module never constructs networks.
LoopPlan = List[Tuple[int, int]]


@dataclass(frozen=True)
class Design:
    """One named, model-checkable fabric."""

    name: str
    description: str
    topology: str
    loop_size: int
    tdd: int
    link_latency: int = 1
    router_latency: int = 1
    sync_slack: int = 0
    probe_path_factor: int = 2

    # -- abstract side --------------------------------------------------
    def model_config(self, **overrides) -> ModelConfig:
        overrides.setdefault("loop_size", self.loop_size)
        return ModelConfig(**overrides)

    @property
    def hop_cost(self) -> int:
        """Worst-case cycles one SM hop costs on this fabric."""
        return self.link_latency + self.router_latency

    @property
    def loop_delay(self) -> int:
        """Worst-case SM round trip along the planted loop."""
        return self.loop_size * self.hop_cost

    @property
    def sm_rtt_bound(self) -> int:
        """``SpinFramework.sm_rtt_bound`` for this fabric: the loop's
        routers all sit on the planted loop, so ``num_routers ==
        loop_size``."""
        return (self.probe_path_factor * self.loop_size) * self.hop_cost

    def weights(self) -> ActionWeights:
        return ActionWeights(
            detect=self.tdd,
            deliver=self.hop_cost,
            watchdog=self.sm_rtt_bound,
            spin=2 * self.loop_delay + self.sync_slack,
        )

    def persistence_bound(self) -> int:
        return spin_persistence_bound(self.tdd, self.sm_rtt_bound)

    # -- concrete side --------------------------------------------------
    def spin_params(self):
        from repro.config import SpinParams

        return SpinParams(tdd=self.tdd, sync_slack=self.sync_slack,
                          probe_path_factor=self.probe_path_factor)

    def build_network(self, seed: int = 3):
        """A fresh network with the design's loop deadlock planted."""
        builder = _BUILDERS[self.topology]
        return builder(self, seed)

    def loop_plan(self, network) -> List[Tuple[int, int, int]]:
        """``(router, inport, dst_router)`` triples in loop order."""
        plan = _PLANS[self.topology](network)
        return [(router, inport, plan[(k + 1) % len(plan)][0])
                for k, (router, inport) in enumerate(plan)]


# ----------------------------------------------------------------------
# Concrete builders
# ----------------------------------------------------------------------
def _plant_loop(network, plan: List[Tuple[int, int, int]]) -> None:
    from repro.network.packet import Packet

    for k, (router_id, inport, dst) in enumerate(plan):
        prev = plan[k - 1][0]
        packet = Packet(src_node=prev, dst_node=dst, src_router=prev,
                        dst_router=dst, length=1, create_cycle=0)
        packet.inject_cycle = 0
        router = network.routers[router_id]
        vc = router.inports[inport][0]
        vc.free_at = min(vc.free_at, 0)
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = 0
        vc.ready_at = 0
        vc.tail_arrival = 0
        network.note_vc_reserved(router)
        network.stats.record_creation(packet, 0)


def _ring_plan(network) -> LoopPlan:
    from repro.topology.ring import COUNTER_CLOCKWISE

    return [(rid, COUNTER_CLOCKWISE)
            for rid in range(network.topology.num_routers)]


def _mesh_perimeter_plan(network) -> LoopPlan:
    """The mesh perimeter clockwise; inport = side the previous loop
    router's packet arrived through."""
    from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

    topology = network.topology
    cols, rows = topology.cols, topology.rows
    ring: List[Tuple[int, int]] = []           # (x, y) clockwise
    for x in range(cols):
        ring.append((x, 0))
    for y in range(1, rows):
        ring.append((cols - 1, y))
    for x in range(cols - 2, -1, -1):
        ring.append((x, rows - 1))
    for y in range(rows - 2, 0, -1):
        ring.append((0, y))
    plan: LoopPlan = []
    for k, (x, y) in enumerate(ring):
        px, py = ring[(k - 1) % len(ring)]
        if px < x:
            inport = WEST          # previous hop traveled east
        elif px > x:
            inport = EAST
        elif py < y:
            inport = NORTH         # previous hop traveled south (+y)
        else:
            inport = SOUTH
        plan.append((topology.router_at(x, y), inport))
    return plan


def _build_mesh(design: Design, seed: int):
    from repro.config import NetworkConfig
    from repro.network.network import Network
    from repro.routing.adaptive import MinimalAdaptiveRouting
    from repro.topology.mesh import MeshTopology

    cols, rows = {"mesh2x2": (2, 2), "mesh2x3": (2, 3)}[design.name]
    network = Network(
        topology=MeshTopology(cols, rows,
                              link_latency=design.link_latency),
        config=NetworkConfig(vcs_per_vnet=1,
                             router_latency=design.router_latency),
        routing=MinimalAdaptiveRouting(seed),
        spin=design.spin_params(),
        seed=seed,
    )
    _plant_loop(network, design.loop_plan(network))
    return network


def _build_ring(design: Design, seed: int):
    from repro.config import NetworkConfig
    from repro.network.network import Network
    from repro.routing.adaptive import MinimalAdaptiveRouting
    from repro.topology.ring import RingTopology

    network = Network(
        topology=RingTopology(design.loop_size,
                              link_latency=design.link_latency,
                              bidirectional=False),
        config=NetworkConfig(vcs_per_vnet=1,
                             router_latency=design.router_latency),
        routing=MinimalAdaptiveRouting(seed),
        spin=design.spin_params(),
        seed=seed,
    )
    _plant_loop(network, design.loop_plan(network))
    return network


_BUILDERS: Dict[str, Callable] = {
    "mesh": _build_mesh,
    "ring": _build_ring,
}
_PLANS: Dict[str, Callable] = {
    "mesh": _mesh_perimeter_plan,
    "ring": _ring_plan,
}


DESIGNS: Dict[str, Design] = {
    design.name: design
    for design in (
        Design(
            name="mesh2x2",
            description="2x2 mesh, 4-router perimeter loop (the smallest "
                        "mesh deadlock)",
            topology="mesh", loop_size=4, tdd=8,
        ),
        Design(
            name="mesh2x3",
            description="2x3 mesh, 6-router perimeter loop",
            topology="mesh", loop_size=6, tdd=8,
        ),
        Design(
            name="ring3",
            description="3-router unidirectional ring (the smallest "
                        "possible dependency cycle)",
            topology="ring", loop_size=3, tdd=8,
        ),
        Design(
            name="ring4",
            description="4-router unidirectional ring",
            topology="ring", loop_size=4, tdd=8,
        ),
    )
}
