#!/usr/bin/env python
"""Application-level energy-delay product: Escape-VC vs SPIN (paper Fig. 8a).

Runs coherence-style PARSEC proxy traffic (requests on vnet 0 answered by
replies — see repro.traffic.parsec for the substitution rationale) over two
mesh router configurations:

  * EscapeVC, 3 VCs/vnet   (Duato avoidance — the stronger mesh baseline)
  * MinAdaptive + SPIN, 2 VCs/vnet

and reports network EDP normalized to EscapeVC.  At application loads the
networks perform identically; SPIN's win is doing it with one less VC per
port — less area to leak and fewer buffers to clock.

Run:
    python examples/parsec_edp.py
"""

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.network.network import Network
from repro.power.model import RouterSpec, network_edp
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.escape import EscapeVcRouting
from repro.sim import create_engine
from repro.topology.mesh import MeshTopology
from repro.traffic.parsec import PARSEC_PROFILES, ParsecWorkload

SIDE = 8
VNETS = 3
SIM = SimulationConfig(warmup_cycles=500, measure_cycles=4000,
                       drain_cycles=2000)
BENCHMARKS = ["blackscholes", "bodytrack", "canneal", "dedup",
              "fluidanimate", "streamcluster", "swaptions", "x264"]


def run_one(benchmark, routing_factory, vcs, spin):
    network = Network(MeshTopology(SIDE, SIDE),
                      NetworkConfig(vcs_per_vnet=vcs, num_vnets=VNETS),
                      routing_factory(), spin=spin, seed=3)
    network.stats.open_window(SIM.warmup_cycles,
                              SIM.warmup_cycles + SIM.measure_cycles)
    workload = ParsecWorkload(network, PARSEC_PROFILES[benchmark], seed=3,
                              stop_at=SIM.warmup_cycles + SIM.measure_cycles)
    # create_engine() honours REPRO_ENGINE, so e.g. REPRO_ENGINE=fast runs
    # this example under the fast core with identical results.
    simulator = create_engine()
    simulator.register(workload)
    simulator.register(network)
    simulator.run(SIM.total_cycles)
    spec = RouterSpec(radix=5, vcs=vcs * VNETS)
    return network_edp(network, spec, cycles=SIM.total_cycles)


def main():
    print(f"PARSEC proxy traffic on an {SIDE}x{SIDE} mesh "
          f"({VNETS} vnets, directory-style request/reply)\n")
    print(f"{'benchmark':14s} {'EscapeVC 3VC':>13s} "
          f"{'SPIN 2VC':>13s} {'normalized EDP':>15s}")
    print("-" * 58)
    ratios = []
    for benchmark in BENCHMARKS:
        escape = run_one(benchmark, lambda: EscapeVcRouting(3), 3, None)
        spin = run_one(benchmark, lambda: MinimalAdaptiveRouting(3), 2,
                       SpinParams(tdd=128))
        ratio = spin / escape
        ratios.append(ratio)
        print(f"{benchmark:14s} {escape:13.3e} {spin:13.3e} {ratio:15.3f}")
    mean = sum(ratios) / len(ratios)
    print("-" * 58)
    print(f"{'geomean-ish avg':14s} {'':13s} {'':13s} {mean:15.3f}")
    print(f"\nMinAdaptive 2VC + SPIN achieves ~{100 * (1 - mean):.0f}% "
          f"lower network EDP than EscapeVC 3VC at identical application "
          f"performance (paper: 18%, Fig. 8a).")


if __name__ == "__main__":
    main()
