"""Unit tests for the chaos harness: grammar, determinism, torn tails."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.chaos import (
    CHAOS_ENV,
    ChaosPolicy,
    ChaosRule,
    chaos_from_env,
    parse_chaos_spec,
    tear_journal_tail,
)


class TestRuleValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="chaos mode"):
            ChaosRule(mode="explode")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosRule(mode="crash", p=1.5)
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosRule(mode="crash", p=-0.1)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError, match="attempt"):
            ChaosRule(mode="crash", attempt=-1)


class TestGrammar:
    def test_single_mode(self):
        policy = parse_chaos_spec("crash")
        assert policy.rules == (ChaosRule(mode="crash", p=1.0, attempt=0),)
        assert policy.seed == 0

    def test_probability_and_seed(self):
        policy = parse_chaos_spec("crash:p=0.5,seed=7")
        assert policy.rules[0].p == 0.5
        assert policy.seed == 7

    def test_attempt_targeting(self):
        policy = parse_chaos_spec("fail@1:p=0.25")
        assert policy.rules[0].attempt == 1
        assert policy.rules[0].p == 0.25

    def test_every_attempt_wildcard(self):
        policy = parse_chaos_spec("crash@*")
        assert policy.rules[0].attempt is None

    def test_hang_seconds_setting(self):
        policy = parse_chaos_spec("hang:p=1.0,hang=2.5")
        assert policy.hang_seconds == 2.5
        assert policy.rules[0].mode == "hang"

    def test_multiple_rules(self):
        policy = parse_chaos_spec("crash:p=0.5,fail@1,seed=3")
        assert len(policy.rules) == 2
        assert [r.mode for r in policy.rules] == ["crash", "fail"]

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no rules"):
            parse_chaos_spec("seed=3")

    def test_bad_tokens_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            parse_chaos_spec("crash,seed=x")
        with pytest.raises(ConfigurationError, match="p=0.5"):
            parse_chaos_spec("crash:q=0.5")
        with pytest.raises(ConfigurationError, match="attempt"):
            parse_chaos_spec("crash@x")


class TestDeterminism:
    def test_decide_is_pure(self):
        policy = parse_chaos_spec("crash:p=0.5,seed=11")
        decisions = [policy.decide(f"key{i}", 0) for i in range(64)]
        assert decisions == [policy.decide(f"key{i}", 0) for i in range(64)]

    def test_probability_half_hits_some_not_all(self):
        policy = parse_chaos_spec("crash:p=0.5,seed=11")
        fired = [policy.decide(f"key{i}", 0) for i in range(64)]
        assert any(d == "crash" for d in fired)
        assert any(d is None for d in fired)

    def test_seed_changes_the_pattern(self):
        a = parse_chaos_spec("crash:p=0.5,seed=1")
        b = parse_chaos_spec("crash:p=0.5,seed=2")
        keys = [f"key{i}" for i in range(64)]
        assert ([a.decide(k, 0) for k in keys]
                != [b.decide(k, 0) for k in keys])

    def test_default_rule_spares_retries(self):
        policy = parse_chaos_spec("crash")
        assert policy.decide("key", 0) == "crash"
        assert policy.decide("key", 1) is None

    def test_wildcard_rule_hits_every_attempt(self):
        policy = parse_chaos_spec("crash@*")
        assert policy.decide("key", 0) == "crash"
        assert policy.decide("key", 5) == "crash"

    def test_inject_fail_raises(self):
        policy = parse_chaos_spec("fail")
        with pytest.raises(RuntimeError, match="chaos"):
            policy.inject("key", 0)
        policy.inject("key", 1)  # spared attempt: no-op


class TestEnvHook:
    def test_unset_means_no_policy(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert chaos_from_env() is None

    def test_env_spec_parsed(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "fail:p=0.5,seed=9")
        policy = chaos_from_env()
        assert isinstance(policy, ChaosPolicy)
        assert policy.seed == 9


class TestTearJournalTail:
    def test_tears_only_final_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [json.dumps({"key": f"k{i}", "status": "ok"})
                   for i in range(3)]
        path.write_text("\n".join(records) + "\n")
        removed = tear_journal_tail(path)
        assert removed > 0
        lines = path.read_text().split("\n")
        assert json.loads(lines[0])["key"] == "k0"
        assert json.loads(lines[1])["key"] == "k1"
        with pytest.raises(ValueError):
            json.loads(lines[2])

    def test_single_record_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"key": "k0", "status": "ok"}) + "\n")
        tear_journal_tail(path)
        with pytest.raises(ValueError):
            json.loads(path.read_text())

    def test_empty_file_noop(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        assert tear_journal_tail(path) == 0
