"""The ``--faults`` spec grammar.

A fault spec is a comma-separated list of events; each event is a name with
an optional ``@cycle`` anchor followed by colon-separated arguments::

    spec   := event ("," event)*
    event  := name ["@" cycle] (":" arg)*
    arg    := "r" A "-" "r" B      -- channel endpoints (link events)
            | "r" N                -- router id (router events)
            | key "=" value        -- keyword parameter

Event reference (full semantics in ``docs/FAULTS.md``):

=====================================  =========================================
``link_down@C:rA-rB``                  channel A<->B fails (both directions) at C
``link_up@C:rA-rB``                    channel A<->B recovers at C
``router_down@C:rN``                   router N power-gates at C
``router_up@C:rN``                     router N revives at C
``sm_drop[:p=P][:kind=K][:n=N]``       drop matching SMs (prob. P, budget N)
``sm_drop@C:...``                      ... starting at cycle C
``sm_delay:d=D[:p=P][:kind=K][:n=N]``  add D cycles of latency to matching SMs
``sm_corrupt[:p=P][:kind=K][:n=N]``    truncate the path of matching SMs
=====================================  =========================================

Keyword parameters: ``p`` (probability in (0, 1]); ``kind`` (probe, move,
probe_move, kill_move); ``n`` (total fault budget); ``until`` (last active
cycle, exclusive); ``d`` (delay cycles, sm_delay only).  ``@C`` on an SM
event sets the first armed cycle.

All parse failures raise :class:`~repro.errors.FaultInjectionError` with the
offending event in the error context.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import FaultInjectionError
from repro.faults.events import (
    FaultSchedule,
    LinkStateEvent,
    RouterStateEvent,
    SmFaultPolicy,
)

_LINK_ARG = re.compile(r"^r(\d+)-r(\d+)$")
_ROUTER_ARG = re.compile(r"^r(\d+)$")
_HEAD = re.compile(r"^([a-z_]+)(?:@(\d+))?$")


def parse_fault_spec(spec: str) -> FaultSchedule:
    """Parse a ``--faults`` string into a :class:`FaultSchedule`.

    Raises:
        FaultInjectionError: On any grammar or parameter violation.
    """
    if not isinstance(spec, str):
        raise FaultInjectionError("fault spec must be a string",
                                  got=type(spec).__name__)
    timed: List[object] = []
    policies: List[SmFaultPolicy] = []
    for raw_event in spec.split(","):
        event = raw_event.strip()
        if not event:
            raise FaultInjectionError("empty fault event", spec=spec)
        head, *args = event.split(":")
        match = _HEAD.match(head.strip())
        if match is None:
            raise FaultInjectionError(
                f"malformed fault event head {head!r} "
                "(expected name or name@cycle)", event=event)
        name = match.group(1)
        cycle = int(match.group(2)) if match.group(2) is not None else None
        if name in ("link_down", "link_up"):
            timed.append(_parse_link_event(name, cycle, args, event))
        elif name in ("router_down", "router_up"):
            timed.append(_parse_router_event(name, cycle, args, event))
        elif name in ("sm_drop", "sm_delay", "sm_corrupt"):
            policies.append(_parse_sm_policy(name, cycle, args, event))
        else:
            raise FaultInjectionError(
                f"unknown fault event {name!r}", event=event,
                known=["link_down", "link_up", "router_down", "router_up",
                       "sm_drop", "sm_delay", "sm_corrupt"])
    return FaultSchedule(timed_events=tuple(timed),
                         sm_policies=tuple(policies))


def format_fault_spec(schedule: FaultSchedule) -> str:
    """Canonical spec string for a schedule (inverse of parsing)."""
    return schedule.describe()


def canonical_fault_spec(spec: Optional[str]) -> Optional[str]:
    """Validate a fault spec and return its canonical form.

    ``None``/empty stays ``None`` (fault-free).  Anything else is parsed —
    raising :class:`~repro.errors.FaultInjectionError` on typos before any
    simulation — and re-described, so equivalent spellings of the same
    schedule serialize identically.  :class:`repro.harness.ExperimentSpec`
    normalizes its ``faults`` field through this at construction time,
    which is also what keeps fault experiments picklable: the *string*
    crosses the process boundary, never the parsed schedule.
    """
    if not spec:
        return None
    return format_fault_spec(parse_fault_spec(spec))


def _parse_link_event(name: str, cycle: Optional[int], args: List[str],
                      event: str) -> LinkStateEvent:
    if cycle is None:
        raise FaultInjectionError(f"{name} requires an @cycle anchor",
                                  event=event)
    if len(args) != 1:
        raise FaultInjectionError(
            f"{name} takes exactly one rA-rB argument", event=event)
    match = _LINK_ARG.match(args[0].strip())
    if match is None:
        raise FaultInjectionError(
            f"malformed link endpoints {args[0]!r} (expected rA-rB)",
            event=event)
    return LinkStateEvent(cycle=cycle, a=int(match.group(1)),
                          b=int(match.group(2)), up=(name == "link_up"))


def _parse_router_event(name: str, cycle: Optional[int], args: List[str],
                        event: str) -> RouterStateEvent:
    if cycle is None:
        raise FaultInjectionError(f"{name} requires an @cycle anchor",
                                  event=event)
    if len(args) != 1:
        raise FaultInjectionError(
            f"{name} takes exactly one rN argument", event=event)
    match = _ROUTER_ARG.match(args[0].strip())
    if match is None:
        raise FaultInjectionError(
            f"malformed router id {args[0]!r} (expected rN)", event=event)
    return RouterStateEvent(cycle=cycle, router=int(match.group(1)),
                            up=(name == "router_up"))


def _parse_sm_policy(name: str, cycle: Optional[int], args: List[str],
                     event: str) -> SmFaultPolicy:
    params = _parse_kv(args, event)
    allowed = {"p", "kind", "n", "until", "d"}
    unknown = set(params) - allowed
    if unknown:
        raise FaultInjectionError(
            f"unknown SM fault parameter(s) {sorted(unknown)}",
            event=event, allowed=sorted(allowed))
    try:
        probability = float(params["p"]) if "p" in params else 1.0
        count = int(params["n"]) if "n" in params else None
        until = int(params["until"]) if "until" in params else None
        delay = int(params["d"]) if "d" in params else 0
    except ValueError as exc:
        raise FaultInjectionError(f"non-numeric SM fault parameter ({exc})",
                                  event=event) from None
    return SmFaultPolicy(
        action=name[len("sm_"):],
        probability=probability,
        kind=params.get("kind"),
        after=cycle or 0,
        until=until,
        count=count,
        delay=delay,
    )


def _parse_kv(args: List[str], event: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for arg in args:
        key, sep, value = arg.strip().partition("=")
        if not sep or not key or not value:
            raise FaultInjectionError(
                f"malformed SM fault parameter {arg!r} (expected key=value)",
                event=event)
        if key in params:
            raise FaultInjectionError(f"duplicate parameter {key!r}",
                                      event=event)
        params[key] = value
    return params
