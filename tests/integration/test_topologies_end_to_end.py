"""End-to-end integration across topologies and design points.

Each test drives a full design (topology + routing + control plane) with
live traffic and asserts delivery, conservation, and deadlock freedom —
the properties the paper's Table III configurations must all satisfy.
"""

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.harness.runner import run_design
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.favors import FavorsNonMinimal
from repro.routing.table import UpDownRouting
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.topology.irregular import faulty_mesh
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

SHORT = SimulationConfig(warmup_cycles=200, measure_cycles=1200,
                         drain_cycles=2500, deadlock_abort_cycles=1200)


class TestMeshDesigns:
    @pytest.mark.parametrize("design", [
        "mesh:westfirst-3vc",
        "mesh:escapevc-3vc",
        "mesh:staticbubble-3vc",
        "mesh:minadaptive-spin-3vc",
        "mesh:favors-min-spin-1vc",
    ])
    def test_moderate_load_delivers_everything(self, design):
        network, point = run_design(design, "uniform", 0.15, SHORT,
                                    mesh_side=4, tdd=32)
        assert not point.wedged
        assert network.stats.packets_delivered == network.stats.packets_created
        assert not has_deadlock(network, network.now)

    @pytest.mark.parametrize("pattern", ["transpose", "bit_reverse",
                                         "tornado", "bit_complement"])
    def test_favors_min_handles_every_pattern(self, pattern):
        network, point = run_design("mesh:favors-min-spin-1vc", pattern,
                                    0.10, SHORT, mesh_side=4, tdd=32)
        assert not point.wedged
        assert point.delivery_ratio == 1.0


class TestDragonflyDesigns:
    @pytest.mark.parametrize("design", [
        "dfly:ugal-dally-3vc",
        "dfly:ugal-spin-3vc",
        "dfly:minimal-spin-1vc",
        "dfly:favors-nmin-spin-1vc",
    ])
    def test_moderate_load_delivers_everything(self, design):
        network, point = run_design(design, "uniform", 0.10, SHORT,
                                    dragonfly=(2, 4, 2), tdd=32)
        assert not point.wedged
        assert network.stats.packets_delivered == network.stats.packets_created

    def test_one_vc_dragonfly_deadlocks_and_spin_recovers(self):
        network, point = run_design("dfly:favors-nmin-spin-1vc", "tornado",
                                    0.30, SHORT, dragonfly=(2, 4, 2), tdd=32)
        assert not point.wedged
        # Adversarial tornado on 1 VC reliably creates deadlocks.
        assert point.events.get("spins", 0) >= 1

    def test_ugal_discipline_prevents_deadlock_without_recovery(self):
        network, point = run_design("dfly:ugal-dally-3vc", "tornado", 0.25,
                                    SHORT, dragonfly=(2, 4, 2))
        assert not point.wedged
        assert not has_deadlock(network, network.now)

    def test_unrestricted_without_recovery_wedges(self):
        network, point = run_design("dfly:minimal-nospin-1vc", "tornado",
                                    0.35, SHORT, dragonfly=(2, 4, 2))
        assert point.wedged or not has_deadlock(network, network.now)
        # At this load the 1-VC dragonfly deadlocks deterministically for
        # this seed; assert the oracle agrees when it wedged.
        if point.wedged:
            assert has_deadlock(network, network.now)


class TestIrregularTopologies:
    def _network(self, routing, spin=None, seed=5):
        topology = faulty_mesh(4, 4, num_failed_links=5,
                               rng=DeterministicRng(11))
        return Network(topology, NetworkConfig(vcs_per_vnet=1), routing,
                       spin=spin, seed=seed)

    def _drive(self, network, rate=0.10, cycles=6000, seed=5):
        network.stats.open_window(0, 1500)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), rate, seed=seed,
            stop_at=1500, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(cycles)
        return network

    def test_updown_is_deadlock_free_without_recovery(self):
        network = self._drive(self._network(UpDownRouting(0)), rate=0.15)
        assert network.is_drained()
        assert not has_deadlock(network, network.now)

    def test_spin_enables_unrestricted_routing_on_faulty_mesh(self):
        network = self._drive(
            self._network(MinimalAdaptiveRouting(0),
                          spin=SpinParams(tdd=32)), rate=0.20)
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())

    def test_spin_paths_shorter_than_updown(self):
        spin_net = self._drive(
            self._network(MinimalAdaptiveRouting(0),
                          spin=SpinParams(tdd=32)), rate=0.08)
        updown_net = self._drive(self._network(UpDownRouting(0)), rate=0.08)
        assert spin_net.stats.mean_hops() <= updown_net.stats.mean_hops()

    def test_favors_nonminimal_on_irregular(self):
        # 0.15 flits/node/cycle is deep saturation for this degraded 1-VC
        # mesh: give the backlog time to drain through repeated recoveries.
        network = self._drive(
            self._network(FavorsNonMinimal(0), spin=SpinParams(tdd=32)),
            rate=0.15, cycles=12000)
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())
