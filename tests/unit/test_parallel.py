"""Unit tests for the ParallelRunner fan-out engine.

The process backend uses real worker processes, so the suite keeps the
simulation windows tiny.  Worker-crash surfacing relies on the Linux
``fork`` start method (module-level classes are picklable either way).
"""

import os

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.harness.parallel import ParallelRunner, SpecResult, _execute_spec
from repro.harness.runner import ExperimentSpec

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200,
                        drain_cycles=150, deadlock_abort_cycles=300)


def tiny_spec(**overrides):
    kwargs = dict(design="spin_mesh", pattern="uniform", injection_rate=0.05,
                  mesh_side=4, tdd=32, sim=TINY)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class CrashingSpec(ExperimentSpec):
    """A spec whose run() kills the worker process outright.

    Module level so the process backend can pickle it.  ``os._exit``
    bypasses all exception handling in the child, which is exactly the
    failure mode (OOM-kill, segfault) BrokenProcessPool models.
    """

    def run(self, raise_on_wedge=False):  # pragma: no cover - child only
        os._exit(3)


class RaisingSpec(ExperimentSpec):
    """A spec whose run() raises a normal Python exception."""

    def run(self, raise_on_wedge=False):
        raise RuntimeError("synthetic point failure")


class TestConstruction:
    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ParallelRunner(backend="threads")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            ParallelRunner(max_workers=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            ParallelRunner(timeout=0)

    def test_default_workers_from_cpu_count(self):
        assert ParallelRunner().max_workers == (os.cpu_count() or 1)


class TestSerialBackend:
    def test_results_ordered_and_ok(self):
        specs = tiny_spec().curve([0.02, 0.05, 0.08])
        results = ParallelRunner(backend="serial").run(specs)
        assert [r.spec.injection_rate for r in results] == [0.02, 0.05, 0.08]
        assert all(isinstance(r, SpecResult) and r.ok for r in results)
        assert all(r.point.cycles == TINY.total_cycles for r in results)
        assert all(r.wall_time >= 0.0 for r in results)

    def test_failure_captured_not_raised(self):
        # "nonexistent" passes ExperimentSpec validation (patterns are
        # resolved at build time), then make_pattern raises in the worker.
        specs = [tiny_spec(), tiny_spec(pattern="nonexistent")]
        results = ParallelRunner(backend="serial").run(specs)
        assert results[0].ok
        assert not results[1].ok
        assert results[1].point is None
        assert "nonexistent" in results[1].error

    def test_max_workers_one_means_serial(self):
        runner = ParallelRunner(max_workers=1, backend="process")
        results = runner.run([tiny_spec()])
        assert results[0].ok


class TestProcessBackend:
    def test_matches_serial_exactly(self):
        specs = tiny_spec().curve([0.02, 0.06])
        serial = ParallelRunner(backend="serial").run(specs)
        process = ParallelRunner(max_workers=2, backend="process").run(specs)
        assert [r.point for r in serial] == [r.point for r in process]

    def test_failure_captured_alongside_successes(self):
        specs = [tiny_spec(), tiny_spec(pattern="nonexistent"), tiny_spec()]
        results = ParallelRunner(max_workers=2, backend="process").run(specs)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "nonexistent" in results[1].error

    def test_worker_crash_surfaced_as_failed_record(self):
        specs = [CrashingSpec(design="spin_mesh", injection_rate=0.05,
                              mesh_side=4, sim=TINY)]
        results = ParallelRunner(max_workers=2, backend="process").run(specs)
        assert len(results) == 1
        assert not results[0].ok
        assert "worker crashed" in results[0].error

    def test_crash_respawns_pool_and_finishes_batch(self):
        crash = CrashingSpec(design="spin_mesh", injection_rate=0.05,
                             mesh_side=4, sim=TINY)
        specs = [crash] + tiny_spec().curve([0.02, 0.05, 0.08])
        runner = ParallelRunner(max_workers=2, backend="process")
        results = runner.run(specs)
        assert not results[0].ok
        assert "worker crashed" in results[0].error
        # A crash breaks the ProcessPoolExecutor; the default respawn
        # budget replaces it so every remaining spec still runs.
        assert len(results) == len(specs)
        assert all(r.ok for r in results[1:])
        assert runner.respawns_used == 1

    def test_crash_respawn_matches_serial_points(self):
        crash = CrashingSpec(design="spin_mesh", injection_rate=0.05,
                             mesh_side=4, sim=TINY)
        curve = tiny_spec().curve([0.02, 0.06])
        results = ParallelRunner(max_workers=2,
                                 backend="process").run([crash] + curve)
        serial = ParallelRunner(backend="serial").run(curve)
        assert [r.point for r in results[1:]] == [r.point for r in serial]

    def test_crash_marks_remaining_not_run_when_budget_exhausted(self):
        crash = CrashingSpec(design="spin_mesh", injection_rate=0.05,
                             mesh_side=4, sim=TINY)
        specs = [crash] + tiny_spec().curve([0.02, 0.05, 0.08])
        runner = ParallelRunner(max_workers=2, backend="process",
                                pool_respawns=0)
        results = runner.run(specs)
        assert not results[0].ok
        assert "worker crashed" in results[0].error
        # With the respawn budget exhausted, later specs must be reported
        # as not run — never silently dropped or re-executed in the parent.
        assert len(results) == len(specs)
        not_run = [r for r in results[1:] if r.error and "not run" in r.error]
        assert not_run, "later specs should carry a 'not run' record"
        assert runner.respawns_used == 0

    def test_bad_pool_respawns_rejected(self):
        with pytest.raises(ConfigurationError, match="pool_respawns"):
            ParallelRunner(pool_respawns=-1)


class TestRunCurve:
    def test_stops_curve_at_saturation(self):
        # Absurd rates wedge/saturate early; the curve must be truncated
        # identically to the serial sweep.
        rates = [0.02, 0.9, 0.95, 0.99]
        specs = tiny_spec().curve(rates)
        runner = ParallelRunner(max_workers=2, backend="process")
        points = runner.run_curve(specs, latency_cap=4.0)
        serial = ParallelRunner(backend="serial")
        assert points == serial.run_curve(specs, latency_cap=4.0)
        assert len(points) < len(rates)

    def test_failed_point_raises_simulation_error(self):
        specs = [tiny_spec(pattern="nonexistent")]
        with pytest.raises(SimulationError, match="sweep point failed"):
            ParallelRunner(backend="serial").run_curve(specs)


class TestExecuteSpec:
    def test_worker_function_returns_point_and_wall(self):
        point, wall = _execute_spec(tiny_spec())
        assert point.injection_rate == 0.05
        assert wall >= 0.0

    def test_raising_spec_propagates_in_worker_fn(self):
        spec = RaisingSpec(design="spin_mesh", injection_rate=0.05,
                           mesh_side=4, sim=TINY)
        with pytest.raises(RuntimeError, match="synthetic point failure"):
            _execute_spec(spec)
