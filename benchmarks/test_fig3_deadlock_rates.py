"""Fig. 3 — minimum injection rate at which the networks first deadlock.

The paper's motivation experiment: with recovery disabled (minimal adaptive
on the mesh, unrestricted UGAL on the dragonfly, 3 VCs, 1-flit packets),
scan the offered load upward and record the lowest rate at which the
ground-truth oracle observes a routing deadlock within the run.

Paper's shape: deadlocks need injection rates >= 10x application loads
(~0.3+ flits/node/cycle), and some patterns (tornado on the mesh) never
deadlock under minimal routing.
"""

import pytest

from repro.deadlock.waitgraph import has_deadlock
from repro.harness.configs import build_network
from repro.harness.tables import format_table
from repro.sim.engine import Simulator
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from benchmarks._common import (
    DRAGONFLY,
    MESH_SIDE,
    run_once,
    scale,
    write_result,
)

#: Cycles simulated per probe point (paper: 100K).
WINDOW = scale(3000, 6000, 100_000)
RATES = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]


def deadlocks_within(design, pattern_name, rate, cols, dragonfly):
    network = build_network(design, seed=7, mesh_side=MESH_SIDE,
                            dragonfly=dragonfly)
    pattern = make_pattern(pattern_name, network.topology.num_nodes,
                           cols=cols)
    traffic = SyntheticTraffic(network, pattern, rate, seed=7,
                               mix=PacketMix.single(1))
    simulator = Simulator()
    simulator.register(traffic)
    simulator.register(network)
    check_every = 200
    for _ in range(WINDOW // check_every):
        simulator.run(check_every)
        if has_deadlock(network, simulator.cycle):
            return True
    return False


def minimum_deadlock_rate(design, pattern_name, cols=None, dragonfly=None):
    for rate in RATES:
        if deadlocks_within(design, pattern_name, rate, cols, dragonfly):
            return rate
    return None


def run_experiment():
    rows = []
    mesh_patterns = ["uniform", "transpose", "bit_complement", "tornado"]
    for pattern in mesh_patterns:
        rate = minimum_deadlock_rate("mesh:minadaptive-nospin-3vc", pattern,
                                     cols=MESH_SIDE)
        rows.append([f"mesh/{pattern}",
                     "never (<=1.0)" if rate is None else rate])
    dfly_patterns = ["uniform", "bit_complement", "tornado"]
    for pattern in dfly_patterns:
        rate = minimum_deadlock_rate("dfly:ugal-nospin-3vc", pattern,
                                     dragonfly=DRAGONFLY)
        rows.append([f"dragonfly/{pattern}",
                     "never (<=1.0)" if rate is None else rate])
    table = format_table(
        ["Topology/pattern", "Min deadlocking rate (flits/node/cycle)"],
        rows,
        title=f"Fig. 3: minimum injection rate at which the network "
              f"deadlocks within {WINDOW} cycles (3 VCs, 1-flit packets, "
              f"no recovery)")
    return table, rows


def test_fig3(benchmark):
    table, rows = run_once(benchmark, run_experiment)
    write_result("fig3_deadlock_rates", table)
    values = dict(rows)
    # Paper shape: deadlocks are rare events — an order of magnitude above
    # application loads (~0.01-0.05 flits/node/cycle).
    numeric = [v for v in values.values() if isinstance(v, float)]
    assert numeric, "at least one configuration must deadlock"
    assert min(numeric) >= 0.2
    # Mesh uniform deadlocks at some finite rate ...
    assert isinstance(values["mesh/uniform"], float)
