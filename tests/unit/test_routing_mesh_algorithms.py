"""Unit tests for mesh routing algorithms: XY, turn models, minimal adaptive."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.turn_model import NorthLastRouting, WestFirstRouting
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

from tests.conftest import make_mesh_network


def packet_to(network, dst_router, src_router=0):
    return Packet(src_node=src_router, dst_node=dst_router,
                  src_router=src_router, dst_router=dst_router, length=1)


def walk(network, routing, src, dst, chooser=min, limit=100):
    """Follow a routing function hop by hop; returns the router path."""
    packet = packet_to(network, dst, src)
    here = src
    path = [here]
    for _ in range(limit):
        if here == dst:
            return path
        router = network.routers[here]
        ports = routing.candidate_outports(router, packet)
        assert ports, f"no candidates at {here} toward {dst}"
        port = chooser(ports)
        routing.on_hop(packet, router, port)
        here = router.out_neighbors[port][0].id
        path.append(here)
    raise AssertionError("walk did not terminate")


class TestDimensionOrder:
    def test_resolves_x_before_y(self):
        network = make_mesh_network(side=4, routing=DimensionOrderRouting(0))
        mesh = network.topology
        routing = network.routing
        packet = packet_to(network, mesh.router_at(2, 2))
        ports = routing.candidate_outports(
            network.routers[mesh.router_at(0, 0)], packet)
        assert list(ports) == [EAST]
        # Once x is resolved, y movement is allowed.
        ports = routing.candidate_outports(
            network.routers[mesh.router_at(2, 0)], packet)
        assert list(ports) == [SOUTH]

    def test_single_candidate_always(self):
        network = make_mesh_network(side=4, routing=DimensionOrderRouting(0))
        routing = network.routing
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                packet = packet_to(network, dst, src)
                assert len(routing.candidate_outports(
                    network.routers[src], packet)) == 1

    def test_walk_is_minimal(self):
        network = make_mesh_network(side=5, routing=DimensionOrderRouting(0))
        for src, dst in [(0, 24), (7, 3), (20, 4)]:
            path = walk(network, network.routing, src, dst)
            assert len(path) - 1 == network.topology.min_hops(src, dst)

    def test_needs_mesh_like_topology(self):
        from repro.config import NetworkConfig
        from repro.network.network import Network
        from repro.topology.ring import RingTopology

        with pytest.raises(ConfigurationError):
            Network(RingTopology(5), NetworkConfig(),
                    DimensionOrderRouting(0))


class TestWestFirst:
    def test_west_taken_first_and_exclusively(self):
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        mesh = network.topology
        packet = packet_to(network, mesh.router_at(0, 3))
        ports = network.routing.candidate_outports(
            network.routers[mesh.router_at(2, 0)], packet)
        assert list(ports) == [WEST]

    def test_adaptive_when_no_west_component(self):
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        mesh = network.topology
        packet = packet_to(network, mesh.router_at(3, 3))
        ports = network.routing.candidate_outports(
            network.routers[mesh.router_at(1, 1)], packet)
        assert set(ports) == {EAST, SOUTH}

    def test_no_turn_into_west_ever_needed(self):
        # Walking any permutation with any adaptive choice never needs WEST
        # after a non-west hop: candidates contain WEST only as first leg.
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        routing = network.routing
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = walk(network, routing, src, dst, chooser=max)
                gone_non_west = False
                for a, b in zip(path, path[1:]):
                    went_west = (network.topology.coordinates(b)[0]
                                 < network.topology.coordinates(a)[0])
                    if went_west:
                        assert not gone_non_west, (src, dst, path)
                    else:
                        gone_non_west = True

    def test_walk_is_minimal(self):
        network = make_mesh_network(side=4, routing=WestFirstRouting(0))
        for src, dst in [(0, 15), (15, 0), (3, 12), (13, 6)]:
            path = walk(network, network.routing, src, dst)
            assert len(path) - 1 == network.topology.min_hops(src, dst)


class TestNorthLast:
    def test_north_only_when_sole_productive(self):
        network = make_mesh_network(side=4, routing=NorthLastRouting(0))
        mesh = network.topology
        # Destination to the north-east: north must be withheld.
        packet = packet_to(network, mesh.router_at(3, 0))
        ports = network.routing.candidate_outports(
            network.routers[mesh.router_at(1, 2)], packet)
        assert NORTH not in ports
        # Destination straight north: north is the only choice.
        packet = packet_to(network, mesh.router_at(1, 0))
        ports = network.routing.candidate_outports(
            network.routers[mesh.router_at(1, 2)], packet)
        assert list(ports) == [NORTH]


class TestMinimalAdaptive:
    def test_candidates_are_all_productive_ports(self):
        network = make_mesh_network(side=4)
        mesh = network.topology
        routing = network.routing
        packet = packet_to(network, mesh.router_at(2, 2))
        ports = routing.candidate_outports(
            network.routers[mesh.router_at(0, 0)], packet)
        assert set(ports) == {EAST, SOUTH}

    def test_candidates_raise_at_destination(self):
        network = make_mesh_network(side=4)
        packet = packet_to(network, 5)
        # decide() handles the destination; candidate computation there
        # legitimately yields nothing productive.
        assert network.routing.productive_ports(network.routers[5], 5) == ()

    def test_decide_requests_ejection_at_destination(self):
        network = make_mesh_network(side=4)
        packet = packet_to(network, 5)
        port = network.routing.decide(network.routers[5], 0, packet, now=0)
        from repro.network.router import is_ejection_port

        assert is_ejection_port(port)
        assert packet.current_request == port

    def test_select_prefers_idle_vc_port(self):
        network = make_mesh_network(side=4)
        mesh = network.topology
        routing = network.routing
        packet = packet_to(network, mesh.router_at(2, 2))
        router = network.routers[mesh.router_at(0, 0)]
        # Occupy the east neighbour's west-side VC so only SOUTH has room.
        east_neighbor, east_inport = router.out_neighbors[EAST]
        blocker = packet_to(network, 9)
        east_neighbor.vcs_at(east_inport)[0].reserve(
            blocker, now=0, link_latency=1, router_latency=1)
        chosen = routing.decide(router, 0, packet, now=5)
        assert chosen == SOUTH

    def test_wait_choice_uses_least_active_vc(self):
        network = make_mesh_network(side=4)
        mesh = network.topology
        routing = network.routing
        packet = packet_to(network, mesh.router_at(2, 2))
        router = network.routers[mesh.router_at(0, 0)]
        east_neighbor, east_inport = router.out_neighbors[EAST]
        south_neighbor, south_inport = router.out_neighbors[SOUTH]
        # East VC active since cycle 0, south VC active since cycle 90:
        # the south VC is "younger", so FAvORS waits on SOUTH.
        east_neighbor.vcs_at(east_inport)[0].reserve(
            packet_to(network, 9), now=0, link_latency=1, router_latency=1)
        south_neighbor.vcs_at(south_inport)[0].reserve(
            packet_to(network, 9), now=90, link_latency=1, router_latency=1)
        chosen = routing.decide(router, 0, packet, now=100)
        assert chosen == SOUTH
