"""Golden-trace regression: replay pinned scenarios against fixtures.

The fixtures in tests/fixtures/golden/ were written by
``python -m repro.verify.golden``.  A failure here means cycle-level
behaviour drifted; the assertion message is a first-divergence diff
(:func:`repro.verify.trace.divergence_report`).  If the drift is
*intentional*, regenerate the fixtures and say so in the commit message
(docs/VERIFY.md).
"""

import os

import pytest

from repro.verify.golden import SCENARIOS, regenerate
from repro.verify.trace import (
    divergence_report,
    load_fixture,
    record_digest,
    trace_digest,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "fixtures", "golden")


def _fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, f"{name}.json")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fixture_exists_and_is_wellformed(name):
    payload = load_fixture(_fixture_path(name))
    assert payload["scenario"] == name
    assert payload["cycles"] == len(payload["records"])
    assert payload["cycles"] == SCENARIOS[name].cycles
    # Digests inside the file are internally consistent.
    assert trace_digest(payload["records"]) == payload["digest"]
    assert [record_digest(record) for record in payload["records"]] \
        == payload["cycle_digests"]
    # Pinned parameters in the fixture match the registered scenario.
    assert payload["spec"] == SCENARIOS[name].params


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_replay_matches_fixture(name, engine):
    """The load-bearing regression: re-simulate and compare every record.

    Parametrized over every engine: the fixtures are engine-independent,
    so the fast core must reproduce each pinned trace byte for byte —
    including the per-cycle observer records its idle-skipping must not
    perturb.
    """
    payload = load_fixture(_fixture_path(name))
    recorder, oracle = SCENARIOS[name].record(with_oracle=True,
                                              engine=engine)
    assert oracle is not None and oracle.violation_count == 0
    if recorder.records != payload["records"]:
        pytest.fail(
            f"golden trace {name!r} diverged under engine {engine!r} "
            f"(regenerate with `python -m repro.verify.golden` only if "
            f"the behaviour change is intentional):\n"
            + divergence_report(payload["records"], recorder.records))
    assert recorder.digest() == payload["digest"]


def test_scenarios_exercise_their_machinery():
    """The pinned runs are not vacuous: the SPIN scenario sends probes
    and the bubble scenario delivers wraparound traffic."""
    spin_payload = load_fixture(_fixture_path("mesh4_xy_spin"))
    probe_events = sum(
        delta for record in spin_payload["records"]
        for name, delta in record[8:] if name == "probes_sent")
    assert probe_events >= 10

    bubble_payload = load_fixture(_fixture_path("torus4_bubble"))
    delivered = sum(record[3] for record in bubble_payload["records"])
    assert delivered > 100


def test_regenerate_is_reproducible(tmp_path):
    """Regeneration into a scratch dir writes byte-identical fixtures."""
    digests = regenerate(tmp_path)
    for name, digest in digests.items():
        committed = load_fixture(_fixture_path(name))
        fresh = load_fixture(tmp_path / f"{name}.json")
        assert digest == committed["digest"]
        assert fresh == committed
