"""High-level experiment drivers: the declarative :class:`ExperimentSpec`.

An :class:`ExperimentSpec` is the canonical description of *one* simulated
point: a Table III design (by registry name), a traffic pattern, an offered
load, the simulation windows, and the seeds — all plain data.  Unlike the
closure-based factories it replaces, a spec is **picklable**, so the same
object that drives a serial run can cross a process boundary unchanged
(``repro.harness.parallel``) and serialize into results files
(``repro.stats.results``).

``spec.build()`` produces the ``(network, traffic, injector)`` trio that
:func:`repro.stats.sweep.simulate_point` consumes; ``spec.run()`` does both
steps.  The legacy :func:`run_design` / :func:`latency_curve` wrappers now
construct specs internally, so every driver — CLI, benchmarks, examples,
parallel sweeps — measures through the identical code path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, canonical_fault_spec, parse_fault_spec
from repro.harness.configs import (
    DRAGONFLY_SMALL,
    MESH_SIDE,
    build_network,
    get_design,
    resolve_design_name,
)
from repro.sim.engine_api import resolve_engine_name
from repro.sim.rng import DeterministicRng
from repro.stats.sweep import (
    SaturationCursor,
    SweepPoint,
    curve_saturation_rate,
    simulate_point,
)
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern


@dataclass(frozen=True)
class ExperimentSpec:
    """A picklable, declarative description of one simulation point.

    Attributes:
        design: Table III registry name (aliases accepted; stored
            canonically, so serialized specs never depend on alias tables).
        pattern: Traffic pattern name (``repro.traffic.patterns``).
        injection_rate: Offered load in flits/node/cycle.
        seed: Seed shared by the network, routing and traffic RNGs.
        mesh_side: Mesh dimension (used when the design is a mesh).
        dragonfly: ``(p, a, h)`` (used when the design is a dragonfly).
        tdd: Optional detection-threshold override.
        mix: Optional packet-length mix (defaults to the paper's 50/50
            1-flit + 5-flit mix inside :class:`SyntheticTraffic`).
        faults: Optional fault-injection spec *string* (docs/FAULTS.md),
            validated and canonicalized at construction; carrying the
            string (not the parsed schedule) keeps the spec picklable.
        fault_seed: Seed for the probabilistic fault realization.
        sim: Simulation windows for this point.
        verify: Attach the runtime invariant oracle (:mod:`repro.verify`)
            to the run, failing it on the first violated invariant.  The
            ``REPRO_VERIFY`` environment variable enables the oracle for
            every run regardless of this flag (docs/VERIFY.md).
        telemetry: Attach the recording telemetry observer
            (:mod:`repro.telemetry`) with default configuration; its
            ``telemetry_*`` tallies land in ``SweepPoint.events``.  The
            ``REPRO_TELEMETRY`` environment variable enables telemetry
            for every run regardless of this flag (docs/TELEMETRY.md).
        engine: Simulator engine name (``reference``/``fast``) driving the
            cycle loop for this point; the empty string (the default)
            means "unset" and falls through the selection precedence
            (CLI flag, then ``REPRO_ENGINE``, then ``reference``) — see
            :mod:`repro.sim.engine_api`.

    Construction validates everything that can be validated without
    building a network, so a bad spec fails in the parent process before
    any worker is spawned.
    """

    design: str
    pattern: str = "uniform"
    injection_rate: float = 0.1
    seed: int = 1
    mesh_side: int = MESH_SIDE
    dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL
    tdd: Optional[int] = None
    mix: Optional[PacketMix] = None
    faults: Optional[str] = None
    fault_seed: int = 0
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    verify: bool = False
    telemetry: bool = False
    engine: str = ""

    def __post_init__(self) -> None:
        if self.engine:
            # Validate eagerly so a bad name fails in the parent process;
            # an unset engine stays "" and resolves at run time.
            object.__setattr__(self, "engine",
                               resolve_engine_name(self.engine))
        object.__setattr__(self, "design", resolve_design_name(self.design))
        object.__setattr__(self, "dragonfly", tuple(self.dragonfly))
        object.__setattr__(self, "faults",
                           canonical_fault_spec(self.faults))
        if self.injection_rate < 0:
            raise ConfigurationError("injection_rate must be >= 0",
                                     rate=self.injection_rate)
        if self.seed < 0 or self.fault_seed < 0:
            raise ConfigurationError("seeds must be >= 0", seed=self.seed,
                                     fault_seed=self.fault_seed)
        if self.mesh_side < 2:
            raise ConfigurationError("mesh_side must be >= 2",
                                     mesh_side=self.mesh_side)
        if len(self.dragonfly) != 3 or min(self.dragonfly) < 1:
            raise ConfigurationError(
                "dragonfly must be three integers (p, a, h), all >= 1",
                dragonfly=self.dragonfly)
        if self.tdd is not None and self.tdd < 1:
            raise ConfigurationError("tdd must be >= 1", tdd=self.tdd)

    # ------------------------------------------------------------------
    # Building and running
    # ------------------------------------------------------------------
    def build(self):
        """Instantiate the ``(network, traffic, injector)`` trio.

        ``injector`` is ``None`` for fault-free specs (no component is
        registered, so clean runs pay zero overhead).  The trio is exactly
        what :func:`repro.stats.sweep.simulate_point` consumes.
        """
        design = get_design(self.design)
        network = build_network(design, seed=self.seed,
                                mesh_side=self.mesh_side,
                                dragonfly=self.dragonfly, tdd=self.tdd)
        cols = self.mesh_side if design.topology == "mesh" else None
        pattern = make_pattern(self.pattern, network.topology.num_nodes,
                               cols)
        stop_at = self.sim.warmup_cycles + self.sim.measure_cycles
        traffic = SyntheticTraffic(network, pattern, self.injection_rate,
                                   mix=self.mix, seed=self.seed,
                                   stop_at=stop_at)
        injector = None
        if self.faults:
            injector = FaultInjector(parse_fault_spec(self.faults),
                                     seed=self.fault_seed)
        return network, traffic, injector

    def run(self, raise_on_wedge: bool = False, profiler=None):
        """Simulate this point; returns ``(network, SweepPoint)``.

        ``profiler`` optionally attaches a
        :class:`repro.sim.profile.PhaseProfiler` to the engine; profiling
        never changes the simulated point (docs/OBSERVE.md).
        """
        network, traffic, injector = self.build()
        point = simulate_point(network, traffic, self.sim,
                               injection_rate=self.injection_rate,
                               injector=injector,
                               raise_on_wedge=raise_on_wedge,
                               verify=self.verify,
                               telemetry=self.telemetry,
                               engine=self.engine or None,
                               profiler=profiler)
        return network, point

    def effective_engine(self) -> str:
        """The engine name this spec runs under, after precedence."""
        return resolve_engine_name(self.engine or None)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_rate(self, rate: float) -> "ExperimentSpec":
        """The same experiment at a different offered load."""
        return replace(self, injection_rate=rate)

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """The same experiment under a different seed."""
        return replace(self, seed=seed)

    def forked(self, label: str) -> "ExperimentSpec":
        """A replicate with an independent seed derived from ``label``.

        Uses the same stable digest as :meth:`DeterministicRng.fork`, so
        the derived seed depends only on ``(seed, label)`` — reproducible
        across processes and runs, never on enumeration order.
        """
        child = DeterministicRng(self.seed).fork(str(label)).seed
        return replace(self, seed=child)

    def curve(self, rates: List[float]) -> List["ExperimentSpec"]:
        """This experiment swept over ascending offered loads."""
        return [self.with_rate(rate) for rate in rates]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def content_key(self) -> str:
        """Stable content-address of this spec (16 hex chars).

        The digest covers the canonical JSON form of :meth:`to_dict`, so
        two specs describing the same experiment hash identically across
        processes and sessions — this is the key the campaign journal
        (:mod:`repro.harness.campaign`) files completed results under.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; exact inverse of :meth:`from_dict`."""
        data = {
            "design": self.design,
            "pattern": self.pattern,
            "injection_rate": self.injection_rate,
            "seed": self.seed,
            "mesh_side": self.mesh_side,
            "dragonfly": list(self.dragonfly),
            "tdd": self.tdd,
            "mix": (None if self.mix is None else
                    {"lengths": list(self.mix.lengths),
                     "weights": list(self.mix.weights)}),
            "faults": self.faults,
            "fault_seed": self.fault_seed,
            "sim": self.sim.to_dict(),
            "verify": self.verify,
            "telemetry": self.telemetry,
        }
        # Emitted only when set: engines produce bit-identical results, so
        # an unset engine must hash like a pre-engine-field spec (existing
        # campaign journals stay resumable).
        if self.engine:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (revalidates)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec field(s) {sorted(unknown)}",
                known=sorted(known))
        kwargs = dict(data)
        if kwargs.get("mix") is not None:
            mix = kwargs["mix"]
            kwargs["mix"] = PacketMix(lengths=tuple(mix["lengths"]),
                                      weights=tuple(mix["weights"]))
        if "sim" in kwargs:
            kwargs["sim"] = SimulationConfig.from_dict(kwargs["sim"])
        if "dragonfly" in kwargs:
            kwargs["dragonfly"] = tuple(kwargs["dragonfly"])
        return cls(**kwargs)


def spec_grid(designs: List[str], patterns: List[str], rates: List[float],
              seeds: Tuple[int, ...] = (1,),
              **common) -> List[ExperimentSpec]:
    """Expand an evaluation grid into specs, in deterministic order.

    The iteration order is ``designs x patterns x seeds x rates`` — rates
    innermost and ascending, so each contiguous run of specs is one
    latency curve (the unit the parallel runner applies saturation
    early-stop to).  Extra keyword arguments are passed through to every
    :class:`ExperimentSpec`.
    """
    specs: List[ExperimentSpec] = []
    for design in designs:
        for pattern in patterns:
            for seed in seeds:
                base = ExperimentSpec(design=design, pattern=pattern,
                                      injection_rate=rates[0], seed=seed,
                                      **common)
                specs.extend(base.curve(rates))
    return specs


def run_design(design_name: str, pattern_name: str, injection_rate: float,
               sim_config: Optional[SimulationConfig] = None,
               seed: int = 1, mesh_side: int = MESH_SIDE,
               dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL,
               mix: Optional[PacketMix] = None,
               tdd: Optional[int] = None,
               faults: Optional[str] = None,
               fault_seed: int = 0,
               verify: bool = False,
               telemetry: bool = False,
               engine: str = "",
               profiler=None):
    """Run one design at one load; returns (network, SweepPoint).

    Thin wrapper over :class:`ExperimentSpec` kept for convenience and
    backward compatibility.

    Args:
        faults: Optional fault-injection spec string (docs/FAULTS.md), e.g.
            ``"link_down@1000:r3-r4,sm_drop:p=0.01"``.
        fault_seed: Seed for the probabilistic fault realization; the same
            (faults, fault_seed) pair reproduces the same fault history.
    """
    spec = ExperimentSpec(
        design=design_name, pattern=pattern_name,
        injection_rate=injection_rate,
        sim=sim_config or SimulationConfig(), seed=seed,
        mesh_side=mesh_side, dragonfly=dragonfly, mix=mix, tdd=tdd,
        faults=faults, fault_seed=fault_seed, verify=verify,
        telemetry=telemetry, engine=engine)
    return spec.run(profiler=profiler)


def latency_curve(design_name: str, pattern_name: str, rates: List[float],
                  sim_config: Optional[SimulationConfig] = None,
                  seed: int = 1, mesh_side: int = MESH_SIDE,
                  dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL,
                  mix: Optional[PacketMix] = None,
                  tdd: Optional[int] = None,
                  latency_cap: float = 4.0,
                  faults: Optional[str] = None,
                  fault_seed: int = 0,
                  jobs: int = 1,
                  verify: bool = False,
                  telemetry: bool = False,
                  engine: str = "") -> Tuple[List[SweepPoint], float]:
    """Latency-vs-injection curve for one design and pattern.

    Args:
        jobs: Worker processes.  ``1`` runs serially in-process; ``> 1``
            fans the rates across a process pool
            (:class:`repro.harness.parallel.ParallelRunner`) with the
            identical saturation early-stop, so the returned points are
            exactly those a serial run produces.

    Returns:
        (points, saturation rate in flits/node/cycle).
    """
    spec = ExperimentSpec(
        design=design_name, pattern=pattern_name, injection_rate=rates[0],
        sim=sim_config or SimulationConfig(), seed=seed,
        mesh_side=mesh_side, dragonfly=dragonfly, mix=mix, tdd=tdd,
        faults=faults, fault_seed=fault_seed, verify=verify,
        telemetry=telemetry, engine=engine)
    curve = spec.curve(rates)
    if jobs > 1:
        from repro.harness.parallel import ParallelRunner

        runner = ParallelRunner(max_workers=jobs, backend="process")
        points = runner.run_curve(curve, latency_cap=latency_cap)
    else:
        points = []
        cursor = SaturationCursor(latency_cap)
        for point_spec in curve:
            _, point = point_spec.run()
            points.append(point)
            if cursor.push(point):
                break
    return points, curve_saturation_rate(points, latency_cap)
