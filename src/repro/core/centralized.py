"""Centralized SPIN — the reference implementation of Sec. III.

The paper notes that the three SPIN features (detect a deadlock, agree on
a time, spin together) are trivial with a central coordinator, and builds
the distributed version only for scalability.  This module provides that
centralized reference: an omniscient controller that

1. periodically runs the exact wait-graph oracle,
2. extracts one cyclic dependency chain from the deadlocked set by
   following ``current_request`` edges,
3. rotates it immediately (the network-wide synchronized move is free when
   a single entity orchestrates it).

It is useful as an upper bound when evaluating the distributed
implementation's coordination overheads (see the ablation benchmark), for
debugging (it resolves any deadlock in one oracle period), and as an
executable statement of the theory stripped of all protocol concerns.
Everything about it is un-scalable by design: it reads global state every
period.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.deadlock.waitgraph import find_deadlocked_packets
from repro.errors import ConfigurationError

VcKey = Tuple[int, int, int]


class CentralizedSpinPlane:
    """Oracle-driven deadlock recovery with perfect coordination.

    Args:
        check_period: Cycles between oracle evaluations (plays the role of
            tDD: how stale a deadlock may get before resolution).
    """

    def __init__(self, check_period: int = 32) -> None:
        if check_period < 1:
            raise ConfigurationError("check_period must be >= 1")
        self.check_period = check_period
        self.network = None
        self.spins_performed = 0

    def bind(self, network) -> None:
        self.network = network

    def phase_control(self, cycle: int) -> None:
        if cycle == 0 or cycle % self.check_period:
            return
        network = self.network
        if network.packets_in_flight() == 0:
            return
        deadlocked = find_deadlocked_packets(network, cycle)
        if not deadlocked:
            return
        ring = self._extract_ring(deadlocked, cycle)
        if ring:
            self._rotate(ring, cycle)

    # ------------------------------------------------------------------
    # Ring extraction
    # ------------------------------------------------------------------
    def _extract_ring(self, deadlocked, now: int) -> List[Tuple[object, int]]:
        """One cyclic chain [(vc, outport), ...] inside the deadlocked set.

        Follows each deadlocked packet's ``current_request`` edge to a
        deadlocked VC at the requested port's downstream input; the walk
        must cycle because it never leaves the (finite) deadlocked set.
        """
        network = self.network
        by_key: Dict[VcKey, object] = {}
        for router, inport, vc in network.occupied_vcs():
            packet = vc.packet
            if packet is not None and packet.uid in deadlocked:
                by_key[(router.id, inport, vc.index)] = vc

        def successor(vc) -> Optional[Tuple[object, int]]:
            packet = vc.packet
            request = packet.current_request
            router = network.routers[vc.router]
            if request is None or request not in router.out_neighbors:
                return None
            neighbor, dst_inport = router.out_neighbors[request]
            slice_ = neighbor.vnet_slice(dst_inport, packet.vnet)
            allowed = network.routing.vc_choices(packet, router, request)
            base = packet.vnet * network.config.vcs_per_vnet
            for local_index in allowed:
                candidate = slice_[local_index]
                key = (neighbor.id, dst_inport, base + local_index)
                if key in by_key and not candidate.frozen:
                    return by_key[key], request
            return None

        if not by_key:
            return []
        start = next(iter(by_key.values()))
        seen: Dict[int, int] = {}
        walk: List[Tuple[object, int]] = []
        vc = start
        while True:
            step = successor(vc)
            if step is None:
                return []  # requests shifted since the oracle ran
            nxt, outport = step
            if id(vc) in seen:
                return walk[seen[id(vc)]:]
            seen[id(vc)] = len(walk)
            walk.append((vc, outport))
            vc = nxt

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def _rotate(self, ring: List[Tuple[object, int]], now: int) -> None:
        network = self.network
        config = network.config
        count = len(ring)
        # Sanity: contiguous and fully movable, else skip this period.
        for i, (vc, outport) in enumerate(ring):
            router = network.routers[vc.router]
            if vc.frozen or not vc.fully_arrived(now):
                return
            if not router.out_links[outport].is_free(now):
                return
            neighbor, dst_inport = router.out_neighbors[outport]
            nxt = ring[(i + 1) % count][0]
            if (neighbor.id, dst_inport) != (nxt.router, nxt.inport):
                return
        packets = [vc.packet for vc, _ in ring]
        for vc, outport in ring:
            router = network.routers[vc.router]
            packet = vc.release(now)
            router.out_links[outport].occupy(now, packet.length)
            router.port_busy[vc.inport] = now + packet.length - 1
            network.note_vc_released(router, vc)
        for i, (vc, outport) in enumerate(ring):
            router = network.routers[vc.router]
            packet = packets[i]
            target = ring[(i + 1) % count][0]
            link = router.out_links[outport]
            was_min = network.topology.min_hops(vc.router,
                                                packet.routing_target)
            target.free_at = min(target.free_at, now)
            target.reserve(packet, now, link.latency, config.router_latency)
            packet.hops += 1
            packet.spins += 1
            if network.topology.min_hops(target.router,
                                         packet.routing_target) >= was_min:
                packet.misroutes += 1
            packet.current_request = None
            network.routing.on_hop(packet, router, outport)
            network.stats.count("flit_hops", packet.length)
            network.note_vc_reserved(network.routers[target.router], target)
        network.note_movement()
        self.spins_performed += 1
        network.stats.count("centralized_spins")
        network.stats.count("spin_hops", count)
