"""High-level experiment runners.

Thin wrappers that turn a design name + traffic pattern + load into a
simulated :class:`~repro.stats.sweep.SweepPoint`, shared by the examples and
the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import SimulationConfig
from repro.faults import FaultInjector, parse_fault_spec
from repro.harness.configs import (
    DRAGONFLY_SMALL,
    MESH_SIDE,
    build_network,
    get_design,
)
from repro.stats.sweep import InjectionSweep, SweepPoint, run_point
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern


def _pattern_cols(design, mesh_side: int) -> Optional[int]:
    return mesh_side if design.topology == "mesh" else None


def _fault_factory(faults: Optional[str], fault_seed: int):
    """Build a ``() -> FaultInjector`` factory from a fault spec string.

    Returns None for an absent/empty spec so fault-free runs pay zero
    overhead (no injector component is registered at all).
    """
    if not faults:
        return None
    schedule = parse_fault_spec(faults)  # validate before any simulation

    def factory():
        return FaultInjector(schedule, seed=fault_seed)

    return factory


def run_design(design_name: str, pattern_name: str, injection_rate: float,
               sim_config: Optional[SimulationConfig] = None,
               seed: int = 1, mesh_side: int = MESH_SIDE,
               dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL,
               mix: Optional[PacketMix] = None,
               tdd: Optional[int] = None,
               faults: Optional[str] = None,
               fault_seed: int = 0):
    """Run one design at one load; returns (network, SweepPoint).

    Args:
        faults: Optional fault-injection spec string (docs/FAULTS.md), e.g.
            ``"link_down@1000:r3-r4,sm_drop:p=0.01"``.
        fault_seed: Seed for the probabilistic fault realization; the same
            (faults, fault_seed) pair reproduces the same fault history.
    """
    design = get_design(design_name)
    sim_config = sim_config or SimulationConfig()
    cols = _pattern_cols(design, mesh_side)

    def network_factory():
        return build_network(design, seed=seed, mesh_side=mesh_side,
                             dragonfly=dragonfly, tdd=tdd)

    def traffic_factory(network, stop_at):
        pattern = make_pattern(pattern_name, network.topology.num_nodes, cols)
        return SyntheticTraffic(network, pattern, injection_rate, mix=mix,
                                seed=seed, stop_at=stop_at)

    return run_point(network_factory, traffic_factory, sim_config,
                     injection_rate=injection_rate,
                     fault_factory=_fault_factory(faults, fault_seed))


def latency_curve(design_name: str, pattern_name: str, rates: List[float],
                  sim_config: Optional[SimulationConfig] = None,
                  seed: int = 1, mesh_side: int = MESH_SIDE,
                  dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL,
                  mix: Optional[PacketMix] = None,
                  tdd: Optional[int] = None,
                  latency_cap: float = 4.0,
                  faults: Optional[str] = None,
                  fault_seed: int = 0) -> Tuple[List[SweepPoint], float]:
    """Latency-vs-injection curve for one design and pattern.

    Returns:
        (points, saturation throughput in flits/node/cycle).
    """
    design = get_design(design_name)
    sim_config = sim_config or SimulationConfig()
    cols = _pattern_cols(design, mesh_side)

    def network_factory():
        return build_network(design, seed=seed, mesh_side=mesh_side,
                             dragonfly=dragonfly, tdd=tdd)

    def traffic_factory(network, rate, stop_at):
        pattern = make_pattern(pattern_name, network.topology.num_nodes, cols)
        return SyntheticTraffic(network, pattern, rate, mix=mix, seed=seed,
                                stop_at=stop_at)

    sweep = InjectionSweep(network_factory, traffic_factory, sim_config,
                           rates, latency_cap=latency_cap,
                           fault_factory=_fault_factory(faults, fault_seed))
    points = sweep.run()
    return points, sweep.saturation_rate(points)
