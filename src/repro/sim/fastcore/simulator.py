"""The fast engine: event-driven idle skipping over the reference state.

Design contract
---------------

:class:`FastSimulator` is **not** a second implementation of the datapath.
All authoritative state stays in the reference objects (``Router``,
``VirtualChannel``, ``Link``, ``NetworkInterface``, the SPIN controllers);
the fast engine only *skips work the reference loop would provably not do*:

* **Router idle-skip** — a router's ``allocate()`` cycle is a no-op unless
  one of its VCs can be granted or its routing decision could change (which
  includes consuming adaptive-selection randomness).  The fast core tracks,
  per router, a dirty bit (set by every VC reserve/release event touching
  it) and a wake time derived from VC ready times, ejection/port busy
  timers, and an *earliest-downstream-idle* table, and runs the full
  allocation cycle only when one of them fires.  The per-cycle work it does
  run is a line-for-line replica of ``Router.allocate`` (plus calls into
  the real grant/arbitration methods), so granted cycles are bit-identical.
* **SPIN tick-skip** — a controller ``tick()`` is a no-op before its next
  deadline unless an SM arrived or a VC event touched its router.  Due
  times are derived from the controller FSM exactly; spin-execution cycles
  conservatively tick (and wake) everything, because the executor may
  freeze/unfreeze VCs without datapath events.
* **NIC injection-skip** — a NIC whose injection attempt must fail (port
  streaming a previous packet, or every permitted injection VC busy) sleeps
  until the blocking timer expires or a release event frees one of its
  injection VCs.  Failed ``try_inject`` calls are side-effect-free in the
  reference, so skipping them is exact.
* **Quiescence fast-forward** — once traffic has stopped and the network
  holds no packets, no backlog and no pending SPIN work, every remaining
  cycle of a ``run()`` is a no-op and is skipped wholesale.

The skip analysis is only valid for configurations it was proven against:
stock minimal-adaptive or dimension-order routing (base-class selection,
VC-choice and downstream-VC policies), the known control planes, and no
runtime fault injector.  Anything else — Static Bubble / escape-VC
routing, custom planes, faults — compiles to the *pure reference
schedule*: the engine still satisfies the API but performs exactly the
reference work, so conformance is trivial.  A runtime link failure while
the fast path is active likewise drops allocation back to the reference
rotation for as long as dead links exist.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.core.fsm import SpinState
from repro.errors import RoutingError
from repro.network.router import EJECT_PORT_BASE, INJECT_PORT_BASE
from repro.sim.engine import Simulator, _PHASES

#: Sentinel wake/due time meaning "never (until an event)".
_NEVER = 1 << 60


def _ctrl_due(controller, cycle: int) -> int:
    """Next cycle at which a controller's ``tick`` is not a no-op.

    Derived from :meth:`repro.core.controller.SpinController.tick`: every
    branch is a pure no-op strictly before the returned cycle, *given* that
    SM arrivals and VC events at the router re-dirty the controller (they
    are the only ways the tick's guards can change earlier).
    """
    state = controller.state
    if state is SpinState.OFF:
        # OFF ticks only re-point at occupied network VCs; occupancy changes
        # require a VC event (dirty).  With no occupied network VC the
        # re-point is a no-op.
        return _NEVER
    deadline = controller.deadline
    if state is SpinState.DD:
        due = deadline if deadline is not None else cycle + 1
        pending = controller.probe_pending
        if pending is not None and pending[3] < due:
            due = pending[3]
        return due
    if state is SpinState.PROBE_MOVE:
        send_at = controller.probe_move_send_at
        if send_at is not None:
            return send_at
        return deadline if deadline is not None else cycle + 1
    if state is SpinState.MOVE or state is SpinState.KILL_MOVE:
        return deadline if deadline is not None else cycle + 1
    # FROZEN / FORWARD_PROGRESS: the escape fires when now > deadline + 1.
    return deadline + 2 if deadline is not None else _NEVER


class FastSimulator(Simulator):
    """Drop-in engine running the reference state with event-driven skips."""

    name = "fast"

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._fw = None
        self._routing = None
        self._traffic = None
        self._fast_ok = False
        self._ff_ok = False
        self._count = 0
        # Compiled per-router structures (see _compile).
        self._rvcs: List[Tuple[Tuple[int, object], ...]] = []
        self._r_dirty = bytearray()
        self._r_wake: List[int] = []
        self._r_any_dirty = True
        self._r_min_wake = 0
        self._c_dirty = bytearray()
        self._c_due: List[int] = []
        self._c_any_dirty = True
        self._c_min_due = 0
        self._tbl: Dict[Tuple[int, int, int], int] = {}
        self._upmap: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._dslice: Dict[Tuple[int, int, int], tuple] = {}
        self._cands: Dict[Tuple[int, int], tuple] = {}
        self._eject_of: List[int] = []
        self._inject_of: Dict[Tuple[int, int], int] = {}
        self._nic_wake: List[int] = []
        self._occupied = 0
        self._active_nics = set()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Decide whether the fast paths apply and build their structures."""
        from repro.network.network import Network

        self._fast_ok = False
        self._ff_ok = False
        nets = [c for c in self._components if isinstance(c, Network)]
        if len(nets) != 1:
            self._detach_sink()
            return
        net = nets[0]
        self._net = net
        if net.fault_injector is not None or net.dead_link_count:
            self._detach_sink()
            return
        if not self._routing_whitelisted(net.routing):
            self._detach_sink()
            return
        if not self._planes_whitelisted(net):
            self._detach_sink()
            return

        self._fast_ok = True
        self._fw = net.spin
        self._routing = net.routing
        count = len(net.routers)
        self._count = count
        self._rvcs = [
            tuple((inport, vc)
                  for inport, vcs in router.all_inports()
                  for vc in vcs)
            for router in net.routers
        ]
        self._r_dirty = bytearray(b"\x01" * count)
        self._r_wake = [0] * count
        self._r_any_dirty = True
        self._r_min_wake = 0
        self._tbl = {}
        self._cands = {}
        self._upmap = {
            (link.dst, link.dst_port): (link.src, link.src_port)
            for link in net.links.values()
        }
        num_vnets = net.config.num_vnets
        self._dslice = {
            (router.id, outport, vnet): tuple(
                neighbor.vnet_slice(dst_port, vnet))
            for router in net.routers
            for outport, (neighbor, dst_port) in router.out_neighbors.items()
            for vnet in range(num_vnets)
        }
        self._eject_of = [EJECT_PORT_BASE + nic.local_index
                          for nic in net.nics]
        self._inject_of = {(nic.router_id, nic.inject_port): nic.node
                           for nic in net.nics}
        self._nic_wake = [0] * len(net.nics)
        self._occupied = net.packets_in_flight()
        self._active_nics = {nic.node for nic in net.nics if nic.backlog()}
        if self._fw is not None:
            self._c_dirty = bytearray(b"\x01" * count)
            self._c_due = [0] * count
            self._c_any_dirty = True
            self._c_min_due = 0
        net.engine_sink = self

        # Fast-forward additionally requires that no component or observer
        # could do per-cycle work on a drained network.
        from repro.traffic.generator import SyntheticTraffic

        others = [c for c in self._components if c is not net]
        self._traffic = None
        if not others:
            self._ff_ok = not self._observers
        elif len(others) == 1 and type(others[0]) is SyntheticTraffic:
            self._traffic = others[0]
            self._ff_ok = not self._observers
        else:
            self._ff_ok = False

    def _detach_sink(self) -> None:
        if self._net is not None and getattr(self._net, "engine_sink", None) is self:
            self._net.engine_sink = None

    @staticmethod
    def _routing_whitelisted(routing) -> bool:
        """Only stock MinAdaptive/XY: base-class decide/select/VC policies.

        Exact-type plus method-identity checks: subclasses (Static Bubble,
        escape-VC, west-first...) override selection or VC disciplines in
        ways the skip analysis does not model, and a future override on the
        whitelisted classes themselves must fail closed.
        """
        from repro.routing.adaptive import MinimalAdaptiveRouting
        from repro.routing.base import RoutingAlgorithm
        from repro.routing.dor import DimensionOrderRouting

        cls = type(routing)
        if cls not in (MinimalAdaptiveRouting, DimensionOrderRouting):
            return False
        base = RoutingAlgorithm
        shared = ("decide", "select", "wait_choice", "vc_choices",
                  "pick_downstream_vc", "injection_vc_choices")
        for method in shared:
            if getattr(cls, method) is not getattr(base, method):
                return False
            if method in routing.__dict__:
                return False  # instance-level monkeypatch
        return "candidate_outports" not in routing.__dict__

    @staticmethod
    def _planes_whitelisted(net) -> bool:
        from repro.core.centralized import CentralizedSpinPlane
        from repro.core.framework import SpinFramework
        from repro.core.proactive import ProactiveSpinPlane

        known = (SpinFramework, ProactiveSpinPlane, CentralizedSpinPlane)
        return all(isinstance(plane, known) for plane in net.control_planes)

    def _build_schedule(self):
        self._compile()
        if not self._fast_ok:
            return super()._build_schedule()
        substitutes = {
            "phase_control": self._fast_phase_control,
            "phase_inject": self._fast_phase_inject,
            "phase_allocate": self._fast_phase_allocate,
        }
        schedule = []
        for phase in _PHASES:
            bound = []
            for component in self._components:
                if component is self._net and phase in substitutes:
                    bound.append(substitutes[phase])
                elif hasattr(component, phase):
                    bound.append(getattr(component, phase))
            bound.extend(
                getattr(observer, phase)
                for observer in self._observers
                if hasattr(observer, phase)
            )
            schedule.append(bound)
        return self._wrap_schedule(schedule)

    # ------------------------------------------------------------------
    # Event sink (called from Network.note_vc_* and NIC.enqueue)
    # ------------------------------------------------------------------
    def vc_reserved(self, router, vc=None) -> None:
        self._occupied += 1
        rid = router.id
        self._r_dirty[rid] = 1
        self._r_any_dirty = True
        if self._fw is not None:
            self._c_dirty[rid] = 1
            self._c_any_dirty = True
        if vc is None:
            self._reset_conservatively()

    def vc_released(self, router, vc=None) -> None:
        self._occupied -= 1
        rid = router.id
        self._r_dirty[rid] = 1
        self._r_any_dirty = True
        if self._fw is not None:
            self._c_dirty[rid] = 1
            self._c_any_dirty = True
        if vc is None:
            self._reset_conservatively()
            return
        inport = vc.inport
        upstream = self._upmap.get((rid, inport))
        if upstream is not None:
            uid, uport = upstream
            free_at = vc.free_at
            key = (uid, uport, vc.vnet)
            known = self._tbl.get(key)
            # Only *lower* an existing bound: this event bounds one VC, not
            # the slice minimum, so an absent key (= "unknown, always
            # re-check") must stay absent — installing free_at could mask a
            # sibling VC that is already idle.
            if known is not None and free_at < known:
                self._tbl[key] = free_at
            if self._r_wake[uid] > free_at:
                self._r_wake[uid] = free_at
                if self._r_min_wake > free_at:
                    self._r_min_wake = free_at
        elif inport >= INJECT_PORT_BASE:
            # An injection VC freed up: its NIC may inject again.
            node = self._inject_of.get((rid, inport))
            if node is not None:
                free_at = vc.free_at
                if self._nic_wake[node] > free_at:
                    self._nic_wake[node] = free_at

    def nic_backlogged(self, node: int) -> None:
        self._active_nics.add(node)
        # A new head-of-queue packet may target a different vnet whose VCs
        # are idle: re-attempt immediately.
        self._nic_wake[node] = 0

    def _reset_conservatively(self) -> None:
        """A legacy (vc-less) event: wake everything, drop cached times."""
        self._tbl.clear()
        count = self._count
        self._r_dirty = bytearray(b"\x01" * count)
        self._r_wake = [0] * count
        self._r_any_dirty = True
        self._r_min_wake = 0
        self._nic_wake = [0] * len(self._nic_wake)
        if self._fw is not None:
            self._c_dirty = bytearray(b"\x01" * count)
            self._c_due = [0] * count
            self._c_any_dirty = True
            self._c_min_due = 0

    # ------------------------------------------------------------------
    # Phase: control
    # ------------------------------------------------------------------
    def _fast_phase_control(self, cycle: int) -> None:
        net = self._net
        net.now = cycle
        fw = self._fw
        for plane in net.control_planes:
            if plane is fw:
                self._spin_control(cycle)
            else:
                plane.phase_control(cycle)

    def _spin_control(self, cycle: int) -> None:
        """Replica of SpinFramework.phase_control with no-op ticks skipped."""
        fw = self._fw
        executor = fw.executor
        # Peek before execute() pops: spin cycles freeze/unfreeze VCs and run
        # controller callbacks with no datapath events, so they tick (and
        # wake) everything.
        pending = executor._pending
        full_cycle = cycle in pending
        if pending:
            executor.execute(cycle)
        arrivals = fw._arrivals.pop(cycle, None) if fw._arrivals else None
        c_dirty = self._c_dirty
        r_dirty = self._r_dirty
        if arrivals:
            by_router: Dict[int, list] = defaultdict(list)
            for router_id, inport, sm in arrivals:
                by_router[router_id].append((inport, sm))
            for router_id in sorted(by_router):
                batch = by_router[router_id]
                batch.sort(key=lambda item: (
                    -item[1].class_priority,
                    -fw.priority.dynamic_priority(item[1].sender, cycle),
                    item[0],
                ))
                controller = fw.controllers[router_id]
                for inport, sm in batch:
                    controller.on_sm(sm, inport, cycle)
                c_dirty[router_id] = 1
                r_dirty[router_id] = 1
            self._c_any_dirty = True
            self._r_any_dirty = True
        c_due = self._c_due
        ticked = 0
        if full_cycle:
            for i, controller in enumerate(fw.controllers):
                c_dirty[i] = 0
                controller.tick(cycle)
                c_due[i] = _ctrl_due(controller, cycle)
                r_dirty[i] = 1
            ticked = len(fw.controllers)
            self._r_any_dirty = True
            self._c_any_dirty = 1 in c_dirty
            self._c_min_due = min(c_due)
        elif self._c_any_dirty or cycle >= self._c_min_due:
            for i, controller in enumerate(fw.controllers):
                if not c_dirty[i] and cycle < c_due[i]:
                    continue
                c_dirty[i] = 0
                controller.tick(cycle)
                c_due[i] = _ctrl_due(controller, cycle)
                # A tick may unfreeze VCs (watchdog resets, FROZEN escapes)
                # without firing datapath events.
                r_dirty[i] = 1
                self._r_any_dirty = True
                ticked += 1
            self._c_any_dirty = 1 in c_dirty
            self._c_min_due = min(c_due)
        if self._profiler is not None:
            self._profiler.count("controller_ticks", ticked)
            self._profiler.count("controller_ticks_skipped",
                                 len(fw.controllers) - ticked)
        if fw._outbox:
            fw._resolve_outbox(cycle)

    # ------------------------------------------------------------------
    # Phase: inject
    # ------------------------------------------------------------------
    def _fast_phase_inject(self, cycle: int) -> None:
        active = self._active_nics
        if not active:
            return
        net = self._net
        nics = net.nics
        routers = net.routers
        nic_wake = self._nic_wake
        for node in sorted(active):
            if cycle < nic_wake[node]:
                continue
            nic = nics[node]
            packet = nic.try_inject(cycle)
            if not nic.backlog():
                active.discard(node)
                nic_wake[node] = 0
                continue
            router = routers[nic.router_id]
            inject_port = nic.inject_port
            port_busy = router.port_busy[inject_port]
            if packet is not None or cycle <= port_busy:
                # Streaming (or already was): next attempt can succeed only
                # after the port frees.
                nic_wake[node] = port_busy + 1
                continue
            # Port free but every permitted injection VC busy for every
            # queued head-of-line packet: sleep until an empty VC's free_at;
            # occupied VCs wake this NIC via their release event, and a new
            # enqueue resets the wake (failed try_inject calls are pure).
            routing = self._routing
            wake = _NEVER
            for queue in nic.queues:
                if not queue:
                    continue
                head = queue[0]
                vcs = router.vnet_slice(inject_port, head.vnet)
                for idx in routing.injection_vc_choices(head):
                    dvc = vcs[idx]
                    if dvc.packet is None and dvc.free_at < wake:
                        wake = dvc.free_at
            nic_wake[node] = wake

    # ------------------------------------------------------------------
    # Phase: allocate
    # ------------------------------------------------------------------
    def _fast_phase_allocate(self, cycle: int) -> None:
        net = self._net
        count = self._count
        offset = net._allocation_offset
        if net.dead_link_count:
            # Runtime link failure: the dead-link candidate filter mutates
            # packet route state inside decide(), which the skip analysis
            # does not model.  Run the reference rotation until links heal,
            # keeping every router dirty so the fast path restarts cleanly.
            routers = net.routers
            for i in range(count):
                routers[(i + offset) % count].allocate(cycle)
            net._allocation_offset = (offset + 1) % count
            r_dirty = self._r_dirty
            for i in range(count):
                r_dirty[i] = 1
            self._r_any_dirty = True
            self._r_min_wake = 0
            return
        if not self._r_any_dirty and cycle < self._r_min_wake:
            # No router can grant or change its decision this cycle; only
            # the rotation pointer advances (as it would over 64 no-ops).
            net._allocation_offset = (offset + 1) % count
            if self._profiler is not None:
                self._profiler.count("alloc_cycles_skipped")
                self._profiler.count("router_cycles_skipped", count)
            return
        routers = net.routers
        r_dirty = self._r_dirty
        r_wake = self._r_wake
        ran = 0
        for i in range(count):
            rid = (i + offset) % count
            if r_dirty[rid] or cycle >= r_wake[rid]:
                self._router_cycle(routers[rid], rid, cycle)
                ran += 1
        net._allocation_offset = (offset + 1) % count
        self._r_any_dirty = 1 in r_dirty
        self._r_min_wake = min(r_wake)
        if self._profiler is not None:
            self._profiler.count("alloc_cycles_run")
            self._profiler.count("router_cycles_run", ran)
            self._profiler.count("router_cycles_skipped", count - ran)

    def _router_cycle(self, router, rid: int, cycle: int) -> None:
        """One allocation cycle: replica of Router.allocate + wake analysis.

        The request loop mirrors the reference line for line, except that a
        routing ``decide()`` call is elided when it is provably a pure no-op
        that draws no randomness:

        * packet at destination → decide writes the (already-written)
          ejection port;
        * single candidate outport → ``select`` returns it unconditionally;
        * several candidates, none with an idle downstream VC → ``select``'s
          free-list is empty and the sticky previous request wins.

        Downstream idleness is answered by the earliest-idle table, whose
        entries are provably ≤ the true earliest idle time (so a stale entry
        can only cause a redundant check, never a skipped random draw).
        """
        r_dirty = self._r_dirty
        r_dirty[rid] = 0
        if router.active_vcs == 0:
            self._r_wake[rid] = _NEVER
            return
        routing = self._routing
        dslice = self._dslice
        cands_cache = self._cands
        eject_of = self._eject_of
        port_busy = router.port_busy
        requests: Dict[int, list] = {}
        decide_called = False
        wake = _NEVER
        for inport, vc in self._rvcs[rid]:
            packet = vc.packet
            if packet is None or vc.frozen:
                continue
            ready_at = vc.ready_at
            if cycle < ready_at:
                if ready_at < wake:
                    wake = ready_at
                continue
            request = packet.current_request
            if packet.phase == 1 and packet.dst_router == rid:
                outport = eject_of[packet.dst_node]
                packet.current_request = outport
                t = port_busy[inport]
                eject = router.eject_busy[outport]
                if eject > t:
                    t = eject
                t += 1
                if t < wake:
                    wake = t
            elif packet.phase == 0 or request is None:
                outport = routing.decide(router, inport, packet, cycle)
                decide_called = True
            else:
                ckey = (rid, packet.dst_router)
                candidates = cands_cache.get(ckey)
                if candidates is None:
                    candidates = tuple(
                        routing.candidate_outports(router, packet))
                    cands_cache[ckey] = candidates
                vnet = packet.vnet
                if len(candidates) == 1:
                    outport = candidates[0]
                    packet.current_request = outport
                    t = self._downstream_time((rid, outport, vnet), cycle)
                    if t <= cycle:
                        t = cycle + 1  # a grant may become possible
                    if t < wake:
                        wake = t
                else:
                    any_idle = False
                    for candidate in candidates:
                        t = self._downstream_time((rid, candidate, vnet),
                                                  cycle)
                        if t <= cycle:
                            any_idle = True
                            break
                        if t < wake:
                            wake = t
                    if any_idle or request not in candidates:
                        outport = routing.decide(router, inport, packet,
                                                 cycle)
                        decide_called = True
                    else:
                        outport = request  # sticky while fully blocked
            if outport is None:
                continue
            if cycle > port_busy[inport]:
                bucket = requests.get(outport)
                if bucket is None:
                    requests[outport] = [vc]
                else:
                    bucket.append(vc)

        # Grant loop: verbatim reference semantics (Router.allocate); the
        # downstream-VC pick is the inlined base-class policy (first idle VC
        # in slice order), valid under the routing whitelist.
        granted_inports = set()
        for outport in sorted(requests):
            ejection = outport >= EJECT_PORT_BASE
            if ejection:
                if cycle <= router.eject_busy[outport]:
                    continue
            else:
                link = router.out_links.get(outport)
                if link is None:
                    raise RoutingError(
                        f"router {router.id} has no output port {outport}")
                if not (link.up and cycle > link.busy_until):
                    continue
            viable = []
            for vc in requests[outport]:
                if vc.inport in granted_inports:
                    continue
                if ejection:
                    viable.append((vc, None))
                else:
                    for dvc in dslice[(rid, outport, vc.packet.vnet)]:
                        if dvc.packet is None and cycle >= dvc.free_at:
                            viable.append((vc, dvc))
                            break
            if not viable:
                continue
            winner_vc, winner_dvc = router._arbitrate(outport, viable)
            granted_inports.add(winner_vc.inport)
            if ejection:
                router._grant_ejection(winner_vc, outport, cycle)
            else:
                router._grant_network(winner_vc, winner_dvc, outport, cycle)

        if decide_called or r_dirty[rid]:
            # Randomness/selection was exercised, or our own grants (their
            # release/reserve events re-dirty this router) moved packets:
            # re-run next cycle.
            self._r_wake[rid] = cycle + 1
        else:
            self._r_wake[rid] = wake

    def _downstream_time(self, key: Tuple[int, int, int], cycle: int) -> int:
        """Earliest cycle the keyed outport's downstream VCs could be idle.

        Returns a value ≤ ``cycle`` only when a downstream VC is idle *now*
        (verified against the live objects — table entries are lower bounds
        and may be stale-low after a reservation).  When nothing is idle,
        stores and returns the exact earliest possible idle time: empty VCs
        become idle at ``free_at`` (constant while empty); occupied VCs
        cannot free without a release event, which re-lowers this entry.
        """
        tbl = self._tbl
        t = tbl.get(key, 0)
        if t > cycle:
            return t
        best = _NEVER
        for dvc in self._dslice[key]:
            if dvc.packet is None:
                free_at = dvc.free_at
                if free_at <= cycle:
                    return t
                if free_at < best:
                    best = free_at
        tbl[key] = best
        return best

    # ------------------------------------------------------------------
    # Quiescence fast-forward
    # ------------------------------------------------------------------
    def _quiescent(self, cycle: int) -> bool:
        if self._occupied or self._active_nics:
            return False
        traffic = self._traffic
        if traffic is not None:
            if traffic.packet_probability > 0 and (
                    traffic.stop_at is None or cycle < traffic.stop_at):
                return False
        fw = self._fw
        if fw is not None:
            if fw._arrivals or fw._outbox or fw.executor._pending:
                return False
            for controller in fw.controllers:
                if controller.state is not SpinState.OFF:
                    return False
        return True

    def run(self, cycles: int) -> None:
        if self._schedule is None:
            self._schedule = self._build_schedule()
        if not (self._fast_ok and self._ff_ok):
            super().run(cycles)
            return
        end = self.cycle + cycles
        while self.cycle < end:
            if self._quiescent(self.cycle):
                # Every remaining cycle is a no-op for every component:
                # land exactly where the reference loop would.
                if self._profiler is not None:
                    self._profiler.count("cycles_fast_forwarded",
                                         end - self.cycle)
                self.cycle = end
                self._net.now = end
                return
            self.step()
