"""Supervisor-side live status: aggregation, classification, rendering.

Covers the supervision edge case from docs/OBSERVE.md — a worker dying
*between* dispatch and its first heartbeat is ``dead`` (never ``hung``)
and keeps its last-known point — plus heartbeat-loss hung detection with
an injectable clock, the rolling ``status.json``, the watch renderer and
the Prometheus exposition.
"""

import json

import pytest

from repro.telemetry.live import (
    STATUS_FORMAT,
    LiveStatusPlane,
    StreamAggregator,
    read_stream_log,
    stream_chrome_trace,
    stream_summary,
)
from repro.telemetry.prometheus import render_exposition, validate_exposition
from repro.telemetry.watch import (
    journal_fallback_status,
    load_status,
    render_status,
    render_watch,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def frame(type_, worker, seq, **fields):
    payload = {"type": type_, "worker": worker, "seq": seq, "t": 1.0}
    payload.update(fields)
    return payload


class TestWorkerClassification:
    def test_dead_before_first_heartbeat_is_dead_not_hung(self):
        """The satellite: dispatch → die silently → classified dead."""
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], rates=[0.1], hang_after=0.5,
                               clock=clock)
        agg.worker_dispatched(41, "k1")
        clock.advance(60.0)  # silence far beyond hang_after
        agg.worker_dead(41)
        worker = agg.snapshot()["workers"]["41"]
        assert worker["state"] == "dead"
        assert worker["point"] == "k1"  # last-known point survives

    def test_dead_flag_wins_over_heartbeat_age(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], hang_after=1.0, clock=clock)
        agg.worker_dispatched(42, "k1")
        agg.worker_dead(42)
        clock.advance(1000.0)
        assert agg.snapshot()["workers"]["42"]["state"] == "dead"

    def test_heartbeat_loss_classifies_hung(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], hang_after=2.0, clock=clock)
        agg.worker_dispatched(43, "k1")
        agg.feed_frames([frame("point_start", 43, 1, key="k1", rate=0.1,
                               cycles_total=100)])
        assert agg.snapshot()["workers"]["43"]["state"] == "running"
        clock.advance(2.5)  # no frames for longer than hang_after
        assert agg.snapshot()["workers"]["43"]["state"] == "hung"

    def test_heartbeat_recovers_hung_to_running(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], hang_after=2.0, clock=clock)
        agg.worker_dispatched(44, "k1")
        clock.advance(3.0)
        assert agg.snapshot()["workers"]["44"]["state"] == "hung"
        agg.feed_frames([frame("heartbeat", 44, 1)])
        assert agg.snapshot()["workers"]["44"]["state"] == "running"

    def test_idle_after_point_end(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], clock=clock)
        agg.worker_dispatched(45, "k1")
        agg.feed_frames([
            frame("point_start", 45, 1, key="k1", rate=0.1,
                  cycles_total=10),
            frame("point_end", 45, 2, key="k1", ok=True, wall_time=0.1,
                  events={}),
        ])
        worker = agg.snapshot()["workers"]["45"]
        assert worker["state"] == "idle"
        assert worker["points_done"] == 1

    def test_supervisor_kill_classifies_hung(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["k1"], clock=clock)
        agg.worker_dispatched(46, "k1")
        agg.worker_hung(46)
        assert agg.snapshot()["workers"]["46"]["state"] == "hung"
        assert agg.counters["workers_hung"] == 1


class TestCampaignRollup:
    def test_progress_and_completion_counts(self):
        agg = StreamAggregator(keys=["a", "b", "c"], rates=[0.1, 0.2, 0.3])
        agg.feed_frames([
            frame("point_start", 1, 1, key="a", rate=0.1,
                  cycles_total=100),
            frame("progress", 1, 2, key="a", cycles_done=60,
                  cycles_total=100, delivered=5, injected=6, spins=1),
        ])
        snap = agg.snapshot()
        assert snap["schema"] == STATUS_FORMAT
        assert snap["campaign"]["total_points"] == 3
        assert snap["campaign"]["running"] == ["a"]
        point = snap["points"]["a"]
        assert point["cycles_done"] == 60
        assert point["delivered"] == 5
        assert point["spins"] == 1

    def test_point_done_is_authoritative(self):
        agg = StreamAggregator(keys=["a"], rates=[0.1])
        agg.point_done("a", False, error_class="SimulationAborted")
        snap = agg.snapshot()
        assert snap["points"]["a"]["status"] == "failed"
        assert snap["points"]["a"]["error_class"] == "SimulationAborted"
        assert snap["campaign"]["failed"] == 1
        assert snap["campaign"]["failure_budget"]["burned"] == 1

    def test_late_frames_never_downgrade_terminal_status(self):
        """The listener thread can apply a worker's point_start/progress
        frame after the engine's authoritative point_done — the finished
        point must stay finished in the snapshot."""
        agg = StreamAggregator(keys=["a"], rates=[0.1])
        agg.point_done("a", True, point=_point(), wall_time=0.2)
        agg.feed_frames([
            frame("point_start", 1, 1, key="a", rate=0.1,
                  cycles_total=100),
            frame("progress", 1, 2, key="a", cycles_done=60,
                  cycles_total=100, delivered=1),
        ])
        snap = agg.snapshot()
        assert snap["points"]["a"]["status"] == "ok"
        assert snap["points"]["a"]["delivered"] == 5  # not the stale 1
        assert snap["campaign"]["done"] == 1
        # The frames still proved the worker alive.
        assert snap["workers"]["1"]["state"] in ("running", "idle")

    def test_resumed_points_counted(self):
        agg = StreamAggregator(keys=["a", "b"])
        agg.mark_resumed(["a"])
        snap = agg.snapshot()
        assert snap["points"]["a"]["status"] == "resumed"
        assert snap["campaign"]["resumed"] == 1
        assert snap["campaign"]["ok"] == 1  # resumed counts as done-ok

    def test_point_end_events_merge_into_registry(self):
        agg = StreamAggregator(keys=["a"])
        agg.feed_frames([
            frame("point_end", 1, 1, key="a", ok=True, wall_time=0.2,
                  events={"spins": 3, "probes_sent": 7}),
            frame("point_end", 2, 1, key="a", ok=True, wall_time=0.2,
                  events={"spins": 2}),
        ])
        totals = agg.snapshot()["stream_totals"]
        assert totals["stream_spins"] == 5
        assert totals["stream_probes_sent"] == 7

    def test_eta_appears_once_throughput_exists(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["a", "b", "c"], clock=clock)
        clock.advance(10.0)
        agg.point_done("a", True)
        snap = agg.snapshot()
        assert snap["campaign"]["throughput_pps"] == pytest.approx(0.1)
        assert snap["campaign"]["eta_seconds"] == pytest.approx(20.0)


class TestLiveStatusPlane:
    def test_status_file_written_and_updated(self, tmp_path):
        plane = LiveStatusPlane(tmp_path, keys=["k1"], rates=[0.1],
                                status_interval=0.05)
        plane.start()
        try:
            assert plane.enabled
            status = load_status(tmp_path)
            assert status["schema"] == STATUS_FORMAT
            assert status["status"] == "running"
        finally:
            plane.stop("completed")
        status = load_status(tmp_path)
        assert status["status"] == "completed"

    def test_env_var_roundtrip(self, tmp_path, monkeypatch):
        import os

        from repro.telemetry.live import STREAM_SOCKET_ENV

        monkeypatch.delenv(STREAM_SOCKET_ENV, raising=False)
        plane = LiveStatusPlane(tmp_path, keys=["k1"])
        plane.start()
        try:
            assert os.environ[STREAM_SOCKET_ENV] == plane.socket_path
        finally:
            plane.stop()
        assert STREAM_SOCKET_ENV not in os.environ

    def test_worker_frames_reach_status_and_stream_log(self, tmp_path):
        import time

        from repro.telemetry.live import _SocketTransport, TelemetryShipper

        plane = LiveStatusPlane(tmp_path, keys=["k1"], rates=[0.1],
                                status_interval=0.05)
        plane.start()
        try:
            shipper = TelemetryShipper(
                _SocketTransport(plane.socket_path), worker=777)
            shipper.hello()
            shipper.point_start("k1", 0.1, 1000)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = load_status(tmp_path)
                if status and status.get("workers", {}).get("777"):
                    break
                time.sleep(0.05)
            shipper.close()
        finally:
            plane.stop()
        status = load_status(tmp_path)
        assert status["workers"]["777"]["points_done"] == 0
        assert status["points"]["k1"]["status"] == "running"
        frames = read_stream_log(tmp_path / "stream.jsonl")
        assert [f["type"] for f in frames] == ["hello", "point_start"]

    def test_long_directory_falls_back_to_tmp_socket(self, tmp_path):
        deep = tmp_path / ("d" * 50) / ("e" * 50)
        plane = LiveStatusPlane(deep, keys=["k1"])
        plane.start()
        try:
            assert plane.enabled
            assert len(plane.socket_path) <= 108
        finally:
            plane.stop()


class TestStreamLogTools:
    FRAMES = [
        frame("hello", 1, 1),
        frame("point_start", 1, 2, key="a", rate=0.1, cycles_total=100,
              t=1.0),
        frame("progress", 1, 3, key="a", cycles_done=50, t=1.5),
        frame("point_end", 1, 4, key="a", ok=True, wall_time=1.0, t=2.0),
    ]

    def test_summary(self):
        summary = stream_summary(self.FRAMES)
        assert summary["frames"] == 4
        assert summary["by_type"]["point_end"] == 1
        assert summary["workers"]["1"]["points"] == 1
        assert summary["points"]["a"]["ok"] is True

    def test_chrome_trace_slices_and_counters(self):
        trace = stream_chrome_trace(self.FRAMES)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(slices) == 1
        assert slices[0]["name"] == "a"
        assert slices[0]["dur"] == pytest.approx(1e6)
        assert len(counters) == 1

    def test_read_stream_log_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        lines = [json.dumps(f) for f in self.FRAMES]
        path.write_text("\n".join(lines) + '\n{"type": "torn')
        assert read_stream_log(path) == self.FRAMES


class TestRendering:
    def snapshot(self):
        clock = FakeClock()
        agg = StreamAggregator(keys=["a", "b"], rates=[0.1, 0.2],
                               max_failures=3, clock=clock)
        agg.worker_dispatched(11, "a")
        agg.feed_frames([
            frame("point_start", 11, 1, key="a", rate=0.1,
                  cycles_total=200),
            frame("progress", 11, 2, key="a", cycles_done=100,
                  cycles_total=200, delivered=9, injected=10, spins=2),
        ])
        return agg.snapshot()

    def test_render_status_shows_workers_and_points(self):
        text = render_status(self.snapshot(), directory="camp")
        assert "campaign camp" in text
        assert "1/2" not in text  # 0 done so far
        assert "[r.]" in text  # a running, b pending
        assert "11" in text and "running" in text
        assert "delivered=9" in text

    def test_render_watch_missing_directory(self, tmp_path):
        text = render_watch(tmp_path / "nope")
        assert "no status.json or manifest.json" in text

    def test_journal_fallback_from_manifest(self, tmp_path):
        from repro.config import SimulationConfig
        from repro.harness.campaign import CampaignJournal, write_manifest
        from repro.harness.runner import ExperimentSpec

        sim = SimulationConfig(warmup_cycles=10, measure_cycles=20,
                               drain_cycles=20, deadlock_abort_cycles=50)
        specs = [ExperimentSpec(design="spin_mesh", pattern="uniform",
                                injection_rate=r, mesh_side=4, sim=sim)
                 for r in (0.01, 0.02)]
        write_manifest(tmp_path, specs, {"design": "spin_mesh"})
        journal = CampaignJournal(tmp_path)
        journal.open()
        journal.append({"key": specs[0].content_key(), "attempt": 0,
                        "status": "ok", "point": _point().to_dict(),
                        "wall_time": 0.5})
        journal.close()
        status = journal_fallback_status(tmp_path)
        assert status["campaign"]["total_points"] == 2
        assert status["campaign"]["done"] == 1
        text = render_status(status, tmp_path)
        assert "[#.]" in text


class TestPrometheus:
    def test_exposition_lints_clean(self):
        agg = StreamAggregator(keys=["a", "b"], rates=[0.1, 0.2])
        agg.worker_dispatched(21, "a")
        agg.feed_frames([
            frame("point_start", 21, 1, key="a", rate=0.1,
                  cycles_total=100),
            frame("point_end", 21, 2, key="a", ok=True, wall_time=0.5,
                  events={"spins": 4}),
        ])
        agg.point_done("a", True)
        text = render_exposition(agg.snapshot())
        assert validate_exposition(text) == []
        assert "repro_campaign_points_total 2" in text
        assert 'repro_workers{state="idle"} 1' in text
        assert 'repro_stream_events_total{event="stream_spins"} 4' in text

    def test_validator_catches_malformed_lines(self):
        bad = ("# HELP x helpful\n"
               "# TYPE x wibble\n"
               "x{label=unquoted} 1\n"
               "undeclared_metric 2\n")
        problems = validate_exposition(bad)
        assert any("unknown type" in p for p in problems)
        assert any("bad label pair" in p or "malformed" in p
                   for p in problems)
        assert any("undeclared" in p for p in problems)

    def test_nan_eta_is_valid(self):
        agg = StreamAggregator(keys=["a"])
        text = render_exposition(agg.snapshot())
        assert "repro_campaign_eta_seconds NaN" in text
        assert validate_exposition(text) == []


def _point():
    from repro.stats.sweep import SweepPoint

    return SweepPoint(injection_rate=0.01, mean_latency=10.0,
                      p99_latency=20.0, throughput=0.01,
                      delivery_ratio=1.0, wedged=False, delivered=5,
                      events={"spins": 0}, cycles=50)
