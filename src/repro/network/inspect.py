"""Human-readable snapshots of live network state.

Debugging aids for library users: an ASCII occupancy map for mesh-like
topologies, a dump of the blocked-packet dependency structure, and a SPIN
control-plane summary.  The deadlock_anatomy example and several failure
messages in the test-suite build on these.
"""

from __future__ import annotations

from typing import List

from repro.network.router import is_ejection_port


def occupancy_map(network) -> str:
    """ASCII grid of per-router VC occupancy (mesh/torus only).

    Each cell shows ``occupied/total`` network-input VCs; a trailing ``*``
    marks routers with at least one frozen VC.
    """
    topology = network.topology
    if not hasattr(topology, "coordinates") or not hasattr(topology, "cols"):
        raise TypeError("occupancy_map needs a mesh-like topology")
    lines: List[str] = []
    for y in range(topology.rows):
        cells = []
        for x in range(topology.cols):
            router = network.routers[topology.router_at(x, y)]
            total = occupied = 0
            frozen = False
            for _port, vcs in router.inports.items():
                for vc in vcs:
                    total += 1
                    if vc.packet is not None:
                        occupied += 1
                    frozen = frozen or vc.frozen
            cells.append(f"{occupied}/{total}{'*' if frozen else ' '}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def blocked_packet_report(network, now: int, limit: int = 50) -> str:
    """One line per blocked packet: location, destination, wait set."""
    from repro.deadlock.waitgraph import blocked_packets, find_deadlocked_packets

    deadlocked = find_deadlocked_packets(network, now)
    lines = []
    for key, packet, targets in blocked_packets(network, now)[:limit]:
        router, inport, index = key
        mark = "DEADLOCKED" if packet.uid in deadlocked else "blocked"
        wait = ", ".join(
            f"r{t.router}:p{t.inport}.{t.index}" for t in targets[:4])
        more = "..." if len(targets) > 4 else ""
        lines.append(
            f"pkt {packet.uid} [{mark}] at r{router}:p{inport}.{index} "
            f"-> r{packet.dst_router} (req {packet.current_request}) "
            f"waits on {wait}{more}")
    return "\n".join(lines) if lines else "(no blocked packets)"


def spin_report(network) -> str:
    """Summary of the SPIN control plane's current state."""
    if network.spin is None:
        return "(SPIN not attached)"
    from collections import Counter

    states = Counter(c.state.value for c in network.spin.controllers)
    initiators = [
        c.router.id for c in network.spin.controllers
        if c.spin_cycle is not None
    ]
    lines = [
        "controller states: "
        + ", ".join(f"{name}={count}" for name, count in sorted(states.items())),
        f"frozen VCs: {network.spin.frozen_vc_count()}",
        f"pending spins: {network.spin.executor.pending_spins()}",
    ]
    if initiators:
        lines.append(f"active initiators: {initiators}")
    return "\n".join(lines)


def ejection_pressure(network, now: int) -> float:
    """Fraction of blocked packets whose request is an ejection port.

    High values indicate an ejection-bandwidth bottleneck rather than a
    routing problem.
    """
    total = waiting_eject = 0
    for _router, _inport, vc in network.occupied_vcs():
        packet = vc.packet
        if packet is None or packet.current_request is None:
            continue
        total += 1
        if is_ejection_port(packet.current_request):
            waiting_eject += 1
    return waiting_eject / total if total else 0.0
