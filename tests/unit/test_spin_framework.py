"""Unit tests for the SPIN framework: SM transport and contention rules."""

from repro.config import SpinParams
from repro.core.messages import MoveMessage, ProbeMessage, ProbeMoveMessage
from repro.sim.engine import Simulator
from repro.topology.ring import CLOCKWISE

from tests.conftest import craft_ring_deadlock, make_ring_network


def framework_network(m=6, tdd=50):
    network = make_ring_network(m=m, spin=SpinParams(tdd=tdd))
    return network


class TestTransport:
    def test_sm_arrives_after_link_latency(self):
        network = framework_network()
        framework = network.spin
        probe = ProbeMessage(sender=0, send_cycle=0)
        framework.send_sm(0, CLOCKWISE, probe, now=0)
        framework._resolve_outbox(0)
        assert framework._arrivals[1], "1-cycle link: arrival next cycle"
        ((router, inport, sm),) = framework._arrivals[1]
        assert router == 1
        assert sm is probe

    def test_sm_traversals_counted_on_link(self):
        network = framework_network()
        framework = network.spin
        link = network.routers[0].out_links[CLOCKWISE]
        before = link.sm_cycles
        framework.send_sm(0, CLOCKWISE, ProbeMessage(0, 0), now=0)
        framework._resolve_outbox(0)
        assert link.sm_cycles == before + 1

    def test_sms_ignore_flit_occupancy(self):
        network = framework_network()
        framework = network.spin
        link = network.routers[0].out_links[CLOCKWISE]
        link.busy_until = 10_000  # saturated by flits
        framework.send_sm(0, CLOCKWISE, ProbeMessage(0, 0), now=0)
        framework._resolve_outbox(0)
        assert framework._arrivals[1]


class TestContention:
    def test_class_priority_wins(self):
        network = framework_network()
        framework = network.spin
        probe = ProbeMessage(sender=5, send_cycle=0)
        probe_move = ProbeMoveMessage(sender=1, send_cycle=0, path=(0,))
        framework.send_sm(0, CLOCKWISE, probe, now=0)
        framework.send_sm(0, CLOCKWISE, probe_move, now=0)
        framework._resolve_outbox(0)
        ((_, _, winner),) = framework._arrivals[1]
        assert winner is probe_move
        assert network.stats.events["probes_dropped_contention"] == 1

    def test_sender_priority_breaks_class_ties(self):
        network = framework_network()
        framework = network.spin
        low = ProbeMessage(sender=1, send_cycle=0)
        high = ProbeMessage(sender=4, send_cycle=0)
        framework.send_sm(0, CLOCKWISE, low, now=0)
        framework.send_sm(0, CLOCKWISE, high, now=0)
        framework._resolve_outbox(0)
        ((_, _, winner),) = framework._arrivals[1]
        assert winner is high

    def test_rotation_flips_the_winner(self):
        network = framework_network()
        framework = network.spin
        epoch = framework.params.epoch_length
        # After enough epochs, sender 1 outranks sender 4.
        cycle = epoch * 3  # priorities: (id + 3) % 6 -> 1 -> 4, 4 -> 1
        low = ProbeMessage(sender=4, send_cycle=cycle)
        high = ProbeMessage(sender=1, send_cycle=cycle)
        framework.send_sm(0, CLOCKWISE, low, now=cycle)
        framework.send_sm(0, CLOCKWISE, high, now=cycle)
        framework._resolve_outbox(cycle)
        ((_, _, winner),) = framework._arrivals[cycle + 1]
        assert winner is high

    def test_no_contention_on_distinct_links(self):
        network = framework_network()
        framework = network.spin
        framework.send_sm(0, CLOCKWISE, ProbeMessage(0, 0), now=0)
        framework.send_sm(1, CLOCKWISE, ProbeMessage(1, 0), now=0)
        framework._resolve_outbox(0)
        assert len(framework._arrivals[1]) == 2


class TestArrivalOrdering:
    def test_higher_class_processed_first(self):
        network = framework_network()
        framework = network.spin
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        order = []
        controller = framework.controllers[2]
        original = controller.on_sm

        def spy(sm, inport, now):
            order.append(sm.kind)
            return original(sm, inport, now)

        controller.on_sm = spy
        framework._arrivals[2].extend([
            (2, 1, ProbeMessage(sender=0, send_cycle=0)),
            (2, 1, MoveMessage(sender=0, send_cycle=0, path=(0,),
                               spin_cycle=99)),
        ])
        framework.phase_control(2)
        assert order[:2] == ["move", "probe"]


class TestIntrospection:
    def test_frozen_count_and_pending_spins(self):
        network = framework_network(tdd=8)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run_until(lambda: network.spin.frozen_vc_count() > 0,
                      max_cycles=100)
        assert network.spin.frozen_vc_count() >= 1
        assert network.spin.executor.pending_spins() >= 1
        assert network.spin.controller_of(0) is network.spin.controllers[0]
