#!/usr/bin/env python
"""Anatomy of one SPIN recovery, cycle by cycle.

Plants the textbook deadlock of the paper's Fig. 2 — a ring of packets each
holding the buffer the next one needs — and narrates the three phases of the
distributed recovery (Sec. IV-B):

  Phase I   deadlock detection (tDD timeout -> probe traces the loop)
  Phase II  communicating the spin cycle (move freezes the loop's VCs)
  Phase III the spin (synchronized one-hop rotation, no free buffer needed)

Run:
    python examples/deadlock_anatomy.py
"""

from repro.config import SpinParams
from repro.core.fsm import SpinState
from repro.deadlock.waitgraph import find_deadlocked_packets
from repro.network.network import Network
from repro.config import NetworkConfig
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim import create_engine
from repro.topology.ring import RingTopology, COUNTER_CLOCKWISE
from repro.network.packet import Packet

RING = 6
DST_AHEAD = 2
TDD = 16


def plant_deadlock(network):
    """One packet per router, each two hops from its destination clockwise."""
    packets = []
    for router_id in range(RING):
        dst = (router_id + DST_AHEAD) % RING
        packet = Packet(src_node=router_id, dst_node=dst,
                        src_router=router_id, dst_router=dst, length=1)
        packet.inject_cycle = 0
        vc = network.routers[router_id].inports[COUNTER_CLOCKWISE][0]
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = vc.ready_at = vc.tail_arrival = 0
        network.note_vc_reserved(network.routers[router_id])
        network.stats.record_creation(packet, 0)
        packets.append(packet)
    return packets


def snapshot(network):
    states = [network.spin.controllers[r].state for r in range(RING)]
    frozen = network.spin.frozen_vc_count()
    return states, frozen


def main():
    network = Network(RingTopology(RING), NetworkConfig(vcs_per_vnet=1),
                      MinimalAdaptiveRouting(1), spin=SpinParams(tdd=TDD),
                      seed=1)
    packets = plant_deadlock(network)
    sim = create_engine()  # any engine narrates identically (REPRO_ENGINE)
    sim.register(network)

    print(f"Planted a deadlocked ring of {RING} packets "
          f"(each {DST_AHEAD} hops from its destination).\n")
    sim.run(2)
    deadlocked = find_deadlocked_packets(network, sim.cycle)
    print(f"cycle {sim.cycle:4d}: ground-truth oracle confirms "
          f"{len(deadlocked)} packets are truly deadlocked")

    seen = set()
    last_states, last_frozen = None, None
    while network.stats.packets_delivered < len(packets) and sim.cycle < 2000:
        sim.step()
        events = network.stats.events
        for key, label in [
            ("probes_sent", "Phase I   : tDD expired -> probe sent to "
                            "trace the suspected loop"),
            ("probes_returned", "Phase I   : probe returned to its sender "
                                "-> deadlock CONFIRMED, path latched in "
                                "loop buffer"),
            ("moves_sent", "Phase II  : move sent -> conveys the spin "
                           "cycle, freezes one VC per router"),
            ("moves_returned", "Phase II  : move returned -> every router "
                               "is frozen and counting to the spin cycle"),
            ("spins", "Phase III : THE SPIN -- all frozen packets moved "
                      "one hop simultaneously"),
            ("probe_moves_sent", "Repeat    : probe_move re-checks the "
                                 "loop (multi-spin optimization)"),
            ("kill_moves_sent", "Cancel    : dependency gone -> kill_move "
                                "unfreezes the loop"),
        ]:
            count = events.get(key, 0)
            if count and (key, count) not in seen:
                seen.add((key, count))
                print(f"cycle {sim.cycle:4d}: {label}")
        states, frozen = snapshot(network)
        if (states, frozen) != (last_states, last_frozen):
            if frozen and frozen != last_frozen:
                print(f"cycle {sim.cycle:4d}:   frozen VCs: {frozen}")
            if any(s is SpinState.FORWARD_PROGRESS for s in states) and (
                    not last_states or not any(
                        s is SpinState.FORWARD_PROGRESS for s in last_states)):
                initiator = states.index(SpinState.FORWARD_PROGRESS)
                controller = network.spin.controllers[initiator]
                print(f"cycle {sim.cycle:4d}:   initiator router "
                      f"{initiator}: spin scheduled for cycle "
                      f"{controller.spin_cycle} "
                      f"(= move send + 2 x loop delay)")
            last_states, last_frozen = states, frozen
        delivered = network.stats.packets_delivered
        if delivered and ("delivered", delivered) not in seen:
            seen.add(("delivered", delivered))
            print(f"cycle {sim.cycle:4d}: {delivered}/{len(packets)} "
                  f"packets have reached their destinations")

    print(f"\nAll {network.stats.packets_delivered} packets delivered.")
    print(f"Total spins: {network.stats.events.get('spins', 0)} "
          f"(theorem bound for this ring: {RING - 1})")
    print(f"Max spins experienced by any packet: "
          f"{max(p.spins for p in packets)}")


if __name__ == "__main__":
    main()
