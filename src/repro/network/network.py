"""Network assembly and the per-cycle datapath phases.

:class:`Network` instantiates routers, links and NICs from a topology, binds
the routing algorithm, and optionally attaches control planes (the SPIN
framework of :mod:`repro.core`, or baseline recovery schemes such as Static
Bubble).  It implements the phase hooks consumed by
:class:`repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import NetworkConfig, SpinParams
from repro.errors import ConfigurationError
from repro.network.link import Link
from repro.network.nic import NetworkInterface
from repro.network.packet import Packet
from repro.network.router import EJECT_PORT_BASE, Router
from repro.sim.rng import DeterministicRng
from repro.stats.collectors import NetworkStats
from repro.topology.base import Topology


class Network:
    """A complete simulated interconnection network.

    Args:
        topology: The router/channel structure.
        config: Datapath parameters.
        routing: A routing algorithm instance (bound to this network here).
        spin: SPIN parameters; pass None (or ``SpinParams(enabled=False)``)
            to run without the SPIN control plane — e.g. for deadlock
            avoidance baselines, or to demonstrate unrecovered deadlocks.
        control_planes: Additional control planes (e.g. Static Bubble); each
            must provide ``bind(network)`` and ``phase_control(cycle)``.
        seed: Seed for the network-local RNG (adaptive tie-breaks etc.).
    """

    def __init__(self, topology: Topology, config: NetworkConfig, routing,
                 spin: Optional[SpinParams] = None,
                 control_planes: Tuple = (),
                 seed: int = 0) -> None:
        self.topology = topology
        self.config = config
        self.routing = routing
        self.rng = DeterministicRng(seed).fork("network")
        self.stats = NetworkStats()
        self.now = 0

        self.routers: List[Router] = [
            Router(router_id, config) for router_id in range(topology.num_routers)
        ]
        self.links: Dict[Tuple[int, int], Link] = {}
        self._build_fabric()
        self.nics: List[NetworkInterface] = []
        self._build_nics()

        #: Cycle of the most recent flit movement (wedge detection).
        self.last_movement = 0
        self._allocation_offset = 0

        #: Attached runtime fault injector (see :mod:`repro.faults`), if any.
        self.fault_injector = None
        #: Engine event sink (see :mod:`repro.sim.fastcore`): when set, VC
        #: reserve/release and NIC-backlog events are forwarded so an
        #: event-driven engine can track activity without polling.
        self.engine_sink = None
        #: Number of directed links currently failed (fast path for the
        #: routing layer's dead-link filtering).
        self.dead_link_count = 0

        self.spin = None
        self.control_planes = list(control_planes)
        if spin is not None and spin.enabled:
            from repro.core.framework import SpinFramework

            self.spin = SpinFramework(spin)
            self.control_planes.append(self.spin)
        for plane in self.control_planes:
            plane.bind(self)
        routing.bind(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_fabric(self) -> None:
        self.topology.validate()
        for link_spec in self.topology.links():
            link = Link(link_spec.src, link_spec.src_port,
                        link_spec.dst, link_spec.dst_port, link_spec.latency)
            self.links[(link_spec.src, link_spec.src_port)] = link
            src = self.routers[link_spec.src]
            dst = self.routers[link_spec.dst]
            src.out_links[link_spec.src_port] = link
            src.out_neighbors[link_spec.src_port] = (dst, link_spec.dst_port)
            if link_spec.dst_port not in dst.inports:
                dst.add_network_port(link_spec.dst_port)
        for router in self.routers:
            router.network = self

    def _build_nics(self) -> None:
        local_counts = [0] * len(self.routers)
        self._nic_index: Dict[Tuple[int, int], NetworkInterface] = {}
        for node in range(self.topology.num_nodes):
            router_id = self.topology.router_of_node(node)
            local_index = local_counts[router_id]
            local_counts[router_id] += 1
            self.routers[router_id].add_local_port(local_index)
            nic = NetworkInterface(node, router_id, local_index,
                                   self.config.num_vnets)
            nic.network = self
            self.nics.append(nic)
            self._nic_index[(router_id, local_index)] = nic
        if not self.nics:
            raise ConfigurationError("topology attaches no terminal nodes")

    # ------------------------------------------------------------------
    # Phase hooks (see repro.sim.engine)
    # ------------------------------------------------------------------
    def phase_control(self, cycle: int) -> None:
        self.now = cycle
        for plane in self.control_planes:
            plane.phase_control(cycle)

    def phase_inject(self, cycle: int) -> None:
        for nic in self.nics:
            if nic.backlog():
                nic.try_inject(cycle)

    def phase_allocate(self, cycle: int) -> None:
        routers = self.routers
        count = len(routers)
        offset = self._allocation_offset
        for i in range(count):
            routers[(i + offset) % count].allocate(cycle)
        self._allocation_offset = (offset + 1) % count

    def phase_collect(self, cycle: int) -> None:
        self.now = cycle + 1

    # ------------------------------------------------------------------
    # Datapath callbacks
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet, router_id: int, eject_port: int,
                now: int) -> None:
        """A packet reached its destination router's ejection port."""
        local_index = eject_port - EJECT_PORT_BASE
        nic = self._nic_at(router_id, local_index)
        self.stats.record_delivery(packet, now)
        nic.receive(packet, now)

    def _nic_at(self, router_id: int, local_index: int) -> NetworkInterface:
        try:
            return self._nic_index[(router_id, local_index)]
        except KeyError:
            raise ConfigurationError(
                f"no NIC with local index {local_index} at router {router_id}"
            ) from None

    def eject_port_for(self, node: int) -> int:
        """Ejection-port index of a terminal node at its router."""
        return EJECT_PORT_BASE + self.nics[node].local_index

    def note_vc_reserved(self, router: Router, vc=None) -> None:
        router.active_vcs += 1
        if self.engine_sink is not None:
            self.engine_sink.vc_reserved(router, vc)

    def note_vc_released(self, router: Router, vc=None) -> None:
        router.active_vcs -= 1
        if self.engine_sink is not None:
            self.engine_sink.vc_released(router, vc)

    def note_movement(self) -> None:
        self.last_movement = self.now

    # ------------------------------------------------------------------
    # Runtime fault support (see repro.faults)
    # ------------------------------------------------------------------
    def set_link_state(self, src: int, src_port: int, up: bool,
                       now: Optional[int] = None) -> bool:
        """Fail (or revive) one directed link at runtime.

        Updates the dead-link census, counts the event, and notifies the
        routing algorithm so table-based schemes can recompute around the
        failure.  Returns True if the state actually changed.

        Raises:
            ConfigurationError: If no such link exists.
        """
        link = self.links.get((src, src_port))
        if link is None:
            raise ConfigurationError("no such link", router=src,
                                     port=src_port)
        cycle = self.now if now is None else now
        if not link.set_state(up, cycle):
            return False
        self.dead_link_count += -1 if up else 1
        self.stats.count("link_up_events" if up else "link_down_events")
        self.routing.on_link_state_change(link, up, cycle)
        return True

    def set_channel_state(self, a: int, b: int, up: bool,
                          now: Optional[int] = None) -> int:
        """Fail (or revive) every directed link between two routers.

        Returns the number of directed links whose state changed.

        Raises:
            ConfigurationError: If the routers share no channel.
        """
        keys = [key for key, link in self.links.items()
                if {link.src, link.dst} == {a, b}]
        if not keys:
            raise ConfigurationError("routers share no channel", a=a, b=b)
        return sum(self.set_link_state(src, port, up, now)
                   for src, port in keys)

    def link_is_up(self, router_id: int, outport: int) -> bool:
        """Whether a router's output port has an alive link (ejection and
        injection ports are always up)."""
        link = self.links.get((router_id, outport))
        return link is None or link.up

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupied_vcs(self):
        """All (router, inport, vc) triples whose VC holds a packet."""
        for router in self.routers:
            if router.active_vcs == 0:
                continue
            for inport, vcs in router.all_inports():
                for vc in vcs:
                    if vc.packet is not None:
                        yield router, inport, vc

    def packets_in_flight(self) -> int:
        """Packets currently resident in some router VC."""
        return sum(1 for _ in self.occupied_vcs())

    def total_backlog(self) -> int:
        """Packets waiting in NIC injection queues."""
        return sum(nic.backlog() for nic in self.nics)

    def is_drained(self) -> bool:
        """No packets anywhere in the system."""
        return self.packets_in_flight() == 0 and self.total_backlog() == 0

    def idle_cycles(self) -> int:
        """Cycles since the last flit movement."""
        return self.now - self.last_movement

    def reset_link_utilization(self) -> None:
        """Restart link-utilization accounting (e.g. at measurement start)."""
        for link in self.links.values():
            link.reset_utilization(self.now)

    def mean_link_utilization(self):
        """Network-average (flit, SM, idle) link-cycle shares."""
        flit = sm = 0.0
        links = list(self.links.values())
        for link in links:
            f, s, _ = link.utilization(self.now)
            flit += f
            sm += s
        count = max(1, len(links))
        flit /= count
        sm /= count
        return flit, sm, max(0.0, 1.0 - flit - sm)
