#!/usr/bin/env python
"""Quickstart: a 1-VC mesh with fully adaptive routing, kept deadlock-free
by SPIN.

This is the paper's headline capability in ~40 lines: *truly one-VC fully
adaptive routing* — impossible under Dally's or Duato's theories — running
at a load where deadlocks demonstrably occur, with SPIN detecting and
resolving each one by synchronized packet rotation.

Run:
    python examples/quickstart.py
"""

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.network.network import Network
from repro.routing.favors import FavorsMinimal
from repro.stats.sweep import run_point
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern


def build_network():
    """An 8x8 mesh, one VC per port, FAvORS-Min routing, SPIN recovery."""
    return Network(
        topology=MeshTopology(8, 8),
        config=NetworkConfig(vcs_per_vnet=1),
        routing=FavorsMinimal(seed=1),
        spin=SpinParams(tdd=64),
        seed=1,
    )


RATE = 0.12  # the saturation edge of this 1-VC substrate


def build_traffic(network, rate, stop_at):
    """Uniform random traffic at a deadlock-prone load (1/5-flit mix)."""
    pattern = make_pattern("uniform", network.topology.num_nodes)
    return SyntheticTraffic(network, pattern, injection_rate=rate,
                            seed=1, stop_at=stop_at)


def main():
    sim_config = SimulationConfig(warmup_cycles=500, measure_cycles=3000,
                                  drain_cycles=4000)
    print("Simulating an 8x8 mesh: 1 VC, fully adaptive FAvORS-Min + SPIN")
    print(f"  offered load {RATE} flits/node/cycle, "
          f"{sim_config.total_cycles} cycles total ...")
    network, point = run_point(build_network, build_traffic, sim_config,
                               injection_rate=RATE)

    events = point.events
    print("\nResults")
    print(f"  mean packet latency : {point.mean_latency:8.1f} cycles")
    print(f"  p99 packet latency  : {point.p99_latency:8.1f} cycles")
    print(f"  received throughput : {point.throughput:8.3f} flits/node/cycle")
    print(f"  delivery ratio      : {point.delivery_ratio:8.3f}")
    print("\nSPIN activity")
    print(f"  probes sent         : {events.get('probes_sent', 0):6d}")
    print(f"  probes returned     : {events.get('probes_returned', 0):6d}")
    print(f"  moves completed     : {events.get('moves_returned', 0):6d}")
    print(f"  spins performed     : {events.get('spins', 0):6d}")
    print(f"  VC-hops spun        : {events.get('spin_hops', 0):6d}")
    if events.get("spins", 0):
        print("\nEvery spin resolved a cyclic buffer dependency that would "
              "have wedged this 1-VC network forever — and note how few "
              "were needed: deadlocks are rare events even at saturation "
              "(the premise of recovery-based deadlock freedom, paper "
              "Sec. II-F).")


if __name__ == "__main__":
    main()
