"""Unit tests for the SPIN control-plane model checker (repro.verify.model)."""

import json

import pytest

from repro.verify.model import (
    MUTATIONS,
    PROPERTY_TO_INVARIANT,
    ModelChecker,
    ModelConfig,
    canonical,
    initial_state,
    project,
)
from repro.verify.model.designs import DESIGNS


def check(design_name, **config_overrides):
    design = DESIGNS[design_name]
    config = design.model_config(**config_overrides)
    return ModelChecker(
        config, weights=design.weights(),
        persistence_bound=design.persistence_bound(),
    ).run(max_states=50_000)


class TestStateSpace:
    def test_canonicalization_collapses_rotations(self):
        state = initial_state(4, probe_budget=1, drop_budget=0,
                              initiators=None)
        for shift in range(4):
            assert canonical(state.rotated(shift)) == canonical(state)

    def test_projection_shape(self):
        state = initial_state(3, probe_budget=1, drop_budget=0,
                              initiators=1)
        shape = project(state)
        assert len(shape) == 3
        for fsm, frozen, latch in shape:
            assert isinstance(fsm, str)
            assert isinstance(frozen, bool)
            assert latch in ("-", "self", "other")

    def test_max_states_cap_reports_incomplete(self):
        result = check("ring3", initiators=None)
        capped = ModelChecker(
            DESIGNS["ring3"].model_config(initiators=None),
            weights=DESIGNS["ring3"].weights(),
            persistence_bound=DESIGNS["ring3"].persistence_bound(),
        ).run(max_states=min(10, result.visited - 1))
        assert result.complete
        assert not capped.complete


class TestSingleInitiator:
    """The pinned lossless single-initiator mode: the bounds prover."""

    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_exhausts_and_proves_bounds(self, name):
        result = check(name, initiators=1)
        assert result.complete and result.ok
        live = result.liveness
        assert live is not None
        assert live.acyclic and live.live
        assert live.resolved_terminals == live.terminal_states == 1
        # The exhaustively computed worst-case recovery sits far inside
        # the theory's persistence bound — the paper's liveness claim.
        assert live.bounds_proved is True
        assert live.detection_cycles <= live.recovery_cycles
        assert live.recovery_cycles <= live.persistence_bound

    def test_state_count_grows_with_loop(self):
        small = check("ring3", initiators=1)
        large = check("ring4", initiators=1)
        assert small.visited < large.visited


class TestRaceMode:
    def test_ring3_race_safe_and_live(self):
        result = check("ring3", initiators=None)
        assert result.complete and result.ok
        assert result.counterexample is None
        live = result.liveness
        assert live.live
        assert live.resolved_terminals >= 1
        # Mutual busy-kill standoffs may degrade cleanly, never wedge.
        assert not live.stuck_terminals

    def test_race_explores_rival_interleavings(self):
        single = check("ring3", initiators=1)
        race = check("ring3", initiators=None)
        assert race.visited > 10 * single.visited
        # Rival initiators kill each other's rounds — kill_moves exist
        # only when recoveries race.
        assert "deliver kill_move" in race.action_counts
        assert "deliver kill_move" not in single.action_counts

    def test_drop_budget_enlarges_space(self):
        lossless = check("ring3", initiators=None)
        lossy = check("ring3", initiators=None, drop_budget=1)
        assert lossy.complete and lossy.ok
        assert lossy.visited > lossless.visited


class TestMutations:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_yields_counterexample(self, mutation):
        result = check("ring3", initiators=None, mutation=mutation)
        cex = result.counterexample
        assert cex is not None, f"mutation {mutation} went undetected"
        assert cex.violation.invariant \
            == PROPERTY_TO_INVARIANT[cex.violation.prop]
        # BFS order makes the counterexample minimal: a strictly shorter
        # prefix of the same run is violation-free by construction.
        assert cex.depth == len(cex.trace) > 0
        assert "property" in cex.describe()

    def test_each_mutation_maps_to_distinct_family(self):
        families = {
            check("ring3", initiators=None, mutation=mutation)
            .counterexample.violation.invariant
            for mutation in MUTATIONS
        }
        assert families == {"fsm_transition", "freeze_token_uniqueness",
                            "deadlock_persistence"}


class TestSummary:
    def test_summary_is_json_ready(self):
        result = check("ring3", initiators=1)
        payload = json.loads(json.dumps(result.summary()))
        assert payload["format"] == "repro.model-check/v1"
        assert payload["visited_states"] == result.visited
        assert payload["complete"] is True
        assert payload["liveness"]["bounds_proved"] is True

    def test_summary_carries_counterexample(self):
        result = check("ring3", initiators=None,
                       mutation="freeze_ignores_state_guard")
        payload = result.summary()
        assert payload["ok"] is False
        assert payload["counterexample"]["invariant"] == "fsm_transition"
        assert len(payload["counterexample"]["actions"]) \
            == result.counterexample.depth


class TestCli:
    def test_model_check_clean_run(self, capsys, tmp_path):
        from repro.cli import main

        artifact = tmp_path / "summary.json"
        code = main(["model-check", "--design", "mesh2x2",
                     "--scheme", "spin", "--quiet",
                     "--output", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "visited states" in out
        assert "bounds proved" in out and "YES" in out
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "repro.model-check/v1"
        assert payload["design"] == "mesh2x2"
        assert payload["complete"] is True
        assert payload["telemetry"]["progress_reports"] >= 1

    def test_model_check_mutation_fails(self, capsys):
        from repro.cli import main

        code = main(["model-check", "--design", "ring3", "--race",
                     "--quiet", "--mutation",
                     "freeze_ignores_state_guard"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fsm_transition" in out

    def test_model_check_rejects_unknown_design(self):
        from repro.cli import main
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["model-check", "--design", "mesh9x9"])
