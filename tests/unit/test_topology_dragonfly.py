"""Unit tests for the dragonfly topology."""

import pytest

from repro.errors import TopologyError
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture
def small():
    """Balanced p=2, a=4, h=2 dragonfly: 9 groups, 36 routers, 72 nodes."""
    return DragonflyTopology(2, 4, 2)


class TestStructure:
    def test_counts(self, small):
        assert small.num_groups == 4 * 2 + 1 == 9
        assert small.num_routers == 36
        assert small.num_nodes == 72

    def test_paper_scale_parameters(self):
        full = DragonflyTopology(4, 8, 4)
        assert full.num_groups == 33
        assert full.num_routers == 264
        assert full.num_nodes == 1056  # the paper's "1024-node" dragonfly

    def test_validate(self, small):
        small.validate()

    def test_radix(self, small):
        # a-1 local + h global channels.
        assert all(small.radix(r) == 3 + 2 for r in range(small.num_routers))

    def test_terminals_per_router(self, small):
        assert small.router_of_node(0) == 0
        assert small.router_of_node(1) == 0
        assert small.router_of_node(2) == 1

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            DragonflyTopology(1, 1, 1)


class TestGroups:
    def test_group_of(self, small):
        assert small.group_of(0) == 0
        assert small.group_of(4) == 1
        assert small.local_index(5) == 1

    def test_intra_group_fully_connected(self, small):
        for group in range(small.num_groups):
            routers = [small.router_in_group(group, i) for i in range(small.a)]
            for r in routers:
                neighbors = {
                    peer for peer, _, _ in small.neighbors(r).values()
                }
                for peer in routers:
                    if peer != r:
                        assert peer in neighbors

    def test_every_group_pair_has_exactly_one_channel(self, small):
        pairs = set()
        for link in small.links():
            src_group = small.group_of(link.src)
            dst_group = small.group_of(link.dst)
            if src_group != dst_group:
                assert (src_group, dst_group) not in pairs
                pairs.add((src_group, dst_group))
        expected = small.num_groups * (small.num_groups - 1)
        assert len(pairs) == expected

    def test_gateway_inverse(self, small):
        for src in range(small.num_groups):
            for dst in range(small.num_groups):
                if src == dst:
                    continue
                router, port = small.global_gateway(src, dst)
                assert small.group_of(router) == src
                local_port_index = port - (small.a - 1)
                assert small.global_channel_target(router, local_port_index) == dst

    def test_global_links_have_higher_latency(self, small):
        for link in small.links():
            crosses_groups = small.group_of(link.src) != small.group_of(link.dst)
            assert link.latency == (3 if crosses_groups else 1)

    def test_is_global_port(self, small):
        assert not small.is_global_port(0)
        assert not small.is_global_port(small.a - 2)
        assert small.is_global_port(small.a - 1)


class TestDistances:
    def test_min_hops_same_group(self, small):
        assert small.min_hops(0, 1) == 1
        assert small.min_hops(0, 0) == 0

    def test_min_hops_cross_group_at_most_three(self, small):
        for src in range(small.num_routers):
            for dst in range(small.num_routers):
                assert small.min_hops(src, dst) <= 3

    def test_min_hops_is_exact_graph_distance(self, small):
        bfs = small._all_pairs_hops()
        for src in range(small.num_routers):
            for dst in range(small.num_routers):
                assert small.min_hops(src, dst) == bfs[src][dst], (src, dst)

    def test_canonical_path_bounds_graph_distance(self, small):
        # The local-global-local path always exists, so the true distance
        # never exceeds it; shared-gateway shortcuts may beat it.
        for src in range(small.num_routers):
            for dst in range(small.num_routers):
                assert small.min_hops(src, dst) <= small.canonical_min_hops(src, dst)
