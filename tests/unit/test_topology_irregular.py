"""Unit tests for irregular topologies (faulty mesh, random graphs)."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.sim.rng import DeterministicRng
from repro.topology.irregular import (
    IrregularTopology,
    faulty_mesh,
    random_regular_topology,
)


class TestIrregularTopology:
    def test_wraps_arbitrary_graph(self):
        graph = nx.cycle_graph(5)
        topo = IrregularTopology(graph)
        topo.validate()
        assert topo.num_routers == 5
        assert all(topo.radix(r) == 2 for r in range(5))

    def test_port_assignment_deterministic(self):
        graph = nx.path_graph(4)
        a = IrregularTopology(graph)
        b = IrregularTopology(nx.path_graph(4))
        assert [a.port_toward(1, 0), a.port_toward(1, 2)] == [
            b.port_toward(1, 0), b.port_toward(1, 2)]

    def test_port_toward_non_adjacent_raises(self):
        topo = IrregularTopology(nx.path_graph(4))
        with pytest.raises(TopologyError):
            topo.port_toward(0, 3)

    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(TopologyError):
            IrregularTopology(graph)

    def test_rejects_bad_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(TopologyError):
            IrregularTopology(graph)

    def test_per_edge_latency(self):
        graph = nx.path_graph(3)
        topo = IrregularTopology(graph, link_latency={(0, 1): 2, (1, 2): 5})
        latencies = {(l.src, l.dst): l.latency for l in topo.links()}
        assert latencies[(0, 1)] == 2
        assert latencies[(2, 1)] == 5


class TestFaultyMesh:
    def test_removes_requested_links(self):
        base_links = 2 * 3 * 4 + 2 * 4 * 3
        topo = faulty_mesh(4, 4, num_failed_links=5,
                           rng=DeterministicRng(3))
        assert len(topo.links()) == base_links - 2 * 5
        topo.validate()

    def test_stays_connected(self):
        topo = faulty_mesh(4, 4, num_failed_links=8, rng=DeterministicRng(1))
        assert nx.is_connected(topo.graph)

    def test_protected_edges_survive(self):
        protected = [(0, 1)]
        topo = faulty_mesh(4, 4, num_failed_links=6,
                           rng=DeterministicRng(5), protected=protected)
        assert topo.graph.has_edge(0, 1)

    def test_impossible_failure_count_raises(self):
        with pytest.raises(TopologyError):
            faulty_mesh(3, 3, num_failed_links=100)


class TestRandomRegular:
    def test_connected_regular(self):
        topo = random_regular_topology(12, 3, seed=2)
        topo.validate()
        assert all(topo.radix(r) == 3 for r in range(12))
