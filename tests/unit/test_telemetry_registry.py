"""Unit tests for the telemetry metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_records_in_order(self):
        gauge = Gauge(capacity=8)
        for cycle in range(5):
            gauge.record(cycle, cycle * 10)
        assert gauge.samples == [(c, c * 10) for c in range(5)]
        assert gauge.last == (4, 40)

    def test_ring_keeps_most_recent(self):
        gauge = Gauge(capacity=3)
        for cycle in range(7):
            gauge.record(cycle, float(cycle))
        assert gauge.samples == [(4, 4.0), (5, 5.0), (6, 6.0)]
        assert gauge.last == (6, 6.0)

    def test_reducers(self):
        gauge = Gauge(capacity=4)
        for cycle, value in enumerate((1.0, 3.0, 5.0)):
            gauge.record(cycle, value)
        assert gauge.mean() == pytest.approx(3.0)
        assert gauge.maximum() == 5.0
        assert gauge.total() == 9.0

    def test_empty(self):
        gauge = Gauge()
        assert gauge.samples == []
        assert gauge.last is None
        assert gauge.mean() == 0.0
        assert gauge.maximum() == 0.0

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Gauge(capacity=0)


class TestHistogram:
    def test_binning_and_overflow(self):
        histogram = Histogram(edges=(10, 20))
        for value in (5, 10, 11, 25, 100):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 2]  # <=10, <=20, overflow
        assert histogram.observations == 5
        assert histogram.minimum == 5
        assert histogram.maximum == 100
        assert histogram.mean() == pytest.approx((5 + 10 + 11 + 25 + 100) / 5)

    def test_to_dict_roundtrip_fields(self):
        histogram = Histogram(edges=(1, 2))
        histogram.observe(1)
        data = histogram.to_dict()
        assert data["edges"] == [1, 2]
        assert data["counts"] == [1, 0, 0]
        assert data["observations"] == 1

    def test_empty_mean(self):
        assert Histogram(edges=(1,)).mean() == 0.0

    def test_needs_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram(edges=())


class TestMetricsRegistry:
    def test_create_on_touch_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a", 1) is registry.counter("a", 1)
        assert registry.gauge("g", (0, 1)) is registry.gauge("g", (0, 1))
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.counter("a", 1) is not registry.counter("a", 2)

    def test_family_iteration(self):
        registry = MetricsRegistry()
        registry.counter("stalls", 3).inc(2)
        registry.counter("stalls", 1).inc(1)
        family = registry.family("counter", "stalls")
        assert set(family) == {1, 3}
        assert registry.families("counter") == ["stalls"]
        assert registry.family("gauge", "absent") == {}

    def test_counter_totals(self):
        registry = MetricsRegistry()
        registry.counter("stalls", 0).inc(2)
        registry.counter("stalls", 1).inc(3)
        registry.counter("drops").inc(1)
        assert registry.counter_totals() == {"drops": 1, "stalls": 5}

    def test_top_gauges_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("flits", (0, 1)).record(0, 5)
        registry.gauge("flits", (2, 3)).record(0, 5)
        registry.gauge("flits", (1, 0)).record(0, 9)
        top = registry.top_gauges("flits", 2)
        assert top[0] == ((1, 0), 9.0)
        assert top[1][0] == (0, 1)  # repr tie-break

    def test_top_gauges_reducers(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "x")
        gauge.record(0, 2)
        gauge.record(1, 4)
        assert registry.top_gauges("g", 1, reducer="mean")[0][1] == 3.0
        assert registry.top_gauges("g", 1, reducer="max")[0][1] == 4.0
        with pytest.raises(ConfigurationError):
            registry.top_gauges("g", 1, reducer="median")

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().families("meter")

    def test_gauge_capacity_propagates(self):
        registry = MetricsRegistry(gauge_capacity=2)
        gauge = registry.gauge("g")
        for cycle in range(5):
            gauge.record(cycle, cycle)
        assert len(gauge.samples) == 2
