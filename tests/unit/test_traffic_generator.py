"""Unit tests for synthetic traffic generation, PARSEC proxy and traces."""

import pytest

from repro.config import SpinParams
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.parsec import PARSEC_PROFILES, ParsecWorkload
from repro.traffic.patterns import make_pattern
from repro.traffic.trace import (
    TraceRecord,
    TraceTraffic,
    load_trace,
    record_from_traffic,
    save_trace,
)

from tests.conftest import make_mesh_network


class TestPacketMix:
    def test_paper_default_mix(self):
        mix = PacketMix()
        assert mix.lengths == (1, 5)
        assert mix.mean_length == 3.0

    def test_single(self):
        mix = PacketMix.single(5)
        assert mix.mean_length == 5.0
        from repro.sim.rng import DeterministicRng

        rng = DeterministicRng(1)
        assert all(mix.sample(rng) == 5 for _ in range(20))

    def test_sampling_respects_weights(self):
        from repro.sim.rng import DeterministicRng

        mix = PacketMix(lengths=(1, 5), weights=(0.9, 0.1))
        rng = DeterministicRng(7)
        samples = [mix.sample(rng) for _ in range(2000)]
        ones = samples.count(1) / len(samples)
        assert 0.85 < ones < 0.95

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacketMix(lengths=(1,), weights=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            PacketMix(lengths=(1, 5), weights=(0.0, 0.0))


class TestSyntheticTraffic:
    def test_offered_load_matches_rate(self):
        network = make_mesh_network(side=4, vcs=3)
        network.stats.open_window(0, 10_000)
        traffic = SyntheticTraffic(network, make_pattern("uniform", 16),
                                   injection_rate=0.12, seed=9)
        for cycle in range(10_000):
            traffic.phase_inject(cycle)
        flits = network.stats.measured_flits_created
        offered = flits / (10_000 * 16)
        assert offered == pytest.approx(0.12, rel=0.1)

    def test_stop_at_halts_generation(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        traffic = SyntheticTraffic(network, make_pattern("uniform", 16),
                                   0.5, seed=2, stop_at=100)
        for cycle in range(300):
            traffic.phase_inject(cycle)
        created = network.stats.packets_created
        traffic2_created_after = created
        assert created > 0
        for cycle in range(300, 600):
            traffic.phase_inject(cycle)
        assert network.stats.packets_created == traffic2_created_after

    def test_zero_rate_generates_nothing(self):
        network = make_mesh_network()
        traffic = SyntheticTraffic(network, make_pattern("uniform", 16),
                                   0.0, seed=2)
        for cycle in range(500):
            traffic.phase_inject(cycle)
        assert network.stats.packets_created == 0

    def test_pattern_size_must_match(self):
        network = make_mesh_network(side=4)
        with pytest.raises(ConfigurationError):
            SyntheticTraffic(network, make_pattern("uniform", 64), 0.1)

    def test_deterministic_given_seed(self):
        def creations(seed):
            network = make_mesh_network()
            network.stats.open_window(0, None)
            traffic = SyntheticTraffic(network, make_pattern("uniform", 16),
                                       0.3, seed=seed)
            for cycle in range(200):
                traffic.phase_inject(cycle)
            return [(nic.node, len(q)) for nic in network.nics
                    for q in nic.queues]

        assert creations(5) == creations(5)
        assert creations(5) != creations(6)


class TestParsec:
    def test_profiles_cover_suite(self):
        assert len(PARSEC_PROFILES) == 10
        assert "canneal" in PARSEC_PROFILES
        assert all(p.rate > 0 for p in PARSEC_PROFILES.values())

    def test_requires_multiple_vnets(self):
        network = make_mesh_network(num_vnets=1)
        with pytest.raises(ConfigurationError):
            ParsecWorkload(network, PARSEC_PROFILES["canneal"])

    def test_generates_requests_with_replies(self):
        network = make_mesh_network(side=4, vcs=2, num_vnets=3,
                                    spin=SpinParams(tdd=64))
        network.stats.open_window(0, 3000)
        workload = ParsecWorkload(network, PARSEC_PROFILES["canneal"], seed=4)
        sim = Simulator()
        sim.register(workload)
        sim.register(network)
        sim.run(3000)
        workload.stop_at = 0
        sim.run(3000)
        stats = network.stats
        assert stats.packets_created > 0
        # Replies double the packet count relative to requests.
        assert stats.packets_delivered == pytest.approx(
            2 * workload_requests(network), abs=2)

    def test_application_load_is_light(self):
        # The paper's premise: real applications inject far below
        # deadlocking rates; the heaviest proxy stays under 0.05.
        assert max(p.rate for p in PARSEC_PROFILES.values()) <= 0.05


def workload_requests(network):
    return sum(nic.packets_created for nic in network.nics) // 2


class TestTrace:
    def test_roundtrip(self, tmp_path):
        records = [
            TraceRecord(cycle=0, src=0, dst=5, length=1),
            TraceRecord(cycle=3, src=2, dst=7, length=5, vnet=1,
                        reply_length=1),
        ]
        path = tmp_path / "trace.jsonl"
        save_trace(records, str(path))
        assert load_trace(str(path)) == records

    def test_replay_delivers_trace(self):
        network = make_mesh_network(side=4, vcs=2, num_vnets=2)
        network.stats.open_window(0, None)
        records = [TraceRecord(cycle=i, src=i % 16, dst=(i + 5) % 16,
                               length=1) for i in range(20)]
        replay = TraceTraffic(network, records)
        sim = Simulator()
        sim.register(replay)
        sim.register(network)
        sim.run(500)
        assert network.stats.packets_delivered == 20

    def test_replay_validates_nodes(self):
        network = make_mesh_network(side=4)
        with pytest.raises(ConfigurationError):
            TraceTraffic(network, [TraceRecord(0, 0, 99, 1)])

    def test_record_from_traffic(self):
        network = make_mesh_network(side=4)
        source = SyntheticTraffic(network, make_pattern("uniform", 16),
                                  0.3, seed=8)
        records = record_from_traffic(network, source, cycles=100)
        assert records
        assert all(0 <= r.src < 16 and 0 <= r.dst < 16 for r in records)
        assert network.total_backlog() == 0  # drained into the trace
