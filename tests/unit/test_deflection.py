"""Unit tests for the deflection-routing (Table I) baseline."""

import pytest

from repro.deflection.network import DeflectionNetwork
from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology
from repro.traffic.patterns import make_pattern


def drive(network, rate, cycles, inject_until=None, seed=3, pattern=None):
    """Bernoulli single-flit traffic on a deflection network."""
    rng = DeterministicRng(seed)
    pattern = pattern or make_pattern(
        "uniform", network.topology.num_nodes)
    inject_until = inject_until if inject_until is not None else cycles
    for cycle in range(cycles):
        if cycle < inject_until:
            for node in range(network.topology.num_nodes):
                if rng.bernoulli(rate):
                    dst = pattern.dest(node, rng)
                    if dst is not None:
                        network.offer(node, dst, cycle)
        network.step()
    return network


class TestBasics:
    def test_single_flit_delivery(self):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=1)
        network.stats.open_window(0, None)
        network.offer(0, 15, 0)
        network.run(50)
        assert network.stats.packets_delivered == 1
        assert network.is_drained()

    def test_unloaded_flit_routes_minimally(self):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=1)
        network.stats.open_window(0, None)
        network.offer(0, 15, 0)
        network.run(50)
        assert network.stats.hop_counts == [6]

    def test_rejects_self_addressed(self):
        network = DeflectionNetwork(MeshTopology(4, 4))
        with pytest.raises(ConfigurationError):
            network.offer(3, 3, 0)


class TestDeadlockFreedomByConstruction:
    @pytest.mark.parametrize("rate", [0.05, 0.2, 0.4])
    def test_never_wedges_at_any_load(self, rate):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=2)
        network.stats.open_window(0, 1000)
        drive(network, rate, cycles=1000, inject_until=600)
        before = network.stats.packets_delivered
        network.run(3000)
        # Flits always move: everything in the network eventually ejects.
        assert network.flits_in_network() == 0
        assert network.stats.packets_delivered >= before

    def test_conservation(self):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=4)
        network.stats.open_window(0, None)
        drive(network, 0.2, cycles=800, inject_until=500)
        network.run(3000)
        stats = network.stats
        assert stats.packets_delivered + network.backlog() == (
            stats.packets_created)


class TestDeflectionBehaviour:
    def test_deflections_appear_under_load(self):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=5)
        network.stats.open_window(0, None)
        drive(network, 0.35, cycles=1500, inject_until=1500)
        assert network.total_deflections > 0

    def test_no_deflections_at_trivial_load(self):
        network = DeflectionNetwork(MeshTopology(4, 4), seed=5)
        network.stats.open_window(0, None)
        network.offer(0, 15, 0)
        network.offer(15, 0, 0)
        network.run(60)
        assert network.total_deflections == 0

    def test_latency_exceeds_buffered_at_high_load(self):
        # Table I / Sec. II-D: deflection pays higher latency when loaded.
        network = DeflectionNetwork(MeshTopology(4, 4), seed=6)
        network.stats.open_window(0, 2000)
        drive(network, 0.30, cycles=2000, inject_until=1200)
        network.run(2000)
        low = DeflectionNetwork(MeshTopology(4, 4), seed=6)
        low.stats.open_window(0, 2000)
        drive(low, 0.02, cycles=2000, inject_until=1200)
        low.run(2000)
        assert network.stats.latency().mean > low.stats.latency().mean

    def test_works_on_torus(self):
        network = DeflectionNetwork(TorusTopology(4, 4), seed=7)
        network.stats.open_window(0, None)
        drive(network, 0.15, cycles=800, inject_until=500)
        network.run(2000)
        assert network.flits_in_network() == 0
        assert network.stats.packets_delivered > 0
