"""The metrics registry: typed, component-keyed measurement families.

Telemetry keeps its measurements in one :class:`MetricsRegistry` per run so
every consumer (exporters, the ``report`` CLI, tests) reads a single,
uniformly-shaped store instead of poking at observer internals.  Three
metric kinds cover the paper's temporal claims:

* :class:`Counter`   — monotone event tallies (credit stalls, spans by
  outcome).
* :class:`Gauge`     — bounded time-series of sampled values (per-router VC
  occupancy, per-link utilization deltas), each point ``(cycle, value)``.
* :class:`Histogram` — windowed distributions with fixed bin edges
  (detection latency, recovery latency, spins per episode).

Families are named (``"router_occupancy"``) and keyed by component —
a router id, a ``(router, port)`` link key, or ``None`` for network-wide
series — so ``registry.gauge("router_occupancy", 3)`` is *the* occupancy
series of router 3, wherever it is consulted from.

Everything here is plain-python and deterministic: identical simulations
produce identical registries, which is what lets telemetry counters merge
into :class:`~repro.stats.sweep.SweepPoint.events` without perturbing the
``--jobs N`` byte-identity guarantee.  See docs/TELEMETRY.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Default histogram bin edges for cycle-latency distributions (powers of
#: two: SPIN latencies span detection thresholds of 8..128+ cycles).
LATENCY_BINS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class Counter:
    """A monotone event tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the tally."""
        if amount < 0:
            raise ConfigurationError("counters are monotone",
                                     amount=amount)
        self.value += amount


class Gauge:
    """A bounded time-series of sampled values.

    Keeps at most ``capacity`` most-recent samples (a ring on a python
    list); the series is always in ascending-cycle order.
    """

    __slots__ = ("capacity", "_samples", "_start")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError("gauge capacity must be >= 1",
                                     capacity=capacity)
        self.capacity = capacity
        self._samples: List[Tuple[int, float]] = []
        self._start = 0  # ring head when saturated

    def record(self, cycle: int, value: float) -> None:
        """Append one sample (cycles must be non-decreasing)."""
        samples = self._samples
        if len(samples) < self.capacity:
            samples.append((cycle, value))
        else:
            samples[self._start] = (cycle, value)
            self._start = (self._start + 1) % self.capacity

    @property
    def samples(self) -> List[Tuple[int, float]]:
        """The retained samples, oldest first."""
        return self._samples[self._start:] + self._samples[:self._start]

    @property
    def last(self) -> Optional[Tuple[int, float]]:
        """Most recent ``(cycle, value)``, or None when empty."""
        if not self._samples:
            return None
        return self._samples[(self._start - 1) % len(self._samples)]

    def mean(self) -> float:
        """Mean of the retained values (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(v for _, v in self._samples) / len(self._samples)

    def maximum(self) -> float:
        """Max of the retained values (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return max(v for _, v in self._samples)

    def total(self) -> float:
        """Sum of the retained values (useful for delta-series gauges)."""
        return sum(v for _, v in self._samples)


class Histogram:
    """A fixed-edge histogram of observed values.

    ``edges`` are the *upper* bounds of the finite bins; one overflow bin
    catches everything beyond the last edge.  ``counts[i]`` tallies values
    ``v`` with ``edges[i-1] < v <= edges[i]``.
    """

    __slots__ = ("edges", "counts", "observations", "total", "minimum",
                 "maximum")

    def __init__(self, edges: Iterable[float] = LATENCY_BINS) -> None:
        self.edges = tuple(sorted(edges))
        if not self.edges:
            raise ConfigurationError("histogram needs at least one edge")
        self.counts = [0] * (len(self.edges) + 1)
        self.observations = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Count one observation into its bin."""
        self.counts[self._bin(value)] += 1
        self.observations += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum,
                                                              value)
        self.maximum = value if self.maximum is None else max(self.maximum,
                                                              value)

    def _bin(self, value: float) -> int:
        for index, edge in enumerate(self.edges):
            if value <= edge:
                return index
        return len(self.edges)

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        if not self.observations:
            return 0.0
        return self.total / self.observations

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary of this histogram."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "observations": self.observations,
            "mean": self.mean(),
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named, component-keyed families of counters, gauges, histograms.

    Metric accessors create on first touch, so observers never pre-declare
    families; consumers iterate :meth:`family` /  :meth:`families`.
    """

    def __init__(self, gauge_capacity: int = 4096) -> None:
        self.gauge_capacity = gauge_capacity
        self._counters: Dict[str, Dict[object, Counter]] = {}
        self._gauges: Dict[str, Dict[object, Gauge]] = {}
        self._histograms: Dict[str, Dict[object, Histogram]] = {}

    # -- accessors (create on first touch) -----------------------------
    def counter(self, family: str, key: object = None) -> Counter:
        """The counter of ``family`` for one component key."""
        return self._counters.setdefault(family, {}).setdefault(
            key, Counter())

    def gauge(self, family: str, key: object = None) -> Gauge:
        """The gauge series of ``family`` for one component key."""
        table = self._gauges.setdefault(family, {})
        gauge = table.get(key)
        if gauge is None:
            gauge = table[key] = Gauge(self.gauge_capacity)
        return gauge

    def histogram(self, family: str, key: object = None,
                  edges: Iterable[float] = LATENCY_BINS) -> Histogram:
        """The histogram of ``family`` for one component key."""
        table = self._histograms.setdefault(family, {})
        histogram = table.get(key)
        if histogram is None:
            histogram = table[key] = Histogram(edges)
        return histogram

    # -- iteration ------------------------------------------------------
    def family(self, kind: str, family: str) -> Dict[object, object]:
        """All ``key -> metric`` of one family (empty dict when absent)."""
        store = self._store(kind)
        return dict(store.get(family, {}))

    def families(self, kind: str) -> List[str]:
        """Sorted family names of one metric kind."""
        return sorted(self._store(kind))

    def _store(self, kind: str) -> Dict[str, Dict[object, object]]:
        try:
            return {"counter": self._counters, "gauge": self._gauges,
                    "histogram": self._histograms}[kind]
        except KeyError:
            raise ConfigurationError(
                "unknown metric kind",
                kind=kind, known=["counter", "gauge", "histogram"],
            ) from None

    # -- summaries ------------------------------------------------------
    def counter_totals(self) -> Dict[str, int]:
        """``family -> summed value`` across keys (deterministic order)."""
        return {
            family: sum(c.value for c in table.values())
            for family, table in sorted(self._counters.items())
        }

    def top_gauges(self, family: str, k: int,
                   reducer: str = "total") -> List[Tuple[object, float]]:
        """The ``k`` hottest keys of a gauge family by a reducer.

        Reducers: ``"total"`` (sum of samples — right for delta series),
        ``"mean"``, ``"max"``.  Ties break on the key's repr so the order
        is deterministic.
        """
        if reducer not in ("total", "mean", "max"):
            raise ConfigurationError("unknown gauge reducer",
                                     reducer=reducer)
        table = self._gauges.get(family, {})
        scored = []
        for key, gauge in table.items():
            value = {"total": gauge.total, "mean": gauge.mean,
                     "max": gauge.maximum}[reducer]()
            scored.append((key, value))
        scored.sort(key=lambda item: (-item[1], repr(item[0])))
        return scored[:k]
