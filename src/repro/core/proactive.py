"""Proactive spinning — SPIN as a deadlock *avoidance* scheme.

The paper's footnote 3: "SPIN could be implemented as an avoidance scheme
via proactive spinning, though we do not explore that in this work."  The
follow-on DRAIN work (HPCA 2020) built exactly this: instead of detecting
deadlocks with probes, periodically rotate the packets sitting on a
predefined closed walk through every router.  Any deadlocked ring shares
buffers with the walk, so the forced rotation breaks it — no detection, no
probes, no loop buffer.

This implementation:

* builds a closed walk visiting every router (an Euler tour of a spanning
  tree — each tree edge is traversed once per direction, so every chain
  buffer along the walk is distinct);
* designates VC 0 of each walk-arrival input port as the *drain chain*;
* when the network has made no forward progress for ``stall_threshold``
  cycles, synchronously rotates every movable occupant of the chain one
  step along the walk (same simultaneity argument as the reactive spin:
  each packet lands in the buffer its successor vacates);
* rotated packets may be misrouted (the walk ignores their destinations);
  fully adaptive routing re-steers them afterwards, and the misroute is
  charged to the packet like any non-minimal hop.

Cost trade-off vs the reactive framework (measured in the ablation bench):
no probe traffic and no per-loop coordination latency, but spins touch
packets that were never deadlocked.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, InvariantViolation


class ProactiveSpinPlane:
    """Control plane performing periodic forced drains of a global chain.

    Args:
        stall_threshold: Drain when no flit has moved for this many cycles
            while packets are resident.
        period: Minimum cycles between consecutive drains.
    """

    def __init__(self, stall_threshold: int = 64, period: int = 16) -> None:
        if stall_threshold < 1 or period < 1:
            raise ConfigurationError(
                "stall_threshold and period must be >= 1")
        self.stall_threshold = stall_threshold
        self.period = period
        self.network = None
        #: Chain steps: (router, arrival inport, next outport).
        self._chain: List[Tuple[int, int, int]] = []
        self._last_drain = -(10 ** 9)
        self.drains_performed = 0
        self.packets_drained = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def bind(self, network) -> None:
        self.network = network
        self._chain = self._build_chain()

    def _build_chain(self) -> List[Tuple[int, int, int]]:
        """Closed walk over a spanning tree (Euler tour), as chain steps.

        Returns steps ``(router, inport, outport)``: the walk arrives at
        ``router`` through ``inport`` and leaves through ``outport``.  Every
        (router, inport) pair is unique because each directed tree edge
        appears exactly once in an Euler tour.
        """
        network = self.network
        topology = network.topology
        # Spanning tree by BFS.
        children: Dict[int, List[int]] = {r: [] for r in
                                          range(topology.num_routers)}
        visited = {0}
        frontier = [0]
        while frontier:
            router = frontier.pop(0)
            for _port, (neighbor, _, _) in sorted(
                    topology.neighbors(router).items()):
                if neighbor not in visited:
                    visited.add(neighbor)
                    children[router].append(neighbor)
                    frontier.append(neighbor)
        if len(visited) != topology.num_routers:
            raise ConfigurationError("topology is not connected")

        def port_between(src: int, dst: int) -> Tuple[int, int]:
            for port, (neighbor, dst_port, _) in (
                    topology.neighbors(src).items()):
                if neighbor == dst:
                    return port, dst_port
            raise ConfigurationError(f"{src} and {dst} not adjacent")

        # Euler tour: the sequence of directed edges of the walk.
        edges: List[Tuple[int, int]] = []

        def tour(router: int) -> None:
            for child in children[router]:
                edges.append((router, child))
                tour(child)
                edges.append((child, router))

        tour(0)
        if not edges:
            raise ConfigurationError("need at least two routers to drain")
        # Convert consecutive edges into (router, inport, outport) steps.
        steps = []
        count = len(edges)
        for i in range(count):
            src, dst = edges[i]
            _, inport = port_between(src, dst)
            next_src, next_dst = edges[(i + 1) % count]
            if next_src != dst:
                # Survives ``python -O`` (a bare assert would not) and
                # names the broken step; this is a builder bug, never a
                # property of the simulated design.
                raise InvariantViolation(
                    "Euler walk is not contiguous",
                    invariant="drain_chain", step=i, src=src, dst=dst,
                    next_src=next_src, next_dst=next_dst)
            outport, _ = port_between(next_src, next_dst)
            steps.append((dst, inport, outport))
        return steps

    def chain_length(self) -> int:
        """Number of buffers in the drain chain."""
        return len(self._chain)

    # ------------------------------------------------------------------
    # Per-cycle hook
    # ------------------------------------------------------------------
    def phase_control(self, cycle: int) -> None:
        network = self.network
        if cycle - self._last_drain < self.period:
            return
        if network.idle_cycles() < self.stall_threshold:
            return
        if network.packets_in_flight() == 0:
            return
        self._drain(cycle)
        self._last_drain = cycle

    # ------------------------------------------------------------------
    # The drain
    # ------------------------------------------------------------------
    def _chain_vc(self, step_index: int):
        router_id, inport, _ = self._chain[step_index]
        return self.network.routers[router_id].inports[inport][0]

    def _occupant_movable(self, vc, outport: int, router, now: int) -> bool:
        packet = vc.packet
        return (
            packet is not None
            and not vc.frozen
            and vc.fully_arrived(now)
            and router.out_links[outport].is_free(now)
        )

    def _drain(self, now: int) -> None:
        """Rotate movable chain occupants one step along the walk.

        An occupant moves iff its own hop is possible *and* its target
        buffer will be free this cycle (empty, or vacated by an occupant
        that itself moves) — computed by a backward fixpoint over the
        cyclic chain.
        """
        network = self.network
        chain = self._chain
        count = len(chain)
        movable = [False] * count
        occupied = [self._chain_vc(i).packet is not None for i in range(count)]
        # A target is usable if idle *now*, or occupied by a packet that
        # itself moves this drain (simultaneous vacate).  An empty buffer
        # still draining a previous packet's tail is not usable.
        idle_now = [self._chain_vc(i).is_idle(now) for i in range(count)]
        # Iterate until stable (cyclic dependency: everyone-moves is valid
        # when the whole chain is full, so start optimistic).
        for i in range(count):
            router_id, _inport, outport = chain[i]
            router = network.routers[router_id]
            movable[i] = self._occupant_movable(
                self._chain_vc(i), outport, router, now)
        changed = True
        while changed:
            changed = False
            for i in range(count):
                if not movable[i]:
                    continue
                target = (i + 1) % count
                target_free = idle_now[target] or (
                    occupied[target] and movable[target])
                if not target_free:
                    movable[i] = False
                    changed = True

        moving = [i for i in range(count) if movable[i]]
        if not moving:
            return
        # Capture packets, then vacate, then land — all at ``now``.
        packets = {i: self._chain_vc(i).packet for i in moving}
        config = network.config
        for i in moving:
            router_id, _inport, outport = chain[i]
            router = network.routers[router_id]
            vc = self._chain_vc(i)
            packet = vc.release(now)
            router.out_links[outport].occupy(now, packet.length)
            router.port_busy[vc.inport] = now + packet.length - 1
            network.note_vc_released(router, vc)
        for i in moving:
            router_id, _inport, outport = chain[i]
            router = network.routers[router_id]
            packet = packets[i]
            target_vc = self._chain_vc((i + 1) % count)
            link = router.out_links[outport]
            was_min = network.topology.min_hops(router_id,
                                                packet.routing_target)
            target_vc.free_at = min(target_vc.free_at, now)
            target_vc.reserve(packet, now, link.latency,
                              config.router_latency)
            packet.hops += 1
            packet.spins += 1
            now_min = network.topology.min_hops(target_vc.router,
                                                packet.routing_target)
            if now_min >= was_min:
                packet.misroutes += 1
            packet.current_request = None
            network.routing.on_hop(packet, router, outport)
            network.stats.count("flit_hops", packet.length)
            network.note_vc_reserved(network.routers[target_vc.router],
                                     target_vc)
        network.note_movement()
        self.drains_performed += 1
        self.packets_drained += len(moving)
        network.stats.count("proactive_drains")
        network.stats.count("proactive_packets_drained", len(moving))
