"""Telemetry determinism: byte-identity off, reproducible counts on.

The PR-wide contract: with telemetry *disabled* a fixed-seed run is
byte-identical to one that never imported telemetry (no observer is
registered, so the hot loop's schedule is unchanged); with telemetry
*enabled* the recorded counts are a pure function of the spec, so serial
and ``--jobs N`` sweeps — and repeated runs — agree exactly, and the
measurements differ from a disabled run only by the ``telemetry_*`` event
counters.
"""

from dataclasses import replace

import pytest

from repro.config import SimulationConfig
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import ExperimentSpec


def _spec(telemetry=False, rate=0.08):
    return ExperimentSpec(
        design="mesh:minadaptive-spin-1vc", pattern="uniform",
        injection_rate=rate, seed=3, mesh_side=4, tdd=16,
        sim=SimulationConfig(warmup_cycles=100, measure_cycles=400,
                             drain_cycles=300),
        telemetry=telemetry)


def _strip_telemetry(point):
    events = {name: value for name, value in point.events.items()
              if not name.startswith("telemetry_")}
    return replace(point, events=events)


class TestTelemetryDeterminism:
    def test_enabled_equals_disabled_modulo_telemetry_events(self):
        _, off = _spec(telemetry=False).run()
        _, on = _spec(telemetry=True).run()
        assert any(name.startswith("telemetry_") for name in on.events)
        assert not any(name.startswith("telemetry_")
                       for name in off.events)
        assert _strip_telemetry(on) == off

    def test_enabled_runs_are_reproducible(self):
        _, first = _spec(telemetry=True).run()
        _, second = _spec(telemetry=True).run()
        assert first == second

    def test_jobs_parallel_matches_serial_with_telemetry(self):
        specs = [_spec(telemetry=True, rate=rate)
                 for rate in (0.05, 0.10)]
        serial = ParallelRunner(max_workers=1, backend="serial").run(specs)
        parallel = ParallelRunner(max_workers=2,
                                  backend="process").run(specs)
        assert all(result.ok for result in serial + parallel)
        assert [r.point for r in serial] == [r.point for r in parallel]
        assert all("telemetry_samples" in r.point.events for r in serial)

    def test_spec_serialization_carries_telemetry(self):
        spec = _spec(telemetry=True)
        data = spec.to_dict()
        assert data["telemetry"] is True
        assert ExperimentSpec.from_dict(data) == spec

    def test_env_gate_and_flag_are_equivalent(self, monkeypatch):
        _, flagged = _spec(telemetry=True).run()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        _, gated = _spec(telemetry=False).run()
        assert flagged == gated
