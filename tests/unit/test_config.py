"""Unit tests for configuration validation."""

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.errors import ConfigurationError


class TestNetworkConfig:
    def test_defaults_are_valid(self):
        config = NetworkConfig()
        assert config.vcs_per_vnet == 1
        assert config.buffer_depth >= config.max_packet_length

    def test_total_vcs_multiplies_vnets(self):
        config = NetworkConfig(vcs_per_vnet=3, num_vnets=2)
        assert config.total_vcs == 6

    def test_rejects_zero_vcs(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(vcs_per_vnet=0)

    def test_rejects_zero_vnets(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(num_vnets=0)

    def test_rejects_shallow_buffers_for_vct(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(buffer_depth=2, max_packet_length=5)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(router_latency=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(link_latency=0)

    def test_single_flit_packets_allow_depth_one(self):
        config = NetworkConfig(buffer_depth=1, max_packet_length=1)
        assert config.buffer_depth == 1


class TestSpinParams:
    def test_epoch_is_four_tdd_by_default(self):
        params = SpinParams(tdd=128)
        assert params.epoch_length == 4 * 128

    def test_rejects_bad_tdd(self):
        with pytest.raises(ConfigurationError):
            SpinParams(tdd=0)

    def test_rejects_bad_epoch_factor(self):
        with pytest.raises(ConfigurationError):
            SpinParams(epoch_factor=0)

    def test_rejects_negative_slack(self):
        with pytest.raises(ConfigurationError):
            SpinParams(sync_slack=-1)

    def test_default_matches_paper(self):
        assert SpinParams().tdd == 128
        assert SpinParams().probe_move_enabled
        assert not SpinParams().strict_priority_drop


class TestSimulationConfig:
    def test_total_cycles(self):
        sim = SimulationConfig(warmup_cycles=10, measure_cycles=20,
                               drain_cycles=5)
        assert sim.total_cycles == 35

    def test_rejects_negative_windows(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_cycles=-1)
