"""Property-based tests on topologies, patterns and the RNG."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import DeterministicRng
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology
from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    BitRotation,
    Shuffle,
    Tornado,
    Transpose,
)


class TestTopologyProperties:
    @given(cols=st.integers(2, 7), rows=st.integers(2, 7))
    @settings(max_examples=15, deadline=None)
    def test_mesh_structurally_valid(self, cols, rows):
        mesh = MeshTopology(cols, rows)
        mesh.validate()
        # Hop metric: symmetric, zero on diagonal, triangle inequality.
        a, b, c = 0, mesh.num_routers // 2, mesh.num_routers - 1
        assert mesh.min_hops(a, b) == mesh.min_hops(b, a)
        assert mesh.min_hops(a, a) == 0
        assert mesh.min_hops(a, c) <= mesh.min_hops(a, b) + mesh.min_hops(b, c)

    @given(cols=st.integers(3, 6), rows=st.integers(3, 6))
    @settings(max_examples=10, deadline=None)
    def test_torus_hops_never_exceed_mesh(self, cols, rows):
        torus = TorusTopology(cols, rows)
        mesh = MeshTopology(cols, rows)
        torus.validate()
        for src in range(0, torus.num_routers, 3):
            for dst in range(0, torus.num_routers, 3):
                assert torus.min_hops(src, dst) <= mesh.min_hops(src, dst)

    @given(p=st.integers(1, 3), a=st.integers(2, 5), h=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_dragonfly_structurally_valid(self, p, a, h):
        dfly = DragonflyTopology(p, a, h)
        dfly.validate()
        # Canonical minimal path bounds the graph distance by 3.
        for src in range(0, dfly.num_routers, max(1, dfly.num_routers // 5)):
            for dst in range(0, dfly.num_routers,
                             max(1, dfly.num_routers // 5)):
                assert dfly.min_hops(src, dst) <= 3

    @given(m=st.integers(3, 20))
    @settings(max_examples=10, deadline=None)
    def test_ring_diameter(self, m):
        ring = RingTopology(m)
        ring.validate()
        assert max(ring.min_hops(0, d) for d in range(m)) == m // 2


class TestPatternProperties:
    @given(bits=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_bit_patterns_are_partial_permutations(self, bits):
        n = 1 << bits
        rng = DeterministicRng(0)
        for cls in (BitComplement, BitReverse, BitRotation, Shuffle):
            pattern = cls(n)
            images = [pattern.dest(src, rng) for src in range(n)]
            defined = [d for d in images if d is not None]
            assert len(defined) == len(set(defined)), cls.name
            assert all(0 <= d < n for d in defined)
            # None only ever encodes a self-map.
            for src, dst in enumerate(images):
                assert dst != src

    @given(side=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_grid_transpose_involution(self, side):
        pattern = Transpose(side * side, cols=side)
        rng = DeterministicRng(0)
        for src in range(side * side):
            dst = pattern.dest(src, rng)
            if dst is not None:
                assert pattern.dest(dst, rng) == src

    @given(side=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_tornado_constant_distance(self, side):
        pattern = Tornado(side * side, cols=side)
        rng = DeterministicRng(0)
        deltas = set()
        for src in range(side * side):
            dst = pattern.dest(src, rng)
            if dst is not None:
                deltas.add((dst % side - src % side) % side)
        assert len(deltas) == 1


class TestRngProperties:
    @given(seed=st.integers(0, 2**31 - 1), label=st.text(min_size=1,
                                                         max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_fork_reproducible(self, seed, label):
        a = DeterministicRng(seed).fork(label)
        b = DeterministicRng(seed).fork(label)
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)]

    @given(seed=st.integers(0, 2**31 - 1), low=st.integers(-50, 50),
           span=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_randint_in_bounds(self, seed, low, span):
        rng = DeterministicRng(seed)
        for _ in range(20):
            value = rng.randint(low, low + span)
            assert low <= value <= low + span
