"""Routing algorithm interface.

A routing algorithm answers, once per cycle for every ready head packet:

* :meth:`decide` — which output port does this packet request *now*?  Fully
  adaptive algorithms may answer differently from cycle to cycle as
  congestion evolves; the answer is recorded in ``packet.current_request``
  (SPIN's probes read it).
* :meth:`vc_choices` — which downstream VC classes may the packet occupy
  through that port (Dally-style VC-ordering disciplines restrict this)?

The default :meth:`select` policy implements the adaptive output selection of
the paper's FAvORS algorithm (Sec. V): prefer a random port with an idle
permitted VC; when every permitted VC is busy, wait on the port whose VC has
been active for the least time (a congestion proxy available from credits).
Deterministic algorithms simply return a single candidate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng


class RoutingAlgorithm(ABC):
    """Base class for all routing algorithms."""

    #: Human-readable name used in reports.
    name = "routing"
    #: Whether every hop reduces distance to the routing target.
    minimal = True
    #: Theorem parameter p: maximum misroutes per packet (Sec. III, Case II).
    max_misroutes = 0
    #: Deadlock-freedom theory this algorithm relies on (for reports).
    theory = "SPIN"

    def __init__(self, seed: int = 0) -> None:
        self.rng = DeterministicRng(seed).fork(f"routing:{self.name}")
        self.network = None
        self.topology = None
        self._productive_cache = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, network) -> None:
        """Attach to a network; validates configuration requirements."""
        self.network = network
        self.topology = network.topology
        self._productive_cache = {}
        self._setup()

    def _setup(self) -> None:
        """Algorithm-specific validation/precomputation after binding."""

    def _require_vcs(self, minimum: int) -> None:
        if self.network.config.vcs_per_vnet < minimum:
            raise ConfigurationError(
                f"{self.name} needs at least {minimum} VCs per vnet "
                f"(configured: {self.network.config.vcs_per_vnet})"
            )

    # ------------------------------------------------------------------
    # Per-cycle decision
    # ------------------------------------------------------------------
    def decide(self, router, inport: int, packet: Packet,
               now: int) -> Optional[int]:
        """Request an output port for a head packet this cycle.

        Returns the requested port (possibly an ejection port) and records
        it in ``packet.current_request``.  Returns None when the packet has
        nothing to request (should not happen in practice).
        """
        if packet.reached_phase_target(router.id):
            port = self.network.eject_port_for(packet.dst_node)
            packet.current_request = port
            return port
        candidates = self.candidate_outports(router, packet)
        if not candidates and not self.network.dead_link_count:
            raise RoutingError(
                f"{self.name}: no candidate ports at router {router.id} "
                f"for {packet!r}"
            )
        if self.network.dead_link_count:
            candidates = self._filter_dead_links(router, packet, candidates,
                                                 now)
            if not candidates:
                packet.current_request = None
                return None
        outport = self.select(router, packet, candidates, now)
        packet.current_request = outport
        return outport

    def _filter_dead_links(self, router, packet: Packet,
                           candidates: Sequence[int],
                           now: int) -> Sequence[int]:
        """Graceful degradation around runtime link failures.

        Removes candidates whose output link is dead.  A packet that loses
        some-but-not-all candidates is counted as *rerouted* (once); a
        packet left with no alive candidate is *stranded* — it waits, and
        the fault injector may reclaim it after its strand timeout.
        """
        out_links = router.out_links
        alive = [port for port in candidates
                 if (link := out_links.get(port)) is None or link.up]
        state = packet.route_state
        if alive and len(alive) == len(candidates):
            state.pop("stranded_since", None)
            return candidates
        stats = self.network.stats
        if not alive:
            if "stranded_since" not in state:
                state["stranded_since"] = now
                stats.count("packets_stranded")
            return alive
        state.pop("stranded_since", None)
        if not state.get("rerouted"):
            state["rerouted"] = True
            stats.count("reroutes")
        return alive

    @abstractmethod
    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        """Legal output ports for the packet at this router."""

    def select(self, router, packet: Packet, candidates: Sequence[int],
               now: int) -> int:
        """Pick one port to request among the legal candidates.

        When every permitted VC is busy, the previous cycle's request is
        kept if it is still a legal candidate ("sticky" blocking): a real
        router holds its switch request asserted while blocked.  Stability
        matters to SPIN — probes trace ``current_request`` edges, and a
        wait set that flaps from cycle to cycle breaks probe/move/spin
        chains and serializes recovery.
        """
        if len(candidates) == 1:
            return candidates[0]
        free = [
            port for port in candidates
            if router.downstream_has_idle(
                port, packet.vnet, self.vc_choices(packet, router, port), now)
        ]
        if free:
            return free[0] if len(free) == 1 else self.rng.choice(free)
        previous = packet.current_request
        if previous is not None and previous in candidates:
            return previous
        return self.wait_choice(router, packet, candidates, now)

    def wait_choice(self, router, packet: Packet,
                    candidates: Sequence[int], now: int) -> int:
        """Port to wait on when no candidate has an idle VC.

        The default picks the least-active downstream VC (FAvORS, Sec. V).
        """
        return min(
            candidates,
            key=lambda port: (
                router.downstream_min_active_time(
                    port, packet.vnet, self.vc_choices(packet, router, port),
                    now),
                port,
            ),
        )

    # ------------------------------------------------------------------
    # VC disciplines
    # ------------------------------------------------------------------
    def vc_choices(self, packet: Packet, router, outport: int) -> Sequence[int]:
        """Permitted downstream VC indices (within the packet's vnet)."""
        return range(self.network.config.vcs_per_vnet)

    def injection_vc_choices(self, packet: Packet) -> Sequence[int]:
        """Permitted VC indices at the injection port."""
        return range(self.network.config.vcs_per_vnet)

    def pick_downstream_vc(self, router, packet: Packet, outport: int,
                           now: int):
        """Concrete idle downstream VC for a grant, or None."""
        return router.idle_downstream_vc(
            outport, packet.vnet, self.vc_choices(packet, router, outport), now)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_inject(self, packet: Packet, now: int) -> None:
        """Source routing decisions (Valiant intermediate, VC class init)."""

    def on_hop(self, packet: Packet, router, outport: int) -> None:
        """Per-hop state updates (e.g. VC-class increments)."""

    def on_link_state_change(self, link, up: bool, now: int) -> None:
        """A link failed or recovered at runtime (see repro.faults).

        The base behaviour is a no-op: adaptive algorithms degrade
        naturally through the dead-link candidate filter.  Table-based
        algorithms override this to recompute their tables around the
        failure (e.g. :class:`repro.routing.table.UpDownRouting`).
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def productive_ports(self, router, target: int) -> Tuple[int, ...]:
        """Output ports that reduce the hop distance to ``target`` (cached)."""
        key = (router.id, target)
        cached = self._productive_cache.get(key)
        if cached is None:
            topology = self.topology
            here = topology.min_hops(router.id, target)
            cached = tuple(
                port
                for port, (neighbor, _) in sorted(router.out_neighbors.items())
                if topology.min_hops(neighbor.id, target) < here
            )
            self._productive_cache[key] = cached
        return cached

    def wait_targets(self, router, packet: Packet,
                     now: int) -> List[Tuple[int, list]]:
        """All (outport, downstream VC objects) pairs the packet may use.

        Consumed by the ground-truth deadlock analysis
        (:mod:`repro.deadlock.waitgraph`): a blocked packet can make progress
        if *any* of these VCs frees up.
        """
        if packet.reached_phase_target(router.id):
            return []
        dead_links = self.network.dead_link_count
        targets = []
        for port in self.candidate_outports(router, packet):
            if dead_links and not self.network.link_is_up(router.id, port):
                continue  # a dead port can never grant progress
            neighbor, dst_port = router.out_neighbors[port]
            vcs = neighbor.vnet_slice(dst_port, packet.vnet)
            choices = [vcs[i] for i in self.vc_choices(packet, router, port)]
            targets.append((port, choices))
        return targets
