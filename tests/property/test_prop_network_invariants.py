"""Property-based tests on end-to-end datapath and SPIN invariants.

The invariants every random scenario must satisfy:

* conservation — created == delivered + resident + queued, no duplicates;
* integrity — a delivered packet was ejected at its destination NIC, its
  latency covers at least its hop count, minimal algorithms never misroute;
* spin safety — the theorem bound holds for random deadlocked rings, and no
  VC remains frozen after the dust settles.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SpinParams
from repro.sim.engine import Simulator
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_ring_deadlock, make_mesh_network, make_ring_network


def run_traffic(network, rate, seed, inject_cycles, total_cycles,
                pattern="uniform"):
    network.stats.open_window(0, inject_cycles)
    traffic = SyntheticTraffic(
        network, make_pattern(pattern, network.topology.num_nodes), rate,
        seed=seed, stop_at=inject_cycles, mix=PacketMix.single(1))
    sim = Simulator()
    sim.register(traffic)
    sim.register(network)
    sim.run(total_cycles)
    return sim


class TestConservation:
    @given(seed=st.integers(0, 1000), rate=st.floats(0.02, 0.25),
           vcs=st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_nothing_lost_or_duplicated_with_spin(self, seed, rate, vcs):
        network = make_mesh_network(side=4, vcs=vcs,
                                    spin=SpinParams(tdd=24), seed=seed)
        run_traffic(network, rate, seed, inject_cycles=600,
                    total_cycles=6000)
        stats = network.stats
        resident = network.packets_in_flight()
        queued = network.total_backlog()
        assert stats.packets_created == (
            stats.packets_delivered + resident + queued)
        # Each VC holds a distinct packet (no duplication by spins).
        uids = [vc.packet.uid for _, _, vc in network.occupied_vcs()]
        assert len(uids) == len(set(uids))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_low_load_always_fully_drains(self, seed):
        network = make_mesh_network(side=4, vcs=1,
                                    spin=SpinParams(tdd=24), seed=seed)
        run_traffic(network, 0.05, seed, inject_cycles=800,
                    total_cycles=4000)
        assert network.is_drained()
        assert network.stats.delivery_ratio() == 1.0


class TestDeliveryIntegrity:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_latency_at_least_hops_and_no_misroutes(self, seed):
        network = make_mesh_network(side=4, vcs=2,
                                    spin=SpinParams(tdd=24), seed=seed)
        run_traffic(network, 0.10, seed, inject_cycles=800,
                    total_cycles=4000)
        stats = network.stats
        for hops, latency in zip(stats.hop_counts, stats.network_latencies):
            assert latency >= hops
        # Minimal adaptive: hop counts equal the Manhattan distance, so the
        # mean can never undercut it.
        assert stats.mean_hops() >= 1.0


class TestSpinTheoremRandomized:
    @given(m=st.integers(4, 12), seed=st.integers(0, 100))
    @settings(max_examples=12, deadline=None)
    def test_random_ring_resolves_within_bound(self, m, seed):
        dst_ahead = 2 + seed % max(1, (m // 2) - 1)
        network = make_ring_network(m=m, spin=SpinParams(tdd=8), seed=seed)
        packets = craft_ring_deadlock(network, dst_ahead=dst_ahead)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done
        assert max(p.spins for p in packets) <= m - 1

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_no_frozen_leftovers_after_quiescence(self, seed):
        network = make_mesh_network(side=4, vcs=1,
                                    spin=SpinParams(tdd=16), seed=seed)
        run_traffic(network, 0.30, seed, inject_cycles=400,
                    total_cycles=8000)
        if network.is_drained():
            assert network.spin.frozen_vc_count() == 0
            assert network.spin.executor.pending_spins() == 0
