"""Network topologies.

Every topology describes routers, bidirectional channels between router
ports, and the attachment of terminal nodes (NICs) to routers.  The network
substrate (:mod:`repro.network.network`) instantiates routers and links
directly from a :class:`~repro.topology.base.Topology`.
"""

from repro.topology.base import LinkSpec, Topology
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology
from repro.topology.ring import RingTopology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fbfly import FlattenedButterflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.irregular import (
    IrregularTopology,
    faulty_mesh,
    random_regular_topology,
)

__all__ = [
    "LinkSpec",
    "Topology",
    "MeshTopology",
    "TorusTopology",
    "RingTopology",
    "DragonflyTopology",
    "FlattenedButterflyTopology",
    "FatTreeTopology",
    "IrregularTopology",
    "faulty_mesh",
    "random_regular_topology",
]
