"""Unit tests for the fault injection subsystem (docs/FAULTS.md)."""

import networkx as nx
import pytest

from repro.config import NetworkConfig, SpinParams
from repro.errors import ConfigurationError, FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    SmFaultPolicy,
    format_fault_spec,
    parse_fault_spec,
)
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.table import UpDownRouting
from repro.sim.engine import Simulator
from repro.topology.irregular import IrregularTopology
from repro.topology.mesh import MeshTopology

from tests.conftest import make_mesh_network

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_parses_mixed_spec(self):
        schedule = parse_fault_spec(
            "link_down@1000:r3-r4,sm_drop:p=0.01,router_down@50:r7,"
            "sm_delay@10:d=5:kind=probe:n=3,link_up@2000:r3-r4")
        assert len(schedule.timed_events) == 3
        assert len(schedule.sm_policies) == 2
        down, gate, up = schedule.timed_events
        assert (down.cycle, down.a, down.b, down.up) == (1000, 3, 4, False)
        assert (gate.cycle, gate.router, gate.up) == (50, 7, False)
        assert up.up is True
        drop, delay = schedule.sm_policies
        assert drop.action == "drop" and drop.probability == 0.01
        assert delay.action == "delay" and delay.delay == 5
        assert delay.kind == "probe" and delay.count == 3 and delay.after == 10

    def test_round_trips_through_format(self):
        spec = ("link_down@1000:r3-r4,router_down@50:r7,"
                "sm_drop:p=0.01,sm_delay@10:kind=probe:n=3:d=5")
        schedule = parse_fault_spec(spec)
        assert parse_fault_spec(format_fault_spec(schedule)) == schedule

    @pytest.mark.parametrize("bad", [
        "",
        "link_down:r3-r4",           # missing @cycle
        "link_down@10:r3",           # not a channel
        "link_down@10:r3-r3",        # self loop
        "router_down@10:r3-r4",      # channel arg on router event
        "sm_drop:p=0",               # probability out of range
        "sm_drop:p=1.5",
        "sm_drop:q=0.5",             # unknown parameter
        "sm_drop:kind=warp",         # unknown SM kind
        "sm_delay",                  # delay needs d>=1
        "sm_drop:d=4",               # d only for delay
        "sm_drop:n=0",               # empty budget
        "sm_drop@20:until=10",       # until <= after
        "warp_core_breach",          # unknown event
        "link_down@x:r1-r2",         # non-numeric cycle
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultInjectionError):
            parse_fault_spec(bad)

    def test_error_context_names_the_event(self):
        with pytest.raises(FaultInjectionError) as excinfo:
            parse_fault_spec("link_down@10:r3")
        assert excinfo.value.context.get("event") == "link_down@10:r3"


class TestPolicyWindows:
    def test_window_and_kind_matching(self):
        policy = SmFaultPolicy(action="drop", after=10, until=20, kind="probe")
        assert not policy.active_at(9)
        assert policy.active_at(10)
        assert policy.active_at(19)
        assert not policy.active_at(20)
        assert policy.matches_kind("probe")
        assert not policy.matches_kind("move")

    def test_unscoped_policy_matches_everything(self):
        policy = SmFaultPolicy(action="corrupt")
        assert policy.active_at(0)
        for kind in ("probe", "move", "probe_move", "kill_move"):
            assert policy.matches_kind(kind)


# ----------------------------------------------------------------------
# Injector: timed events
# ----------------------------------------------------------------------
def _mesh_with_injector(spec, side=4, seed=0, spin=None, **kwargs):
    network = make_mesh_network(side=side, spin=spin)
    injector = FaultInjector(parse_fault_spec(spec), seed=seed, **kwargs)
    injector.bind(network)
    sim = Simulator()
    sim.register(injector)
    sim.register(network)
    return network, injector, sim


class TestInjectorEvents:
    def test_link_event_downs_both_directions(self):
        network, injector, sim = _mesh_with_injector("link_down@5:r0-r1")
        sim.run(5)
        assert network.dead_link_count == 0
        sim.run(1)
        assert network.dead_link_count == 2
        assert not network.link_is_up(0, _port_toward(network, 0, 1))
        assert not network.link_is_up(1, _port_toward(network, 1, 0))
        assert injector.faults_fired == 1
        assert network.stats.events["link_down_events"] == 2

    def test_link_up_restores(self):
        network, _, sim = _mesh_with_injector(
            "link_down@2:r0-r1,link_up@10:r0-r1")
        sim.run(11)
        assert network.dead_link_count == 0
        assert network.stats.events["link_up_events"] == 2

    def test_router_gate_downs_adjacent_channels(self):
        # Router 5 of a 4x4 mesh is interior: 4 neighbors, 8 directed links.
        network, injector, sim = _mesh_with_injector("router_down@3:r5")
        sim.run(4)
        assert network.dead_link_count == 8
        assert injector.gated_routers() == (5,)

    def test_router_ungate_restores_only_previously_alive_links(self):
        network, injector, sim = _mesh_with_injector(
            "link_down@1:r5-r6,router_down@3:r5,router_up@8:r5")
        sim.run(9)
        # The r5-r6 channel died independently before the gate: it stays dead.
        assert injector.gated_routers() == ()
        assert network.dead_link_count == 2

    def test_gating_drops_buffered_packets(self):
        from tests.conftest import _plant_packet
        from repro.topology.mesh import WEST

        # Gate at cycle 0 so the resident packet cannot escape first.
        network, _, sim = _mesh_with_injector("router_down@0:r5")
        packet = _plant_packet(network, router_id=5, inport=WEST,
                               dst_router=7)
        sim.run(3)
        assert network.stats.packets_lost == 1
        assert network.stats.events["packets_lost_power_gate"] == 1
        assert packet.measured is False

    def test_unknown_channel_rejected_at_bind(self):
        network = make_mesh_network(side=4)
        injector = FaultInjector(parse_fault_spec("link_down@5:r0-r5"))
        with pytest.raises(FaultInjectionError):
            injector.bind(network)  # 0 and 5 are not mesh neighbors

    def test_unknown_router_rejected_at_bind(self):
        network = make_mesh_network(side=4)
        injector = FaultInjector(parse_fault_spec("router_down@5:r99"))
        with pytest.raises(FaultInjectionError):
            injector.bind(network)

    def test_set_link_state_unknown_channel_raises(self):
        network = make_mesh_network(side=4)
        with pytest.raises(ConfigurationError):
            network.set_channel_state(0, 5, up=False)


# ----------------------------------------------------------------------
# Injector: SM policies
# ----------------------------------------------------------------------
class _FakeSm:
    kind = "probe"

    def __init__(self, path=(1, 2)):
        self.path = tuple(path)

    def with_path(self, path):
        return _FakeSm(path)


class TestSmPolicies:
    def _injector(self, spec, seed=0):
        network = make_mesh_network(side=4)
        injector = FaultInjector(parse_fault_spec(spec), seed=seed)
        injector.bind(network)
        return network, injector

    def test_budget_limits_deterministic_drops(self):
        network, injector = self._injector("sm_drop:n=2")
        results = [injector.filter_sm(_FakeSm(), None, now) for now in range(4)]
        assert results[0] is None and results[1] is None
        assert results[2] is not None and results[3] is not None
        assert network.stats.events["sm_dropped"] == 2
        assert network.stats.events["sm_dropped_probe"] == 2

    def test_kind_scoping(self):
        _, injector = self._injector("sm_drop:kind=move")
        assert injector.filter_sm(_FakeSm(), None, 0) is not None

    def test_window_scoping(self):
        _, injector = self._injector("sm_drop@10:until=12")
        assert injector.filter_sm(_FakeSm(), None, 9) is not None
        assert injector.filter_sm(_FakeSm(), None, 10) is None
        assert injector.filter_sm(_FakeSm(), None, 12) is not None

    def test_delay_returns_extra_latency(self):
        network, injector = self._injector("sm_delay:d=7")
        sm, extra = injector.filter_sm(_FakeSm(), None, 0)
        assert extra == 7
        assert network.stats.events["sm_delayed"] == 1

    def test_corrupt_truncates_path(self):
        network, injector = self._injector("sm_corrupt")
        sm, extra = injector.filter_sm(_FakeSm(path=(1, 2, 3)), None, 0)
        assert sm.path == (1, 2)
        assert network.stats.events["sm_corrupted"] == 1
        # An empty path cannot be truncated: the SM is lost outright.
        assert injector.filter_sm(_FakeSm(path=()), None, 1) is None
        assert network.stats.events["sm_dropped"] == 1

    def test_probabilistic_drops_are_seed_deterministic(self):
        def realize(seed):
            _, injector = self._injector("sm_drop:p=0.4", seed=seed)
            return tuple(injector.filter_sm(_FakeSm(), None, now) is None
                         for now in range(64))

        assert realize(7) == realize(7)
        assert realize(7) != realize(8)

    def test_first_matching_policy_wins(self):
        network, injector = self._injector("sm_delay:d=3:n=1,sm_drop")
        sm, extra = injector.filter_sm(_FakeSm(), None, 0)
        assert extra == 3  # delay policy matched first
        assert injector.filter_sm(_FakeSm(), None, 1) is None  # budget spent


# ----------------------------------------------------------------------
# Routing degradation
# ----------------------------------------------------------------------
class TestUpDownRecompute:
    def _updown_network(self, graph=None):
        topology = IrregularTopology(graph or nx.complete_graph(4))
        return Network(topology, NetworkConfig(vcs_per_vnet=1),
                       UpDownRouting(seed=1), seed=1)

    def test_distances_recompute_around_dead_link(self):
        from repro.network.packet import Packet

        network = self._updown_network()
        routing = network.routing
        before = routing.legal_path_length(1, 2)
        network.set_channel_state(1, 2, up=False)
        after = routing.legal_path_length(1, 2)
        assert after > before  # forced up through the root and back down
        assert network.stats.events["routing_recomputes"] == 2
        packet = Packet(src_node=1, dst_node=2, src_router=1, dst_router=2,
                        length=1)
        routing.on_inject(packet, 0)
        ports = routing.candidate_outports(network.routers[1], packet)
        assert ports  # rerouted, not stranded
        for port in ports:
            assert network.routers[1].out_neighbors[port][0].id != 2

    def test_link_up_restores_short_path(self):
        network = self._updown_network()
        routing = network.routing
        before = routing.legal_path_length(1, 2)
        network.set_channel_state(1, 2, up=False)
        network.set_channel_state(1, 2, up=True)
        assert routing.legal_path_length(1, 2) == before

    def test_cycle_graph_pair_strands_without_legal_path(self):
        # On a pure ring, every detour needs an up hop after a down hop, so
        # killing a channel strands the adjacent pair: documented graceful
        # degradation (the pair waits for link_up) rather than an exception.
        from repro.network.packet import Packet

        network = self._updown_network(nx.cycle_graph(6))
        routing = network.routing
        network.set_channel_state(1, 2, up=False)
        assert routing.legal_path_length(1, 2) >= routing._infinity
        packet = Packet(src_node=1, dst_node=2, src_router=1, dst_router=2,
                        length=1)
        routing.on_inject(packet, 0)
        assert routing.candidate_outports(network.routers[1], packet) == ()


class TestStrandedReclamation:
    def test_stranded_packet_dropped_after_timeout(self):
        from tests.conftest import _plant_packet
        from repro.topology.mesh import SOUTH

        # 2x2 mesh: under minimal routing, router 0's only productive port
        # toward router 1 is the r0-r1 edge.
        network = Network(MeshTopology(2, 2), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1), seed=1)
        injector = FaultInjector(parse_fault_spec("link_down@0:r0-r1"),
                                 drop_stranded_after=32)
        injector.bind(network)
        sim = Simulator()
        sim.register(injector)
        sim.register(network)
        _plant_packet(network, router_id=0, inport=SOUTH, dst_router=1)
        sim.run(100)
        assert network.stats.packets_lost == 1
        assert network.stats.events["packets_lost_stranded"] == 1
        assert network.stats.events["packets_stranded"] == 1

    def test_reclamation_disabled_keeps_packet(self):
        from tests.conftest import _plant_packet
        from repro.topology.mesh import SOUTH

        network = Network(MeshTopology(2, 2), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1), seed=1)
        injector = FaultInjector(parse_fault_spec("link_down@0:r0-r1"),
                                 drop_stranded_after=0)
        injector.bind(network)
        sim = Simulator()
        sim.register(injector)
        sim.register(network)
        _plant_packet(network, router_id=0, inport=SOUTH, dst_router=1)
        sim.run(100)
        assert network.stats.packets_lost == 0
        assert network.packets_in_flight() == 1


def _port_toward(network, src, dst):
    for port, (neighbor, _) in network.routers[src].out_neighbors.items():
        if neighbor.id == dst:
            return port
    raise AssertionError(f"no port from {src} toward {dst}")


# ----------------------------------------------------------------------
# Constructor validation
# ----------------------------------------------------------------------
class TestInjectorConstruction:
    def test_requires_schedule_instance(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector("link_down@5:r0-r1")

    def test_rejects_negative_strand_timeout(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultSchedule(), drop_stranded_after=-1)

    def test_empty_schedule_is_inert(self):
        network, injector, sim = _mesh_with_injector("sm_drop:n=1")
        assert not injector.schedule.empty
        assert FaultSchedule().empty
        sim.run(50)
        assert network.dead_link_count == 0
