"""Fully adaptive minimal routing — no turn or VC-use restrictions.

The packet may use *any* output port on *any* minimal path and *any* VC,
which is exactly the routing freedom SPIN enables with a single VC (the
paper's "MinAdaptive ... SPIN" configurations).  Without a recovery control
plane this algorithm deadlocks — demonstrated in the integration tests and
exploited by Fig. 3's deadlock-rate experiment.

Works on any topology because productive ports are derived from the
topology's hop-distance metric.
"""

from __future__ import annotations

from typing import Sequence

from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm


class MinimalAdaptiveRouting(RoutingAlgorithm):
    """Adaptive among all minimal-path output ports, any VC."""

    name = "MinAdaptive"
    minimal = True
    max_misroutes = 0
    theory = "SPIN"

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        return self.productive_ports(router, packet.routing_target)
