"""Robustness of SPIN to heterogeneous link delays (paper Sec. IV-C3).

The theory only needs all loop routers to *start* the spin together; the
common start time is derived from the measured total loop delay, so routers
and links may have arbitrary (fixed) delays.  These tests craft deadlocked
rings over 2-cycle links and over mixed 1/2/3-cycle links and verify the
full distributed recovery still resolves them within the theorem bound.
"""

import networkx as nx
import pytest

from repro.config import NetworkConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.irregular import IrregularTopology
from repro.topology.ring import COUNTER_CLOCKWISE, RingTopology

from tests.conftest import craft_ring_deadlock


def _plant_cycle_graph_deadlock(network, m, dst_ahead=2):
    """Plant a deadlocked ring on an IrregularTopology cycle graph."""
    topology = network.topology
    packets = []
    for router_id in range(m):
        nxt = (router_id + 1) % m
        prev = (router_id - 1) % m
        inport = topology.port_toward(router_id, prev)
        dst = (router_id + dst_ahead) % m
        packet = Packet(src_node=prev, dst_node=dst, src_router=prev,
                        dst_router=dst, length=1)
        packet.inject_cycle = 0
        vc = network.routers[router_id].inports[inport][0]
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = vc.ready_at = vc.tail_arrival = 0
        network.note_vc_reserved(network.routers[router_id])
        network.stats.record_creation(packet, 0)
        packets.append(packet)
    return packets


class TestUniformSlowLinks:
    @pytest.mark.parametrize("latency", [2, 3])
    def test_ring_with_slow_links_recovers(self, latency):
        m = 6
        network = Network(RingTopology(m, link_latency=latency),
                          NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=16), seed=1)
        packets = craft_ring_deadlock(network, dst_ahead=2)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=4000)
        assert done
        assert max(p.spins for p in packets) <= m - 1

    def test_loop_delay_reflects_link_latency(self):
        # The probe measures the loop delay, so the spin cycle scales with
        # the physical link latency automatically.
        def first_spin_cycle(latency):
            network = Network(RingTopology(6, link_latency=latency),
                              NetworkConfig(vcs_per_vnet=1),
                              MinimalAdaptiveRouting(1),
                              spin=SpinParams(tdd=16), seed=1)
            craft_ring_deadlock(network, dst_ahead=2)
            sim = Simulator()
            sim.register(network)
            sim.run_until(
                lambda: network.stats.events.get("moves_returned", 0) >= 1,
                max_cycles=2000)
            initiators = [c for c in network.spin.controllers
                          if c.spin_cycle is not None]
            assert initiators
            controller = initiators[0]
            return controller.loop_delay

        assert first_spin_cycle(2) > first_spin_cycle(1)


class TestMixedLinkDelays:
    def _mixed_ring(self, m=6):
        graph = nx.cycle_graph(m)
        latencies = {}
        for i, (u, v) in enumerate(sorted(graph.edges)):
            latencies[(min(u, v), max(u, v))] = 1 + i % 3  # 1,2,3,1,2,3
        return IrregularTopology(graph, link_latency=latencies)

    def test_mixed_delay_loop_recovers(self):
        m = 6
        network = Network(self._mixed_ring(m), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=24), seed=2)
        packets = _plant_cycle_graph_deadlock(network, m)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done, dict(network.stats.events)
        assert max(p.spins for p in packets) <= m - 1

    def test_conservation_on_mixed_delays(self):
        m = 6
        network = Network(self._mixed_ring(m), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          spin=SpinParams(tdd=24), seed=2)
        packets = _plant_cycle_graph_deadlock(network, m)
        sim = Simulator()
        sim.register(network)
        sim.run(6000)
        assert network.stats.packets_delivered == len(packets)
        assert network.spin.frozen_vc_count() == 0


class TestDragonflyGlobalLinkLoops:
    def test_recovery_spanning_global_links(self):
        # Live adversarial traffic on a 1-VC dragonfly: deadlock loops span
        # 3-cycle global links; recovery must still work (Sec. IV-C3's
        # off-chip claim).
        from repro.topology.dragonfly import DragonflyTopology
        from repro.traffic.generator import PacketMix, SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        network = Network(DragonflyTopology(2, 4, 2),
                          NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(3),
                          spin=SpinParams(tdd=32), seed=3)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network,
            make_pattern("bit_complement", network.topology.num_nodes),
            0.40, seed=3, stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(8000)
        stats = network.stats
        # Deadlocks spanning 3-cycle global links formed and were spun.
        assert stats.events.get("spins", 0) >= 1
        # Deep overload: full drain is not expected in this window, but
        # nothing may be lost or duplicated.
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog())
        assert stats.packets_delivered > 0
