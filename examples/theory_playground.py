#!/usr/bin/env python
"""Table I, live: all five deadlock-freedom theories on one workload.

Runs the same uniform-random, single-flit workload through an executable
exemplar of every framework in the paper's Table I:

  Dally's theory     west-first turn model          (avoidance)
  Duato's theory     escape VC                      (avoidance)
  Flow control       bubble flow control on a torus (avoidance)
  Deflection         BLESS-style bufferless         (by construction)
  SPIN               FAvORS-Min + recovery          (recovery)

and reports each framework's characteristic cost: turn restrictions cost
path diversity, escape VCs cost buffers, bubbles cost injection
throttling, deflection costs misroutes — SPIN costs only the rare spins.

Run:
    python examples/theory_playground.py
"""

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.deadlock.bubble import BubbleFlowControlRouting
from repro.deflection.network import DeflectionNetwork
from repro.network.network import Network
from repro.routing.escape import EscapeVcRouting
from repro.routing.favors import FavorsMinimal
from repro.routing.turn_model import WestFirstRouting
from repro.sim.rng import DeterministicRng
from repro.stats.sweep import run_point
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import UniformRandom, make_pattern

SIDE = 4
RATE = 0.12
SIM = SimulationConfig(warmup_cycles=300, measure_cycles=2000,
                       drain_cycles=3000)
SEED = 11


def run_buffered(name, topology_factory, routing_factory, vcs, spin,
                 extra=""):
    def network_factory():
        return Network(topology_factory(), NetworkConfig(vcs_per_vnet=vcs),
                       routing_factory(), spin=spin, seed=SEED)

    def traffic_factory(network, rate, stop_at):
        pattern = make_pattern("uniform", network.topology.num_nodes)
        return SyntheticTraffic(network, pattern, rate, seed=SEED,
                                stop_at=stop_at, mix=PacketMix.single(1))

    network, point = run_point(network_factory, traffic_factory, SIM,
                               injection_rate=RATE)
    cost = extra or f"spins={point.events.get('spins', 0)}"
    return (name, vcs, round(point.mean_latency, 1),
            round(network.stats.mean_hops(), 2),
            round(point.delivery_ratio, 3), cost)


def run_deflection():
    network = DeflectionNetwork(MeshTopology(SIDE, SIDE), seed=SEED)
    stop = SIM.warmup_cycles + SIM.measure_cycles
    network.stats.open_window(SIM.warmup_cycles, stop)
    rng = DeterministicRng(SEED)
    pattern = UniformRandom(SIDE * SIDE)
    for cycle in range(SIM.total_cycles):
        if cycle < stop:
            for node in range(SIDE * SIDE):
                if rng.bernoulli(RATE):
                    dst = pattern.dest(node, rng)
                    if dst is not None:
                        network.offer(node, dst, cycle)
        network.step()
    stats = network.stats
    return ("Deflection (BLESS-like)", 0, round(stats.latency().mean, 1),
            round(stats.mean_hops(), 2), round(stats.delivery_ratio(), 3),
            f"deflections={network.total_deflections}")


def main():
    print(f"Table I live: {SIDE}x{SIDE} network, uniform random, "
          f"{RATE} flits/node/cycle, 1-flit packets\n")
    rows = [
        run_buffered("Dally: west-first", lambda: MeshTopology(SIDE, SIDE),
                     lambda: WestFirstRouting(SEED), 1, None,
                     extra="turn restrictions"),
        run_buffered("Duato: escape VC", lambda: MeshTopology(SIDE, SIDE),
                     lambda: EscapeVcRouting(SEED), 2, None,
                     extra="+1 escape VC/port"),
        run_buffered("FlowCtrl: bubble (torus)",
                     lambda: TorusTopology(SIDE, SIDE),
                     lambda: BubbleFlowControlRouting(SEED), 1, None,
                     extra="injection throttling"),
        run_deflection(),
        run_buffered("SPIN: FAvORS-Min", lambda: MeshTopology(SIDE, SIDE),
                     lambda: FavorsMinimal(SEED), 1, SpinParams(tdd=32)),
    ]
    header = (f"{'framework':26s} {'VCs':>4s} {'mean lat':>9s} "
              f"{'mean hops':>10s} {'delivered':>10s}  cost")
    print(header)
    print("-" * (len(header) + 16))
    for name, vcs, latency, hops, delivered, cost in rows:
        print(f"{name:26s} {vcs:4d} {latency:9.1f} {hops:10.2f} "
              f"{delivered:10.3f}  {cost}")
    print("\nAll five frameworks deliver the workload; they differ in what "
          "they pay for it.\nSPIN is the only one that is simultaneously "
          "1-VC, fully adaptive, minimal-capable\nand topology-agnostic "
          "(Table I, last row).")
    print("\nCaveats: bubble runs on a torus (shorter paths); deflection "
          "is a bufferless\nsubstrate without the 1-cycle router pipeline, "
          "so its absolute latency is not\ncomparable — its cost shows up "
          "as deflections (misrouted hops) instead.")


if __name__ == "__main__":
    main()
