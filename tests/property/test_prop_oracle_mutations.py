"""Mutation-kill property tests: the oracle trips *exactly* the right alarm.

For each invariant family, a hypothesis-driven scenario runs real traffic
to a random point, takes a clean oracle baseline, applies one surgical
corruption of the live state (drop a credit, duplicate a flit, teleport a
packet, vanish one, forge freeze/FSM state, ...), and asserts that the
very next sweep reports the *intended* invariant family — and only that
family.  This pins both directions of oracle quality: sensitivity (the
corruption is detected) and specificity (nothing else cries wolf).
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import SpinParams
from repro.core.fsm import SpinState
from repro.sim.engine import Simulator
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern
from repro.verify.oracle import InvariantOracle, OracleConfig

from tests.conftest import make_mesh_network

SETTINGS = dict(max_examples=20, deadline=None)


def _loaded_network(seed: int, cycles: int, spin=None):
    """A mesh warmed up with real traffic, with packets still in flight."""
    network = make_mesh_network(side=4, vcs=2, spin=spin, seed=seed)
    traffic = SyntheticTraffic(
        network, make_pattern("uniform", 16), 0.30, seed=seed,
        stop_at=cycles, mix=PacketMix.single(1))
    simulator = Simulator()
    simulator.register(traffic)
    simulator.register(network)
    simulator.run(cycles)
    return network


def _baselined_oracle(network):
    """Record-mode oracle with a clean sweep already taken at `now`."""
    oracle = InvariantOracle(network, OracleConfig(mode="record"))
    baseline = oracle.check_now(network.now)
    assert baseline == [], [v.invariant for v in baseline]
    return oracle


def _families(violations):
    return {violation.invariant for violation in violations}


def _residents(network):
    """(router, vc) pairs for every occupied router VC."""
    out = []
    for router in network.routers:
        for _inport, vcs in router.all_inports():
            for vc in vcs:
                if vc.packet is not None:
                    out.append((router, vc))
    return out


def _idle_vc(network, exclude_router: int, adjacent_ok: bool):
    """An empty VC on some other router (optionally non-adjacent)."""
    neighbors = {
        link.dst for link in network.links.values()
        if link.src == exclude_router}
    for router in network.routers:
        if router.id == exclude_router:
            continue
        if not adjacent_ok and router.id in neighbors:
            continue
        for _inport, vcs in router.all_inports():
            for vc in vcs:
                if vc.packet is None and not vc.frozen:
                    return router, vc
    return None


def _plant(vc, packet, now: int) -> None:
    """Occupy an idle VC with consistent timing fields."""
    vc.packet = packet
    vc.head_arrival = now
    vc.tail_arrival = now + packet.length - 1
    vc.ready_at = now


class TestDatapathMutations:
    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           drift=st.sampled_from([-1, 1]), which=st.integers(0, 15))
    @settings(**SETTINGS)
    def test_credit_drift_trips_credit_conservation(self, seed, cycles,
                                                    drift, which):
        network = _loaded_network(seed, cycles)
        oracle = _baselined_oracle(network)
        network.routers[which % 16].active_vcs += drift
        found = oracle.check_now(network.now + 1)
        assert _families(found) == {"credit_conservation"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           extra=st.integers(1, 7), index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_length_corruption_trips_vc_occupancy(self, seed, cycles,
                                                  extra, index):
        network = _loaded_network(seed, cycles)
        residents = _residents(network)
        assume(residents)
        oracle = _baselined_oracle(network)
        _router, vc = residents[index % len(residents)]
        vc.packet.length = network.config.buffer_depth + extra
        found = oracle.check_now(network.now + 1)
        assert _families(found) == {"vc_occupancy"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_duplicated_flit_trips_duplicate_packet(self, seed, cycles,
                                                    index):
        network = _loaded_network(seed, cycles)
        residents = _residents(network)
        assume(residents)
        src_router, src_vc = residents[index % len(residents)]
        spot = _idle_vc(network, src_router.id, adjacent_ok=True)
        assume(spot is not None)
        dst_router, dst_vc = spot
        oracle = _baselined_oracle(network)
        _plant(dst_vc, src_vc.packet, network.now)
        dst_router.active_vcs += 1  # keep credits honest: only the dup
        # +2, not +1: a consecutive census would key both copies by the
        # same uid and could *also* read as a teleport.
        found = oracle.check_now(network.now + 2)
        assert _families(found) == {"duplicate_packet"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_teleported_packet_trips_teleport(self, seed, cycles, index):
        network = _loaded_network(seed, cycles)
        residents = _residents(network)
        assume(residents)
        src_router, src_vc = residents[index % len(residents)]
        spot = _idle_vc(network, src_router.id, adjacent_ok=False)
        assume(spot is not None)
        dst_router, dst_vc = spot
        oracle = _baselined_oracle(network)
        packet = src_vc.packet
        src_vc.packet = None
        src_router.active_vcs -= 1
        _plant(dst_vc, packet, network.now)
        dst_router.active_vcs += 1
        # Consecutive census (+1) so the movement history check runs.
        found = oracle.check_now(network.now + 1)
        assert _families(found) == {"teleport"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_vanished_packet_trips_packet_conservation(self, seed, cycles,
                                                       index):
        network = _loaded_network(seed, cycles)
        residents = _residents(network)
        assume(residents)
        src_router, src_vc = residents[index % len(residents)]
        oracle = _baselined_oracle(network)
        src_vc.packet = None          # no delivery, no counted loss
        src_router.active_vcs -= 1
        found = oracle.check_now(network.now + 2)
        assert _families(found) == {"packet_conservation"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_lost_packet_with_counted_loss_is_clean(self, seed, cycles,
                                                    index):
        """Control arm: the same removal *with* accounting stays silent."""
        network = _loaded_network(seed, cycles)
        residents = _residents(network)
        assume(residents)
        src_router, src_vc = residents[index % len(residents)]
        oracle = InvariantOracle(network, OracleConfig(mode="record"))
        # attach() installs the delivery/loss hooks that make a counted
        # loss visible to the conservation check.
        oracle.attach(Simulator())
        assert oracle.check_now(network.now) == []
        packet = src_vc.packet
        src_vc.packet = None
        src_router.active_vcs -= 1
        network.stats.record_loss(packet, network.now)
        found = oracle.check_now(network.now + 2)
        assert found == []


class TestSpinStateMutations:
    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           index=st.integers(0, 63))
    @settings(**SETTINGS)
    def test_forged_freeze_trips_freeze_legality(self, seed, cycles, index):
        network = _loaded_network(seed, cycles, spin=SpinParams(tdd=5000))
        residents = _residents(network)
        assume(residents)
        oracle = _baselined_oracle(network)
        _router, vc = residents[index % len(residents)]
        vc.frozen = True              # metadata left at its -1 defaults
        found = oracle.check_now(network.now + 2)
        assert _families(found) == {"freeze_legality"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           which=st.integers(0, 15))
    @settings(**SETTINGS)
    def test_contextless_dd_trips_fsm_context(self, seed, cycles, which):
        network = _loaded_network(seed, cycles, spin=SpinParams(tdd=5000))
        oracle = _baselined_oracle(network)
        controller = network.spin.controllers[which % 16]
        if controller.state is SpinState.DD:
            # Strip the context the DD state requires.
            controller.pointer = None
            controller.deadline = None
        else:
            assume(controller.state is SpinState.OFF)
            controller.state = SpinState.DD   # forged: no pointer/deadline
        found = oracle.check_now(network.now + 2)
        assert _families(found) == {"fsm_context"}

    @given(seed=st.integers(0, 500), cycles=st.integers(40, 120),
           which=st.integers(0, 15))
    @settings(**SETTINGS)
    def test_illegal_jump_trips_fsm_transition(self, seed, cycles, which):
        network = _loaded_network(seed, cycles, spin=SpinParams(tdd=5000))
        oracle = _baselined_oracle(network)
        idle = [controller for controller in network.spin.controllers
                if controller.state is SpinState.OFF]
        assume(idle)
        controller = idle[which % len(idle)]
        # OFF -> MOVE with *plausible* context, so only the transition
        # relation itself can object.
        controller.state = SpinState.MOVE
        controller.loop_path = [(controller.router.id, 0, 0)]
        controller.deadline = network.now + 100
        found = oracle.check_now(network.now + 1)   # consecutive
        assert _families(found) == {"fsm_transition"}
