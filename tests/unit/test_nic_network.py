"""Unit tests for NIC injection/ejection and network assembly."""

import pytest

from repro.config import NetworkConfig
from repro.network.network import Network
from repro.network.packet import Packet
from repro.network.router import EJECT_PORT_BASE, INJECT_PORT_BASE
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology

from tests.conftest import make_mesh_network


def make_nic_packet(network, src, dst, length=1, vnet=0, reply=0):
    packet = Packet(src_node=src, dst_node=dst,
                    src_router=network.topology.router_of_node(src),
                    dst_router=network.topology.router_of_node(dst),
                    length=length, vnet=vnet, create_cycle=0)
    packet.reply_length = reply
    network.stats.record_creation(packet, 0)
    return packet


class TestNicInjection:
    def test_enqueue_and_inject(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        nic = network.nics[0]
        nic.enqueue(make_nic_packet(network, 0, 5))
        assert nic.backlog() == 1
        simulator = Simulator()
        simulator.register(network)
        simulator.run(30)
        assert nic.backlog() == 0
        assert network.stats.packets_delivered == 1

    def test_backlog_when_vc_busy(self):
        network = make_mesh_network(vcs=1)
        network.stats.open_window(0, None)
        nic = network.nics[0]
        for _ in range(4):
            nic.enqueue(make_nic_packet(network, 0, 15, length=5))
        assert nic.backlog() == 4
        simulator = Simulator()
        simulator.register(network)
        simulator.run(2)
        # One packet in flight; others still queued behind the busy VC.
        assert nic.backlog() >= 2
        simulator.run(200)
        assert nic.backlog() == 0
        assert network.stats.packets_delivered == 4

    def test_vnet_queues_round_robin(self):
        network = make_mesh_network(num_vnets=2)
        network.stats.open_window(0, None)
        nic = network.nics[0]
        nic.enqueue(make_nic_packet(network, 0, 5, vnet=0))
        nic.enqueue(make_nic_packet(network, 0, 5, vnet=1))
        simulator = Simulator()
        simulator.register(network)
        simulator.run(40)
        assert network.stats.packets_delivered == 2

    def test_reply_generation(self):
        network = make_mesh_network(num_vnets=3)
        network.stats.open_window(0, None)
        nic = network.nics[0]
        nic.enqueue(make_nic_packet(network, 0, 5, length=1, reply=5))
        simulator = Simulator()
        simulator.register(network)
        simulator.run(80)
        # Request + reply both delivered; reply came back to node 0.
        assert network.stats.packets_delivered == 2
        assert network.nics[0].packets_received == 1
        assert network.nics[5].packets_received == 1


class TestNetworkAssembly:
    def test_mesh_wiring(self):
        network = make_mesh_network(side=4)
        assert len(network.routers) == 16
        assert len(network.nics) == 16
        # Every topology link materialized exactly once.
        assert len(network.links) == len(network.topology.links())

    def test_out_neighbors_match_topology(self):
        network = make_mesh_network(side=4)
        for router in network.routers:
            for port, (neighbor, dst_port) in router.out_neighbors.items():
                expected = network.topology.neighbors(router.id)[port]
                assert (neighbor.id, dst_port) == expected[:2]

    def test_vcs_created_per_config(self):
        network = Network(MeshTopology(3, 3),
                          NetworkConfig(vcs_per_vnet=2, num_vnets=3),
                          MinimalAdaptiveRouting(0))
        router = network.routers[4]
        for port in router.inports:
            assert len(router.vcs_at(port)) == 6
        assert len(router.vnet_slice(port, 1)) == 2
        assert all(vc.vnet == 1 for vc in router.vnet_slice(port, 1))

    def test_multiple_nics_per_router_on_dragonfly(self):
        network = Network(DragonflyTopology(2, 4, 2),
                          NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(0))
        router0_nics = [nic for nic in network.nics if nic.router_id == 0]
        assert len(router0_nics) == 2
        ports = {nic.inject_port for nic in router0_nics}
        assert ports == {INJECT_PORT_BASE, INJECT_PORT_BASE + 1}
        assert network.eject_port_for(router0_nics[1].node) == EJECT_PORT_BASE + 1

    def test_spin_control_plane_attached_when_enabled(self):
        from repro.config import SpinParams

        without = make_mesh_network()
        assert without.spin is None
        with_spin = make_mesh_network(spin=SpinParams(tdd=16))
        assert with_spin.spin is not None
        assert len(with_spin.spin.controllers) == 16
