"""Shared test fixtures and deadlock-crafting helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE, RingTopology


def make_mesh_network(side: int = 4, vcs: int = 1, routing=None,
                      spin: Optional[SpinParams] = None, seed: int = 1,
                      num_vnets: int = 1) -> Network:
    """A small mesh network with minimal adaptive routing by default."""
    return Network(
        topology=MeshTopology(side, side),
        config=NetworkConfig(vcs_per_vnet=vcs, num_vnets=num_vnets),
        routing=routing or MinimalAdaptiveRouting(seed),
        spin=spin,
        seed=seed,
    )


def make_ring_network(m: int = 6, vcs: int = 1,
                      spin: Optional[SpinParams] = None,
                      seed: int = 1) -> Network:
    """A bidirectional ring network with minimal adaptive routing."""
    return Network(
        topology=RingTopology(m),
        config=NetworkConfig(vcs_per_vnet=vcs),
        routing=MinimalAdaptiveRouting(seed),
        spin=spin,
        seed=seed,
    )


def craft_ring_deadlock(network: Network, dst_ahead: int = 2,
                        length: int = 1) -> List[Packet]:
    """Plant a clockwise deadlocked ring on a RingTopology network.

    Puts one packet in the counter-clockwise input VC of every router,
    destined ``dst_ahead`` routers clockwise, so each packet's only minimal
    request is the clockwise port — whose downstream VC holds the next
    packet.  With a single VC this is a textbook cyclic buffer dependency.

    Args:
        network: A network over :class:`RingTopology` with 1 VC per vnet.
        dst_ahead: Clockwise distance to each packet's destination; must be
            at least 2 and at most floor(m/2) so the clockwise direction is
            the unique minimal path.
        length: Packet length in flits.

    Returns:
        The planted packets, in ring order.
    """
    topology: RingTopology = network.topology
    m = topology.num_routers
    assert 2 <= dst_ahead <= m // 2, "clockwise must be uniquely minimal"
    packets = []
    for router_id in range(m):
        dst_router = (router_id + dst_ahead) % m
        packet = Packet(
            src_node=(router_id - 1) % m,
            dst_node=dst_router,
            src_router=(router_id - 1) % m,
            dst_router=dst_router,
            length=length,
            create_cycle=0,
        )
        packet.inject_cycle = 0
        router = network.routers[router_id]
        vc = router.inports[COUNTER_CLOCKWISE][0]
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = 0
        vc.ready_at = 0
        vc.tail_arrival = 0
        network.note_vc_reserved(router)
        network.stats.record_creation(packet, 0)
        packets.append(packet)
    return packets


def _plant_packet(network: Network, router_id: int, inport: int,
                  dst_router: int, length: int = 1,
                  vc_index: int = 0, now: int = 0) -> Packet:
    """Place a fully-arrived packet directly into a router input VC."""
    packet = Packet(
        src_node=router_id, dst_node=dst_router, src_router=router_id,
        dst_router=dst_router, length=length, create_cycle=now)
    packet.inject_cycle = now
    router = network.routers[router_id]
    vc = router.inports[inport][vc_index]
    vc.free_at = min(vc.free_at, now)
    vc.reserve(packet, now=now, link_latency=0, router_latency=0)
    vc.head_arrival = now
    vc.ready_at = now
    vc.tail_arrival = now
    network.note_vc_reserved(router)
    network.stats.record_creation(packet, now)
    return packet


def craft_square_deadlock(network: Network, length: int = 1) -> List[Packet]:
    """Plant a 4-packet clockwise deadlock on the (1,1)-(2,2) mesh square.

    Each packet's destination lies two hops straight ahead, so under
    minimal routing its unique productive port is the next clockwise edge
    of the square — a textbook cyclic buffer dependency (paper Fig. 2).
    Requires a >= 4x4 mesh with 1 VC per vnet.
    """
    from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

    mesh: MeshTopology = network.topology
    at = mesh.router_at
    spec = [
        # (router, inport holding the packet, destination 2 hops ahead)
        (at(1, 1), SOUTH, at(3, 1)),   # wants EAST
        (at(2, 1), WEST, at(2, 3)),    # wants SOUTH
        (at(2, 2), NORTH, at(0, 2)),   # wants WEST
        (at(1, 2), EAST, at(1, 0)),    # wants NORTH
    ]
    return [
        _plant_packet(network, router, inport, dst, length)
        for router, inport, dst in spec
    ]


def craft_figure8_deadlock(network: Network) -> List[Packet]:
    """Plant a single figure-8 dependency chain crossing router (1,1).

    Two 4-router loops share router (1,1); the chain enters it twice via
    different inports (paper Fig. 5(b)).  Requires a >= 4x4 mesh, 1 VC.
    """
    from repro.topology.mesh import EAST, NORTH, SOUTH, WEST

    mesh: MeshTopology = network.topology
    at = mesh.router_at
    spec = [
        # Lower-right loop, feeding into the upper-left loop at (1,1).
        (at(1, 1), SOUTH, at(1, 0)),   # crossover entry 1: wants NORTH
        (at(1, 0), SOUTH, at(0, 0)),   # wants WEST
        (at(0, 0), EAST, at(0, 2)),    # wants SOUTH
        (at(0, 1), NORTH, at(2, 1)),   # wants EAST -> back into (1,1)
        (at(1, 1), WEST, at(3, 1)),    # crossover entry 2: wants EAST
        (at(2, 1), WEST, at(2, 3)),    # wants SOUTH
        (at(2, 2), NORTH, at(0, 2)),   # wants WEST
        (at(1, 2), EAST, at(1, 0)),    # wants NORTH -> back into (1,1)
    ]
    return [
        _plant_packet(network, router, inport, dst)
        for router, inport, dst in spec
    ]


def simulate(network: Network, cycles: int,
             traffic=None) -> Simulator:
    """Run a network (and optional traffic source) for some cycles."""
    simulator = Simulator()
    if traffic is not None:
        simulator.register(traffic)
    simulator.register(network)
    simulator.run(cycles)
    return simulator


@pytest.fixture
def mesh4() -> Network:
    """A 4x4 1-VC mesh with minimal adaptive routing, no SPIN."""
    return make_mesh_network()


@pytest.fixture
def mesh4_spin() -> Network:
    """A 4x4 1-VC mesh with minimal adaptive routing and SPIN (tDD=32)."""
    return make_mesh_network(spin=SpinParams(tdd=32))


@pytest.fixture
def sim_config_short() -> SimulationConfig:
    """A short warmup/measure/drain window for integration tests."""
    return SimulationConfig(warmup_cycles=200, measure_cycles=1500,
                            drain_cycles=1500, deadlock_abort_cycles=1000)
