"""Prometheus text exposition over the live campaign status.

``cli serve-metrics <campaign-dir>`` renders the rolling ``status.json``
(:mod:`repro.telemetry.live`) in the Prometheus text exposition format
(version 0.0.4) — either once to stdout (``--once``, the CI lint path)
or over HTTP at ``/metrics`` via the stdlib server.  No client library
is involved: the format is plain text, and :func:`validate_exposition`
is a dependency-free lint of the subset we emit (mirroring
``validate_chrome_trace`` in :mod:`repro.telemetry.export`).
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

#: Content type Prometheus scrapers expect for text exposition.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [0-9]+)?$")
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _sample(name: str, labels: Dict[str, str], value) -> str:
    if labels:
        body = ",".join(f'{key}="{_escape(str(val))}"'
                        for key, val in sorted(labels.items()))
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


def render_exposition(status: Dict[str, object]) -> str:
    """Render one status payload as Prometheus text exposition."""
    campaign = status.get("campaign") or {}
    lines: List[str] = []

    def metric(name: str, type_: str, help_: str,
               samples: List[Tuple[Dict[str, str], object]]) -> None:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {type_}")
        for labels, value in samples:
            lines.append(_sample(name, labels, value))

    states = {"pending": 0, "running": 0, "ok": 0, "failed": 0,
              "resumed": 0}
    for point in (status.get("points") or {}).values():
        state = point.get("status")
        if state in states:
            states[state] += 1
    metric("repro_campaign_points", "gauge",
           "Campaign points by state.",
           [({"state": state}, count)
            for state, count in sorted(states.items())])
    metric("repro_campaign_points_total", "gauge",
           "Total points in the campaign.",
           [({}, campaign.get("total_points", 0) or 0)])
    metric("repro_campaign_throughput_points_per_second", "gauge",
           "Completed points per second since the supervisor started.",
           [({}, campaign.get("throughput_pps", 0.0) or 0.0)])
    eta = campaign.get("eta_seconds")
    metric("repro_campaign_eta_seconds", "gauge",
           "Estimated seconds to completion (NaN when unknown).",
           [({}, eta if eta is not None else "NaN")])
    budget = campaign.get("failure_budget") or {}
    metric("repro_campaign_failures_total", "counter",
           "Permanently failed points (failure-budget burn).",
           [({}, budget.get("burned", 0) or 0)])
    saturation = campaign.get("saturation") or {}
    metric("repro_campaign_saturation_cut", "gauge",
           "1 when the live saturation cursor has cut the curve.",
           [({}, 1 if saturation.get("cut") else 0)])

    worker_states = {"idle": 0, "running": 0, "hung": 0, "dead": 0}
    age_samples: List[Tuple[Dict[str, str], object]] = []
    for pid, worker in sorted((status.get("workers") or {}).items()):
        state = worker.get("state")
        if state in worker_states:
            worker_states[state] += 1
        age = worker.get("heartbeat_age_s")
        if age is not None:
            age_samples.append(({"pid": str(pid)}, age))
    metric("repro_workers", "gauge", "Workers by health state.",
           [({"state": state}, count)
            for state, count in sorted(worker_states.items())])
    if age_samples:
        metric("repro_worker_heartbeat_age_seconds", "gauge",
               "Seconds since each worker's last frame.", age_samples)

    counters = status.get("counters") or {}
    counter_samples = [({"name": name}, value)
                       for name, value in sorted(counters.items())]
    if counter_samples:
        metric("repro_supervisor_events_total", "counter",
               "Supervisor-side event counters (frames, retries, "
               "respawns).", counter_samples)
    stream_totals = status.get("stream_totals") or {}
    stream_samples = [({"event": name}, value)
                      for name, value in sorted(stream_totals.items())]
    if stream_samples:
        metric("repro_stream_events_total", "counter",
               "Worker-reported event-counter deltas merged by the "
               "aggregator.", stream_samples)
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Lint exposition text; returns human-readable problems (empty = ok).

    Checks the subset of the text format we emit: HELP/TYPE comment
    shape, known TYPE values, sample-line grammar, label-pair grammar,
    and that every sample's metric name was declared by a TYPE line.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    for number, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment: "
                                f"{line!r}")
                continue
            _, kind, name, rest = parts
            if not _METRIC_NAME.match(name):
                problems.append(f"line {number}: bad metric name {name!r}")
            if kind == "TYPE":
                if rest not in _TYPES:
                    problems.append(f"line {number}: unknown type "
                                    f"{rest!r}")
                declared[name] = rest
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                base = name[:-len(suffix)]
                break
        if base not in declared:
            problems.append(f"line {number}: sample for undeclared "
                            f"metric {name!r}")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels[1:-1]):
                if pair and not _LABEL_PAIR.match(pair):
                    problems.append(f"line {number}: bad label pair "
                                    f"{pair!r}")
    return problems


def _split_labels(body: str) -> List[str]:
    """Split a label body on commas not inside quoted values."""
    pairs: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


def serve(directory, port: int = 0, once: bool = False) -> int:
    """Serve ``/metrics`` for a campaign directory (or print once).

    Returns the exit code: non-zero when the status file is missing in
    ``--once`` mode.
    """
    from repro.telemetry.watch import load_status

    if once:
        status = load_status(directory)
        if status is None:
            print(f"no {directory}/status.json — run a streamed campaign "
                  "first", file=sys.stderr)
            return 1
        sys.stdout.write(render_exposition(status))
        return 0

    import http.server

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - stdlib naming
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            status = load_status(directory)
            if status is None:
                self.send_error(503, "no status.json yet")
                return
            body = render_exposition(status).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", EXPOSITION_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # noqa: D102 - quiet server
            pass

    server = http.server.HTTPServer(("127.0.0.1", port), Handler)
    print(f"serving metrics for {directory} on "
          f"http://127.0.0.1:{server.server_port}/metrics "
          "(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Lint an exposition file (``-`` for stdin); exit 1 on problems."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.telemetry.prometheus <file|->",
              file=sys.stderr)
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    problems = validate_exposition(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"exposition ok ({len([l for l in text.splitlines() if l and not l.startswith('#')])} samples)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
