"""Ground-truth deadlock detection on live simulator state.

A blocked packet waits on a *set* of VCs (fully adaptive routing can use any
of several ports/VCs), so the dependency structure is an AND-OR graph, not a
plain cycle: a packet is truly deadlocked iff **every** VC it could move
into is permanently held.  The classic fixpoint computes this exactly:

1. every blocked packet whose wait set contains a free (or draining, or
   still-receiving) VC can *escape*;
2. a blocked packet escapes if any VC in its wait set is held by an escaping
   packet;
3. iterate to fixpoint; the non-escaping blocked packets are deadlocked.

This module is an *oracle* for validation and measurement — the simulated
hardware never uses it (SPIN's whole point is detecting deadlock without a
global view).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

VcKey = Tuple[int, int, int]  # (router, inport, vc index)


def _vc_key(vc) -> VcKey:
    return (vc.router, vc.inport, vc.index)


def blocked_packets(network, now: int) -> List[Tuple[VcKey, object, list]]:
    """All resident packets with a non-empty wait set.

    Returns:
        Triples ``(vc_key, packet, wait_target_vcs)``.  Packets that are
        still arriving (tail in flight) or waiting only for ejection are
        excluded — both make progress without any VC freeing up.
    """
    blocked = []
    routing = network.routing
    for router, _inport, vc in network.occupied_vcs():
        if not vc.fully_arrived(now):
            continue
        targets = routing.wait_targets(router, vc.packet, now)
        if not targets:
            continue  # at destination: ejection is stall-free
        target_vcs = [t for _, vcs in targets for t in vcs]
        blocked.append((_vc_key(vc), vc.packet, target_vcs))
    return blocked


def find_deadlocked_packets(network, now: int) -> Set[int]:
    """Uids of packets that can never move again without intervention."""
    blocked = blocked_packets(network, now)
    if not blocked:
        return set()
    holder: Dict[VcKey, int] = {}
    wait_sets: Dict[VcKey, List[VcKey]] = {}
    uid_of: Dict[VcKey, int] = {}
    for key, packet, targets in blocked:
        holder[key] = packet.uid
        uid_of[key] = packet.uid
        wait_sets[key] = [_vc_key(t) for t in targets]

    # Seed: packets with any target that is not held by a *blocked* packet
    # (idle, draining, or occupied by a moving/ejecting packet) can escape.
    escaping: Set[VcKey] = set()
    waiters_on: Dict[VcKey, List[VcKey]] = defaultdict(list)
    frontier: List[VcKey] = []
    for key, targets in wait_sets.items():
        if any(t not in holder for t in targets):
            escaping.add(key)
            frontier.append(key)
        else:
            for t in targets:
                waiters_on[t].append(key)

    # Propagate: freeing an escaping packet's VC may free its waiters.
    while frontier:
        freed = frontier.pop()
        for waiter in waiters_on.get(freed, ()):
            if waiter not in escaping:
                escaping.add(waiter)
                frontier.append(waiter)
    return {uid_of[key] for key in wait_sets if key not in escaping}


def has_deadlock(network, now: int) -> bool:
    """Whether any packet in the network is truly deadlocked right now."""
    return bool(find_deadlocked_packets(network, now))


def spin_persistence_bound(tdd: int, sm_rtt_bound: int) -> int:
    """Cycles a true deadlock may persist under SPIN before it is a bug.

    One recovery round costs at most ``tdd`` (countdown) plus a small
    number of SM round trips (probe out-and-back, move out-and-back, then
    either the spin or a kill round trip), each bounded by
    ``sm_rtt_bound``; watchdog timeouts are themselves derived from that
    same round-trip bound, so a lossy round also fits in it.  The factor 8
    covers the protocol's worst case of back-to-back cancelled rounds
    (rival initiators killing each other once per rotating-priority epoch)
    before a round survives, and the additive margin absorbs
    backoff-inflated retries and spin-cycle slack.

    This is the single source of truth for the theory's recovery-latency
    bound: the runtime oracle enforces it on live simulations
    (``deadlock_persistence``) and the model checker cross-checks its
    exhaustively-computed worst-case recovery path against it
    (:mod:`repro.verify.model`).
    """
    return 8 * (tdd + sm_rtt_bound) + 512


def deadlocked_vc_chain(network, now: int) -> List[VcKey]:
    """VC keys of all deadlocked packets (diagnostics and tests)."""
    uids = find_deadlocked_packets(network, now)
    chain = []
    for router, inport, vc in network.occupied_vcs():
        if vc.packet is not None and vc.packet.uid in uids:
            chain.append((router.id, inport, vc.index))
    return chain
