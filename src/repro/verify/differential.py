"""Differential conformance across deadlock-freedom theories.

SPIN's correctness claim is *behavioural*: a recovery theory may reorder
traffic internally, but under identical seeded load every sound scheme must
deliver exactly the same multiset of packets and reach the same
deadlock verdict.  This module runs one seeded experiment under several
Table III designs — by default SPIN vs. Static Bubble vs. escape-VC on the
same mesh — with the invariant oracle journaling deliveries, and asserts:

1. **zero invariant violations** in every run;
2. **identical delivered-packet multisets** — packets identified by their
   seed-determined signature ``(src, dst, length, vnet, create_cycle)``,
   which is independent of scheme and run order (uids are not);
3. **identical deadlock verdicts** (the wedge flag).

Exposed on the CLI as ``repro-sim verify`` (see docs/VERIFY.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig
from repro.harness.runner import ExperimentSpec
from repro.stats.sweep import SweepPoint, simulate_point
from repro.verify.oracle import InvariantOracle, OracleConfig

#: The default conformance triad: three deadlock-freedom theories
#: (recovery-by-spin, recovery-by-bubble, avoidance-by-escape-VC) on the
#: same mesh datapath with the same VC budget.
DEFAULT_TRIAD: Tuple[str, ...] = (
    "mesh:minadaptive-spin-2vc",
    "mesh:staticbubble-2vc",
    "mesh:escapevc-2vc",
)

#: Signature of one delivered packet, independent of scheme and run order.
Signature = Tuple[int, int, int, int, int]


@dataclass
class SchemeResult:
    """Outcome of one design's run within a conformance comparison."""

    design: str
    point: SweepPoint
    delivered: Counter
    violations: int
    violation_families: Dict[str, int]

    @property
    def wedged(self) -> bool:
        return self.point.wedged

    def to_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "delivered": sum(self.delivered.values()),
            "wedged": self.wedged,
            "violations": self.violations,
            "violation_families": dict(self.violation_families),
            "point": self.point.to_dict(),
        }


@dataclass
class DifferentialReport:
    """Agreement verdict across all schemes of one conformance run."""

    spec: Dict[str, object]
    results: List[SchemeResult]
    disagreements: List[str] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        lines = [
            "differential conformance: "
            + ("AGREED" if self.agreed else "DISAGREED"),
            f"  spec: {self.spec}",
        ]
        for result in self.results:
            lines.append(
                f"  {result.design}: delivered="
                f"{sum(result.delivered.values())} "
                f"wedged={result.wedged} violations={result.violations}")
        for issue in self.disagreements:
            lines.append(f"  !! {issue}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "agreed": self.agreed,
            "disagreements": list(self.disagreements),
            "results": [result.to_dict() for result in self.results],
        }


def _multiset_diff(reference: Counter, other: Counter,
                   limit: int = 3) -> str:
    missing = reference - other
    extra = other - reference
    parts = []
    if missing:
        sample = list(missing.elements())[:limit]
        parts.append(f"{sum(missing.values())} missing (e.g. {sample})")
    if extra:
        sample = list(extra.elements())[:limit]
        parts.append(f"{sum(extra.values())} extra (e.g. {sample})")
    return "; ".join(parts)


def run_scheme(spec: ExperimentSpec, mode: str = "record") -> SchemeResult:
    """Run one spec with a journaling oracle attached."""
    network, traffic, injector = spec.build()
    oracle = InvariantOracle(network, OracleConfig(mode=mode, journal=True))
    point = simulate_point(network, traffic, spec.sim,
                           injection_rate=spec.injection_rate,
                           injector=injector, oracle=oracle,
                           engine=spec.engine or None)
    families = {
        key[len("violation_"):]: value
        for key, value in network.stats.events.items()
        if key.startswith("violation_")
    }
    return SchemeResult(
        design=spec.design,
        point=point,
        delivered=Counter(oracle.delivered_signatures),
        violations=oracle.violation_count,
        violation_families=families,
    )


def conformance_sim() -> SimulationConfig:
    """Default windows for a conformance run: modest measure window, a
    long drain so every created packet can complete under every scheme."""
    return SimulationConfig(warmup_cycles=200, measure_cycles=600,
                            drain_cycles=2400, deadlock_abort_cycles=1500)


def run_conformance(pattern: str = "uniform",
                    injection_rate: float = 0.12,
                    seed: int = 1,
                    designs: Sequence[str] = DEFAULT_TRIAD,
                    mesh_side: int = 4,
                    sim: Optional[SimulationConfig] = None,
                    mode: str = "record",
                    engine: str = "") -> DifferentialReport:
    """Run one seeded experiment under every design and compare.

    All designs must share a topology family and size so the seeded
    traffic stream is identical across runs.  The offered load should be
    below every scheme's saturation point — conformance asserts that the
    complete traffic stream is delivered, which an overloaded run cannot
    do inside its drain window.

    ``engine`` selects the :class:`~repro.sim.SimulatorEngine` every scheme
    runs under ("" = the usual precedence).  Conformance across *engines*
    is the same comparison with ``designs`` held fixed and this parameter
    varied — the engine-parity test suite does exactly that.
    """
    if len(designs) < 2:
        raise ValueError("conformance needs at least two designs")
    sim = sim or conformance_sim()
    specs = [
        ExperimentSpec(design=design, pattern=pattern,
                       injection_rate=injection_rate, seed=seed,
                       mesh_side=mesh_side, sim=sim, engine=engine)
        for design in designs
    ]
    results = [run_scheme(spec, mode=mode) for spec in specs]

    disagreements: List[str] = []
    for result in results:
        if result.violations:
            disagreements.append(
                f"{result.design}: {result.violations} invariant "
                f"violation(s) {result.violation_families}")
    reference = results[0]
    for result in results[1:]:
        if result.wedged != reference.wedged:
            disagreements.append(
                f"deadlock verdict differs: {reference.design} "
                f"wedged={reference.wedged} vs {result.design} "
                f"wedged={result.wedged}")
        if result.delivered != reference.delivered:
            disagreements.append(
                f"delivered multiset differs: {reference.design} vs "
                f"{result.design}: "
                + _multiset_diff(reference.delivered, result.delivered))
    report_spec = {"pattern": pattern, "injection_rate": injection_rate,
                   "seed": seed, "mesh_side": mesh_side,
                   "designs": list(designs)}
    if engine:
        report_spec["engine"] = engine
    return DifferentialReport(
        spec=report_spec,
        results=results,
        disagreements=disagreements,
    )
