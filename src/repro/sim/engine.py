"""The cycle loop.

The simulator is deliberately simple: a :class:`Simulator` owns a current
cycle counter and a list of components, and advances them in phase order once
per cycle.  Components implement any subset of the phase hooks below; the
network substrate (:mod:`repro.network.network`) is the main component and
internally sequences its own sub-phases (SM processing, switch allocation,
link delivery) in the order required by the SPIN implementation.

Phases per cycle, in order:

1. ``phase_deliver``   — in-flight flits/SMs whose arrival time is now land.
2. ``phase_control``   — control planes run (SPIN FSMs, recovery baselines).
3. ``phase_inject``    — traffic sources hand new packets to NICs, NICs
   push packets into router input VCs.
4. ``phase_allocate``  — switch allocation; granted packets start traversing.
5. ``phase_collect``   — statistics and invariant checks.
"""

from __future__ import annotations

from typing import List, Protocol


class Component(Protocol):
    """Anything that participates in the cycle loop.

    All hooks are optional; the simulator calls only the ones a component
    defines.
    """

    def phase_deliver(self, cycle: int) -> None: ...

    def phase_control(self, cycle: int) -> None: ...

    def phase_inject(self, cycle: int) -> None: ...

    def phase_allocate(self, cycle: int) -> None: ...

    def phase_collect(self, cycle: int) -> None: ...


_PHASES = (
    "phase_deliver",
    "phase_control",
    "phase_inject",
    "phase_allocate",
    "phase_collect",
)


class Simulator:
    """Advances registered components through the per-cycle phases.

    This is the ``reference`` engine of the :class:`repro.sim.SimulatorEngine`
    protocol: the straightforward per-object loop every other subsystem is
    validated against.  See :mod:`repro.sim.engine_api` for engine selection
    and :mod:`repro.sim.fastcore` for the event-driven ``fast`` engine.
    """

    #: Engine registry name (see repro.sim.engine_api).
    name = "reference"

    def __init__(self) -> None:
        self.cycle = 0
        self._components: List[object] = []
        self._observers: List[object] = []
        self._profiler = None
        # Resolved (component, bound method) pairs per phase, built lazily so
        # the hot loop does not pay getattr costs every cycle.
        self._schedule = None

    def register(self, component: object) -> None:
        """Add a component to the cycle loop (in registration order)."""
        self._components.append(component)
        self._schedule = None

    def register_observer(self, observer: object) -> None:
        """Add a read-only observer that runs *after* every component.

        Observers implement the same phase hooks as components but are
        sequenced last within each phase regardless of registration order,
        so per-cycle checkers (the :mod:`repro.verify` invariant oracle,
        trace recorders) always see the settled state of the cycle.  When
        no observer is registered the hot loop is byte-for-byte the
        schedule it always was — observation is zero-cost when disabled.
        """
        self._observers.append(observer)
        self._schedule = None

    def attach_profiler(self, profiler):
        """Attach a :class:`repro.sim.profile.PhaseProfiler` (or detach
        with ``None``).

        Profiling is applied when the schedule is (re)built: each phase's
        bound-method list is fused into one timed closure.  With no
        profiler attached the schedule is exactly the unprofiled one, so
        the hot loop pays nothing when profiling is off.
        """
        self._profiler = profiler
        self._schedule = None
        return profiler

    def _wrap_schedule(self, schedule):
        if self._profiler is None:
            return schedule
        prefix = len("phase_")
        return [
            [self._profiler.wrap_phase(phase[prefix:], bound)]
            for phase, bound in zip(_PHASES, schedule)
        ]

    def _build_schedule(self):
        schedule = []
        for phase in _PHASES:
            bound = [
                getattr(component, phase)
                for component in self._components
                if hasattr(component, phase)
            ]
            bound.extend(
                getattr(observer, phase)
                for observer in self._observers
                if hasattr(observer, phase)
            )
            schedule.append(bound)
        return self._wrap_schedule(schedule)

    def step(self) -> None:
        """Simulate exactly one cycle."""
        if self._schedule is None:
            self._schedule = self._build_schedule()
        cycle = self.cycle
        for bound_methods in self._schedule:
            for method in bound_methods:
                method(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Simulate the given number of cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate, max_cycles: int) -> bool:
        """Step until ``predicate()`` is true or ``max_cycles`` elapse.

        Returns:
            True if the predicate became true, False on cycle exhaustion.
        """
        for _ in range(max_cycles):
            if predicate():
                return True
            self.step()
        return predicate()
