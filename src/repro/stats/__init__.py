"""Statistics collection, experiment sweeps, and persisted results."""

from repro.stats.collectors import NetworkStats, LatencySummary
from repro.stats.results import (
    RESULTS_SCHEMA,
    load_results,
    results_from_json,
    results_to_json,
    save_results,
)
from repro.stats.sweep import (
    InjectionSweep,
    SaturationCursor,
    SweepPoint,
    run_point,
    simulate_point,
    truncate_at_saturation,
)

__all__ = [
    "NetworkStats",
    "LatencySummary",
    "InjectionSweep",
    "SaturationCursor",
    "SweepPoint",
    "run_point",
    "simulate_point",
    "truncate_at_saturation",
    "RESULTS_SCHEMA",
    "save_results",
    "load_results",
    "results_to_json",
    "results_from_json",
]
