"""The topology-agnosticism matrix — SPIN's headline flexibility claim.

One configuration (fully adaptive minimal routing, 1 VC, SPIN recovery,
identical parameters) across every topology in the package, with zero
topology-specific tuning: the same control plane keeps them all
deadlock-free, which no avoidance framework in Table I can do without
per-topology CDG engineering.
"""

import pytest

from repro.config import NetworkConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.fbfly import FlattenedButterflyTopology
from repro.topology.irregular import faulty_mesh, random_regular_topology
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import UniformRandom

TOPOLOGIES = {
    "mesh": lambda: MeshTopology(4, 4),
    "torus": lambda: TorusTopology(4, 4),
    "ring": lambda: RingTopology(8),
    "dragonfly": lambda: DragonflyTopology(2, 4, 2),
    "fbfly": lambda: FlattenedButterflyTopology(4),
    "fattree": lambda: FatTreeTopology(4, 2, terminals_per_leaf=2),
    "faulty_mesh": lambda: faulty_mesh(4, 4, 4, rng=DeterministicRng(2)),
    "random_regular": lambda: random_regular_topology(12, 3, seed=4),
}


def run_spin_network(topology, rate, seed=6, inject_until=1200,
                     total=8000):
    network = Network(topology, NetworkConfig(vcs_per_vnet=1),
                      MinimalAdaptiveRouting(seed),
                      spin=SpinParams(tdd=32), seed=seed)
    network.stats.open_window(0, inject_until)
    traffic = SyntheticTraffic(
        network, UniformRandom(topology.num_nodes), rate, seed=seed,
        stop_at=inject_until, mix=PacketMix.single(1))
    sim = Simulator()
    sim.register(traffic)
    sim.register(network)
    sim.run(total)
    return network, sim


class TestOneConfigEverywhere:
    #: Per-topology offered load and cycle budget: near each fabric's 1-VC
    #: saturation, so recoveries occur yet the backlog drains in-budget
    #: (the dragonfly's serialized global-link recoveries need longer).
    RATES = {"dragonfly": 0.06}
    TOTALS = {"dragonfly": 14000}

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_spin_keeps_every_topology_live(self, name):
        topology = TOPOLOGIES[name]()
        network, sim = run_spin_network(topology,
                                        rate=self.RATES.get(name, 0.10),
                                        total=self.TOTALS.get(name, 8000))
        stats = network.stats
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog()), name
        assert network.is_drained(), (
            name, network.packets_in_flight(), network.total_backlog())
        assert not has_deadlock(network, sim.cycle), name

    @pytest.mark.parametrize("name", ["mesh", "torus", "ring", "fbfly"])
    def test_heavier_load_still_conserves(self, name):
        topology = TOPOLOGIES[name]()
        network, sim = run_spin_network(topology, rate=0.3, total=10000)
        stats = network.stats
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog()), name
        assert stats.packets_delivered > 0
