"""The principle of rotating priority (paper Sec. IV-C1).

For a network with N routers, router priorities start as their ids and
rotate round-robin every *epoch* (4 x tDD cycles by default), so every
router eventually holds the highest priority long enough — at least
3 x tDD contiguous cycles of its epoch — to detect a deadlock, send a
probe and receive it back without losing a contention anywhere.
"""

from __future__ import annotations


class RotatingPriority:
    """Computes dynamic router priorities as a function of the cycle."""

    def __init__(self, num_routers: int, epoch_length: int) -> None:
        self.num_routers = num_routers
        self.epoch_length = epoch_length

    def dynamic_priority(self, router: int, cycle: int) -> int:
        """Priority of a router at a cycle; larger values win contention."""
        rotation = cycle // self.epoch_length
        return (router + rotation) % self.num_routers

    def highest_priority_router(self, cycle: int) -> int:
        """The router currently holding the maximum priority."""
        rotation = cycle // self.epoch_length
        return (self.num_routers - 1 - rotation) % self.num_routers

    def cycles_until_highest(self, router: int, cycle: int) -> int:
        """Cycles until ``router`` next starts a highest-priority epoch."""
        epochs_away = (self.highest_priority_router(cycle) - router) % self.num_routers
        if epochs_away == 0:
            return 0
        next_epoch_start = (cycle // self.epoch_length + epochs_away) * self.epoch_length
        return next_epoch_start - cycle
