"""Unit tests for statistics collection and injection sweeps."""

import pytest

from repro.config import SimulationConfig
from repro.network.packet import Packet
from repro.stats.collectors import LatencySummary, NetworkStats
from repro.stats.sweep import InjectionSweep, SweepPoint, run_point
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import make_mesh_network


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_percentiles(self):
        summary = LatencySummary.from_samples(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 51
        assert summary.p99 == 100
        assert summary.maximum == 100


class TestNetworkStats:
    def _packet(self, length=2):
        packet = Packet(0, 1, 0, 1, length=length, create_cycle=10)
        return packet

    def test_window_marks_measured(self):
        stats = NetworkStats()
        stats.open_window(100, 200)
        inside = self._packet()
        outside = self._packet()
        stats.record_creation(inside, 150)
        stats.record_creation(outside, 250)
        assert inside.measured and not outside.measured
        assert stats.measured_created == 1

    def test_delivery_accounting(self):
        stats = NetworkStats()
        stats.open_window(0, 100)
        packet = self._packet(length=3)
        stats.record_creation(packet, 50)
        packet.inject_cycle = 55
        packet.eject_cycle = 70
        stats.record_delivery(packet, 70)
        assert stats.measured_flits_delivered == 3
        assert stats.latencies == [60]
        assert stats.network_latencies == [15]
        assert stats.delivery_ratio() == 1.0

    def test_throughput(self):
        stats = NetworkStats()
        stats.open_window(0, 100)
        for _ in range(10):
            packet = self._packet(length=5)
            stats.record_creation(packet, 10)
            packet.inject_cycle = 11
            packet.eject_cycle = 30
            stats.record_delivery(packet, 30)
        assert stats.throughput(measure_cycles=100, num_nodes=5) == pytest.approx(0.1)

    def test_event_counter(self):
        stats = NetworkStats()
        stats.count("spins")
        stats.count("spins", 4)
        assert stats.events["spins"] == 5


def _traffic_factory(network, rate, stop_at):
    return SyntheticTraffic(network, make_pattern("uniform", 16), rate,
                            seed=4, stop_at=stop_at,
                            mix=PacketMix.single(1))


class TestRunPoint:
    def test_low_load_point(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=1000,
                                      drain_cycles=800)
        network, point = run_point(
            lambda: make_mesh_network(side=4, vcs=2),
            lambda net, stop: _traffic_factory(net, 0.05, stop),
            sim_config, injection_rate=0.05)
        assert point.delivery_ratio == 1.0
        assert not point.wedged
        assert 4 < point.mean_latency < 30
        assert point.throughput == pytest.approx(0.05, rel=0.25)

    def test_wedge_detection(self):
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=1500,
                                      drain_cycles=1500,
                                      deadlock_abort_cycles=600)
        network, point = run_point(
            lambda: make_mesh_network(side=4, vcs=1),  # no SPIN: deadlocks
            lambda net, stop: _traffic_factory(net, 0.45, stop),
            sim_config, injection_rate=0.45)
        assert point.wedged


class TestInjectionSweep:
    def test_sweep_stops_after_saturation(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=800,
                                      drain_cycles=500)
        sweep = InjectionSweep(
            lambda: make_mesh_network(side=4, vcs=2),
            _traffic_factory,
            sim_config,
            rates=[0.02, 0.1, 0.2, 0.3, 0.4, 0.6, 0.9],
        )
        points = sweep.run()
        assert 2 <= len(points) <= 7
        saturation = sweep.saturation_rate(points)
        assert 0.02 <= saturation < 0.9

    def test_saturation_monotone_in_vcs(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=800,
                                      drain_cycles=500)

        def saturation(vcs):
            sweep = InjectionSweep(
                lambda: make_mesh_network(side=4, vcs=vcs),
                _traffic_factory, sim_config,
                rates=[0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5])
            return sweep.saturation_rate(sweep.run())

        # More VCs -> at least as much sustainable load (deadlocks aside,
        # low-load points here stay below deadlock formation).
        assert saturation(3) >= saturation(1)


class TestSweepPoint:
    def test_saturated_flags(self):
        good = SweepPoint(0.1, 20.0, 40.0, 0.1, 1.0, False, 100)
        assert not good.saturated(zero_load_latency=15.0)
        slow = SweepPoint(0.5, 200.0, 400.0, 0.2, 1.0, False, 100)
        assert slow.saturated(zero_load_latency=15.0)
        lossy = SweepPoint(0.5, 20.0, 40.0, 0.2, 0.5, False, 100)
        assert lossy.saturated(zero_load_latency=15.0)
        wedged = SweepPoint(0.5, 20.0, 40.0, 0.2, 1.0, True, 100)
        assert wedged.saturated(zero_load_latency=15.0)
