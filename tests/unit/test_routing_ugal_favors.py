"""Unit tests for dragonfly UGAL and the FAvORS algorithms."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.favors import FavorsMinimal, FavorsNonMinimal
from repro.routing.ugal import MinimalDragonflyRouting, UgalRouting
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology


def dragonfly_network(routing, vcs=3):
    return Network(DragonflyTopology(2, 4, 2),
                   NetworkConfig(vcs_per_vnet=vcs), routing, seed=1)


def packet_between(network, src_node, dst_node, length=1):
    topo = network.topology
    packet = Packet(src_node=src_node, dst_node=dst_node,
                    src_router=topo.router_of_node(src_node),
                    dst_router=topo.router_of_node(dst_node), length=length)
    return packet


class TestUgalConfiguration:
    def test_discipline_needs_three_vcs(self):
        with pytest.raises(ConfigurationError):
            dragonfly_network(UgalRouting(0, vc_discipline=True), vcs=2)

    def test_spin_variant_accepts_one_vc(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=False), vcs=1)
        assert network.routing.name == "UGAL-SPIN"

    def test_needs_dragonfly(self):
        with pytest.raises(ConfigurationError):
            Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=3),
                    UgalRouting(0))


class TestUgalVcDiscipline:
    def test_vc_class_increments_on_global_hops(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=True))
        routing = network.routing
        topo = network.topology
        packet = packet_between(network, 0, topo.num_nodes - 1)
        packet.vc_class = 0
        packet.route_state["globals"] = 0
        router = network.routers[0]
        global_port = topo.a - 1  # first global channel
        routing.on_hop(packet, router, global_port)
        assert packet.vc_class == 1
        routing.on_hop(packet, router, 0)  # local hop: unchanged
        assert packet.vc_class == 1
        routing.on_hop(packet, router, global_port)
        assert packet.vc_class == 2

    def test_vc_choices_follow_class(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=True))
        routing = network.routing
        packet = packet_between(network, 0, 40)
        packet.vc_class = 1
        assert list(routing.vc_choices(packet, network.routers[0], 0)) == [1]
        assert list(routing.injection_vc_choices(packet)) == [0]

    def test_spin_variant_uses_any_vc(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=False))
        routing = network.routing
        packet = packet_between(network, 0, 40)
        packet.vc_class = 2
        assert list(routing.vc_choices(packet, network.routers[0], 0)) == [0, 1, 2]


class TestUgalSourceDecision:
    def test_uncongested_stays_minimal(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=True))
        packet = packet_between(network, 0, 40)
        network.routing.on_inject(packet, now=0)
        assert packet.intermediate_router is None
        assert packet.phase == 1

    def test_intra_group_always_minimal(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=True))
        packet = packet_between(network, 0, 3)  # nodes 0,3 -> routers 0,1
        network.routing.on_inject(packet, now=0)
        assert packet.intermediate_router is None

    def test_congested_minimal_path_diverts(self):
        network = dragonfly_network(UgalRouting(0, vc_discipline=True))
        routing = network.routing
        topo = network.topology
        packet = packet_between(network, 0, topo.num_nodes - 1)
        source = network.routers[0]
        # Saturate the minimal first hops' class-0 VCs long enough that the
        # congestion proxy (VC active time) favours the Valiant detour.
        min_ports = routing.productive_ports(source, packet.dst_router)
        for port in min_ports:
            neighbor, inport = source.out_neighbors[port]
            neighbor.vnet_slice(inport, 0)[0].reserve(
                packet_between(network, 1, 2), now=0, link_latency=1,
                router_latency=1)
        routing.on_inject(packet, now=500)
        assert packet.intermediate_router is not None
        assert packet.phase == 0

    def test_misroute_bound_is_one(self):
        assert UgalRouting(0).max_misroutes == 1
        assert FavorsNonMinimal(0).max_misroutes == 1


class TestFavors:
    def test_minimal_variant_is_minimal(self):
        assert FavorsMinimal(0).minimal
        assert FavorsMinimal(0).max_misroutes == 0

    def test_nonminimal_uncongested_stays_minimal(self):
        network = dragonfly_network(FavorsNonMinimal(0), vcs=1)
        packet = packet_between(network, 0, 40)
        network.routing.on_inject(packet, now=0)
        assert packet.intermediate_router is None

    def test_nonminimal_congestion_triggers_detour(self):
        network = dragonfly_network(FavorsNonMinimal(0), vcs=1)
        routing = network.routing
        topo = network.topology
        packet = packet_between(network, 0, topo.num_nodes - 1)
        source = network.routers[0]
        for port in routing.productive_ports(source, packet.dst_router):
            neighbor, inport = source.out_neighbors[port]
            neighbor.vnet_slice(inport, 0)[0].reserve(
                packet_between(network, 1, 2), now=0, link_latency=1,
                router_latency=1)
        routing.on_inject(packet, now=1000)
        assert packet.intermediate_router is not None
        assert packet.intermediate_router not in (
            packet.src_router, packet.dst_router)

    def test_phase_switches_at_intermediate(self):
        network = dragonfly_network(FavorsNonMinimal(0), vcs=1)
        packet = packet_between(network, 0, 40)
        packet.intermediate_router = 7
        packet.phase = 0
        assert packet.routing_target == 7
        assert not packet.reached_phase_target(7)
        assert packet.routing_target == packet.dst_router


class TestMinimalDragonfly:
    def test_requires_dragonfly(self):
        with pytest.raises(ConfigurationError):
            Network(MeshTopology(4, 4), NetworkConfig(),
                    MinimalDragonflyRouting(0))

    def test_candidates_reduce_distance(self):
        network = dragonfly_network(MinimalDragonflyRouting(0), vcs=1)
        topo = network.topology
        routing = network.routing
        packet = packet_between(network, 0, topo.num_nodes - 1)
        here = packet.src_router
        for port in routing.candidate_outports(network.routers[here], packet):
            neighbor, _ = network.routers[here].out_neighbors[port]
            assert topo.min_hops(neighbor.id, packet.dst_router) < (
                topo.min_hops(here, packet.dst_router))
