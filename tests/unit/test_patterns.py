"""Unit tests for synthetic traffic patterns."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng
from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    BitRotation,
    Neighbor,
    Shuffle,
    Tornado,
    Transpose,
    UniformRandom,
    make_pattern,
)


@pytest.fixture
def rng():
    return DeterministicRng(0)


class TestUniform:
    def test_never_self(self, rng):
        pattern = UniformRandom(16)
        assert all(pattern.dest(5, rng) != 5 for _ in range(300))

    def test_covers_all_destinations(self, rng):
        pattern = UniformRandom(8)
        seen = {pattern.dest(0, rng) for _ in range(400)}
        assert seen == set(range(1, 8))


class TestPermutations:
    def test_bit_complement(self, rng):
        pattern = BitComplement(16)
        assert pattern.dest(0, rng) == 15
        assert pattern.dest(5, rng) == 10

    def test_bit_complement_is_involution(self, rng):
        pattern = BitComplement(64)
        for src in range(64):
            dst = pattern.dest(src, rng)
            assert pattern.dest(dst, rng) == src

    def test_bit_reverse(self, rng):
        pattern = BitReverse(16)
        assert pattern.dest(0b0001, rng) == 0b1000
        # 0110 reversed is 0110 -> self-addressed, returns None
        assert pattern.dest(0b0110, rng) is None

    def test_bit_reverse_is_involution(self, rng):
        pattern = BitReverse(64)
        for src in range(64):
            dst = pattern.dest(src, rng)
            if dst is not None:
                assert pattern.dest(dst, rng) == src

    def test_rotation_and_shuffle_are_inverses(self, rng):
        rotate = BitRotation(32)
        shuffle = Shuffle(32)
        for src in range(32):
            dst = rotate.dest(src, rng)
            if dst is not None:
                assert shuffle.dest(dst, rng) in (src, None)

    def test_grid_transpose(self, rng):
        pattern = Transpose(16, cols=4)
        # node (x=1, y=2) = 9 -> (x=2, y=1) = 6
        assert pattern.dest(9, rng) == 6
        assert pattern.dest(5, rng) is None  # diagonal

    def test_bit_transpose(self, rng):
        pattern = Transpose(16)
        # swap bit halves: 0b0111 -> 0b1101
        assert pattern.dest(0b0111, rng) == 0b1101

    def test_transpose_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            Transpose(12, cols=4)

    def test_tornado_grid_distance(self, rng):
        pattern = Tornado(16, cols=4)
        for src in range(16):
            dst = pattern.dest(src, rng)
            assert dst is not None
            assert dst // 4 == src // 4  # same row
            assert (dst % 4 - src % 4) % 4 == 2  # half-way across x

    def test_tornado_ring(self, rng):
        pattern = Tornado(8)
        assert pattern.dest(0, rng) == 3

    def test_neighbor(self, rng):
        pattern = Neighbor(10)
        assert pattern.dest(9, rng) == 0
        assert pattern.dest(3, rng) == 4


class TestFactory:
    def test_known_names(self):
        for name in ("uniform", "bit_complement", "bit_reverse",
                     "bit_rotation", "shuffle", "transpose", "tornado",
                     "neighbor"):
            assert make_pattern(name, 16, cols=4).num_nodes == 16

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_pattern("zipf", 16)

    def test_power_of_two_required_for_bit_patterns(self):
        with pytest.raises(ConfigurationError):
            make_pattern("bit_reverse", 12)
