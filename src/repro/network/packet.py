"""Packets.

The simulator moves whole packets between virtual channels while accounting
for multi-flit serialization exactly (see DESIGN.md §3), so the packet is the
unit of bookkeeping and flits exist as timing, not as objects.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


class Packet:
    """One network packet.

    Attributes:
        uid: Globally unique packet id.
        src_node / dst_node: Terminal endpoints.
        src_router / dst_router: Routers those terminals attach to.
        length: Packet length in flits.
        vnet: Virtual network (message class) the packet travels in.
        create_cycle: Cycle the traffic source created the packet (queueing
            delay at the NIC counts toward end-to-end latency).
        inject_cycle: Cycle the packet entered a router input VC, or None
            while still queued at the NIC.
        eject_cycle: Cycle the packet's tail reached its destination NIC.
        hops: Router-to-router hops taken so far.
        misroutes: Hops that did not reduce the distance to the current
            routing target.
        spins: Number of SPIN rotations this packet has participated in.
        intermediate_router: Valiant intermediate router for non-minimal
            routing, or None.
        phase: 0 while heading to the intermediate router, 1 afterwards
            (always 1 for minimal routing).
        vc_class: VC class the packet is restricted to under Dally-style VC
            ordering disciplines (managed by the routing algorithm).
        current_request: Output port the packet asked for in the last
            allocation cycle (consumed by SPIN's probe logic), or None.
        measured: Whether this packet falls in the statistics window.
        route_state: Open dictionary for algorithm-specific annotations.
    """

    __slots__ = (
        "uid", "src_node", "dst_node", "src_router", "dst_router", "length",
        "vnet", "create_cycle", "inject_cycle", "eject_cycle", "hops",
        "misroutes", "spins", "intermediate_router", "phase", "vc_class",
        "current_request", "measured", "route_state", "reply_length",
    )

    def __init__(self, src_node: int, dst_node: int, src_router: int,
                 dst_router: int, length: int, vnet: int = 0,
                 create_cycle: int = 0) -> None:
        self.uid = next(_packet_ids)
        self.src_node = src_node
        self.dst_node = dst_node
        self.src_router = src_router
        self.dst_router = dst_router
        self.length = length
        self.vnet = vnet
        self.create_cycle = create_cycle
        self.inject_cycle: Optional[int] = None
        self.eject_cycle: Optional[int] = None
        self.hops = 0
        self.misroutes = 0
        self.spins = 0
        self.intermediate_router: Optional[int] = None
        self.phase = 1
        self.vc_class = 0
        self.current_request: Optional[int] = None
        self.measured = False
        self.route_state: Dict[str, Any] = {}
        #: Length of the reply this packet solicits (request/response traffic),
        #: or 0 for one-way traffic.
        self.reply_length = 0

    @property
    def routing_target(self) -> int:
        """Router the packet is currently steering toward.

        The intermediate router during phase 0 of non-minimal routing, the
        final destination otherwise.
        """
        if self.phase == 0 and self.intermediate_router is not None:
            return self.intermediate_router
        return self.dst_router

    def reached_phase_target(self, router: int) -> bool:
        """Advance to phase 1 if the phase-0 target was reached.

        Returns:
            True if the packet is at its *final* destination router.
        """
        if self.phase == 0 and router == self.intermediate_router:
            self.phase = 1
        return router == self.dst_router and self.phase == 1

    def latency(self) -> int:
        """End-to-end latency including NIC queueing.

        Raises:
            ValueError: If the packet has not been ejected yet.
        """
        if self.eject_cycle is None:
            raise ValueError(f"packet {self.uid} not ejected yet")
        return self.eject_cycle - self.create_cycle

    def network_latency(self) -> int:
        """Latency from router injection to ejection (no NIC queueing)."""
        if self.eject_cycle is None or self.inject_cycle is None:
            raise ValueError(f"packet {self.uid} not delivered yet")
        return self.eject_cycle - self.inject_cycle

    def __repr__(self) -> str:
        return (f"Packet(uid={self.uid}, {self.src_node}->{self.dst_node}, "
                f"len={self.length}, vnet={self.vnet}, hops={self.hops})")
