"""Channel Dependency Graph (CDG) analysis — Dally's sufficient condition.

Dally & Seitz: a routing function is deadlock-free on a network if its
channel dependency graph is acyclic.  This module builds the *exact* CDG of
a position+destination routing function by forward reachability: starting
from every injection, it propagates (channel, destination) pairs through the
routing relation, adding a dependency edge ``c_in -> c_out`` only for
channel pairs some real packet can exercise.  (Naively pairing every input
channel with every output candidate would report phantom cycles for turn
models such as west-first.)

Used by the tests to certify that the Dally/Duato baselines are avoidance-
correct (XY and west-first CDGs acyclic; the escape-VC subfunction acyclic)
and that fully adaptive routing is not (cyclic CDG on a mesh — the paper's
premise for why SPIN is needed at all).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set, Tuple

import networkx as nx

from repro.network.packet import Packet

Channel = Tuple[int, int]  # (source router, output port)


def _fake_packet(network, dst_router: int) -> Packet:
    dst_node = network.topology.nodes_of_router(dst_router)[0]
    packet = Packet(src_node=0, dst_node=dst_node, src_router=0,
                    dst_router=dst_router, length=1)
    packet.phase = 1
    return packet


def channel_dependency_graph(network, routing=None,
                             destinations: Optional[Set[int]] = None) -> nx.DiGraph:
    """Exact CDG of a (router, destination) -> ports routing function.

    Args:
        network: A bound network (provides routers and topology).
        routing: Routing function to analyze; defaults to the network's.
            Pass e.g. the escape subfunction of an escape-VC design.
        destinations: Restrict the analysis to these destination routers
            (defaults to all).

    Returns:
        Directed graph over channels ``(router, outport)``.
    """
    routing = routing or network.routing
    topology = network.topology
    graph = nx.DiGraph()
    all_dsts = destinations or range(topology.num_routers)
    for dst_router in all_dsts:
        packet = _fake_packet(network, dst_router)
        # Reachable channels for this destination, seeded at every source.
        frontier = deque()
        seen: Set[Channel] = set()
        for router in network.routers:
            if router.id == dst_router:
                continue
            for port in routing.candidate_outports(router, packet):
                channel = (router.id, port)
                graph.add_node(channel)
                if channel not in seen:
                    seen.add(channel)
                    frontier.append(channel)
        while frontier:
            src_router_id, port = frontier.popleft()
            next_router, _ = network.routers[src_router_id].out_neighbors[port]
            if next_router.id == dst_router:
                continue
            for next_port in routing.candidate_outports(next_router, packet):
                next_channel = (next_router.id, next_port)
                graph.add_edge((src_router_id, port), next_channel)
                if next_channel not in seen:
                    seen.add(next_channel)
                    frontier.append(next_channel)
    return graph


def is_acyclic(graph: nx.DiGraph) -> bool:
    """Whether a CDG satisfies Dally's sufficient condition."""
    return nx.is_directed_acyclic_graph(graph)


def cdg_cycles(graph: nx.DiGraph, limit: int = 10):
    """Up to ``limit`` elementary cycles of a CDG (diagnostics)."""
    cycles = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(cycle)
        if len(cycles) >= limit:
            break
    return cycles
