"""Struct-of-arrays allocation core for the ``fast`` engine's active regions.

The idle-skip layer (:mod:`repro.sim.fastcore.simulator`) makes *quiescent*
routers free; this module makes *active* routers cheap.  At build time
:class:`SoaCore` compiles the network into integer-indexed tables — a global
VC id space with occupancy/ready/credit mirrors, per-router active-VC rows,
precombined candidate entries with downstream-VC id slices, arbitration keys
and lazy hop-distance rows — and advances the hot phases (``allocate``,
``inject``) over those tables with the reference datapath inlined.

Authority and synchronization contract
--------------------------------------

The reference objects (``Router``, ``VirtualChannel``, ``Link``, ``Packet``)
stay **authoritative**: every grant writes them exactly as
``Router._grant_network`` / ``_grant_ejection`` / ``VirtualChannel.reserve``
would, so observers, the invariant oracle, golden traces and the SPIN
controllers see identical state at every phase boundary.  The compiled
tables are *mirrors*, kept in sync through the same ``note_vc_reserved`` /
``note_vc_released`` event funnel the idle-skip layer already relies on:

* ``vc_pkt[vid]``   — occupancy bitmap; authoritative whenever consulted.
* ``vc_ready[vid]`` — ``ready_at`` mirror; only consulted while occupied
  (synced by the reserve event, after the object's fields settle).
* ``vc_free[vid]``  — ``free_at`` mirror; only consulted while *empty*
  (synced by the release event).  Control planes that *lower* ``free_at``
  immediately before re-reserving a VC (the spin executor, the proactive
  and centralized planes) leave a stale-high mirror behind an occupied
  bitmap bit, which is never read.
* ``frozen`` and ``packet`` contents are always read from the objects —
  controllers freeze/unfreeze without datapath events.

A legacy *vc-less* event (golden/model scenarios plant deadlocks by mutating
VC fields directly, then fire ``note_vc_reserved(router)``) triggers
:meth:`resync`, a full rebuild of every dynamic table from the objects.
:meth:`verify_against_objects` checks the whole mirror invariant and backs
the round-trip property tests.

Decision inlining (valid only under the simulator's routing whitelist —
base-class ``decide``/``select``/``wait_choice``/VC policies and no-op
``on_hop``/``on_inject`` hooks):

* ejection short-path for packets at their destination;
* single-candidate requests skip ``select`` entirely;
* multi-candidate requests scan downstream idle state via the mirrors and
  draw from ``routing.rng`` *exactly* when the reference free-list is
  non-empty (same list, same order, same bound RNG method);
* fully-blocked packets keep their sticky previous request without any
  call; the rare remaining shapes (phase-0 packets, invalidated sticky
  requests) fall through to the real ``routing.decide``.

Wake analysis mirrors the idle-skip layer: a router that issued no request
and consumed no randomness sleeps until the earliest mirror-derived time
anything could change; release events from downstream re-arm it earlier.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.network.router import EJECT_PORT_BASE, INJECT_PORT_BASE

#: Sentinel wake time meaning "never (until an event)".
_NEVER = 1 << 60


class SoaCore:
    """Compiled flat-table state + inlined hot phases for one network."""

    def __init__(self, net) -> None:
        self.net = net
        self.routing = net.routing
        self.routers = net.routers
        self.nics = net.nics
        self.stats = net.stats
        config = net.config
        self.router_latency = config.router_latency
        self.num_vnets = config.num_vnets
        #: Bound ``random.Random.choice`` of the routing RNG — the exact
        #: method ``RoutingAlgorithm.select`` draws from.
        self.rng_choice = net.routing.rng._random.choice
        self._count_event = net.stats.count

        self._compile_static()
        self.resync()

    # ------------------------------------------------------------------
    # Build-time compilation
    # ------------------------------------------------------------------
    def _compile_static(self) -> None:
        net = self.net
        routers = self.routers
        count = len(routers)
        self.router_count = count

        # Global VC id space: router-major, ``all_inports()`` scan order
        # (which fixes both the reference request-scan order and, through
        # it, the RNG draw order).
        vc_obj: List[object] = []
        vid_of: Dict[int, int] = {}
        r_lo = [0] * (count + 1)
        vc_inport: List[int] = []
        vc_arbkey: List[int] = []
        for rid, router in enumerate(routers):
            r_lo[rid] = len(vc_obj)
            for inport, vcs in router.all_inports():
                for vc in vcs:
                    vid_of[id(vc)] = len(vc_obj)
                    vc_obj.append(vc)
                    vc_inport.append(inport)
                    vc_arbkey.append(inport * 64 + vc.index)
        r_lo[count] = len(vc_obj)
        self.vc_obj = vc_obj
        self.vid_of = vid_of
        self.r_lo = r_lo
        self.vc_inport = vc_inport
        self.vc_arbkey = vc_arbkey
        nvcs = len(vc_obj)

        # Upstream router per vid (release events re-arm the upstream
        # router's wake time) and owning NIC per injection-port vid.
        upmap = {(link.dst, link.dst_port): link.src
                 for link in net.links.values()}
        nic_at = {(nic.router_id, nic.inject_port): nic.node
                  for nic in net.nics}
        self.up_rid = [
            upmap.get((vc.router, vc.inport), -1) for vc in vc_obj
        ]
        self.nic_of = [
            nic_at.get((vc.router, vc.inport), -1) for vc in vc_obj
        ]

        # Per-(router, outport) downstream info: the link, the neighbor
        # router id, and per-vnet downstream VC object/vid rows.
        num_vnets = self.num_vnets
        outinfo = {}
        for router in routers:
            for outport, (neighbor, dst_port) in router.out_neighbors.items():
                link = router.out_links[outport]
                dvcs_v = tuple(
                    tuple(neighbor.vnet_slice(dst_port, vnet))
                    for vnet in range(num_vnets))
                dvids_v = tuple(
                    tuple(vid_of[id(dvc)] for dvc in row) for row in dvcs_v)
                outinfo[(router.id, outport)] = (
                    outport, link, neighbor.id, dvcs_v, dvids_v)
        self.outinfo = outinfo

        # Candidate info per (router, routing target): an ``(entries,
        # ports)`` pair where ``entries`` are enriched outinfo tuples and
        # ``ports`` the raw candidate tuple (for the sticky-request test).
        # Row-indexed by target router id — this lookup runs once per
        # active VC per cycle, so it avoids tuple-key hashing.  Filled
        # lazily by the first packet that needs each slot (candidate sets
        # depend only on static topology for whitelisted algorithms).
        self.cand_rows: List[List[Optional[tuple]]] = [
            [None] * count for _ in range(count)]

        # Hop-distance rows per routing target, filled lazily.
        self._hops: Dict[int, List[int]] = {}
        self._min_hops = net.topology.min_hops

        #: Ejection port per terminal node.
        self.eject_of = [EJECT_PORT_BASE + nic.local_index
                         for nic in net.nics]

        # Injection-side tables per NIC: port, router id, and per-vnet
        # injection VC object/vid rows.
        self.inj_port = [nic.inject_port for nic in net.nics]
        self.inj_rid = [nic.router_id for nic in net.nics]
        inj_vcs = []
        inj_vids = []
        for nic in net.nics:
            router = routers[nic.router_id]
            rows = tuple(
                tuple(router.vnet_slice(nic.inject_port, vnet))
                for vnet in range(num_vnets))
            inj_vcs.append(rows)
            inj_vids.append(tuple(
                tuple(vid_of[id(vc)] for vc in row) for row in rows))
        self.inj_vcs = inj_vcs
        self.inj_vids = inj_vids

        # Dynamic rows (contents rebuilt by resync()).
        self.vc_pkt = bytearray(nvcs)
        self.vc_ready = [0] * nvcs
        self.vc_free = [0] * nvcs
        self.active: List[List[int]] = [[] for _ in range(count)]
        self.r_dirty = bytearray(count)
        self.r_wake = [0] * count
        self.r_any_dirty = True
        self.r_min_wake = 0
        self.c_dirty = bytearray(count)
        self.c_due = [0] * count
        self.c_any_dirty = True
        self.c_min_due = 0
        self.nic_wake = [0] * len(net.nics)
        self.active_nics = set()
        self.occupied = 0
        self.resyncs = 0

    def _hop_row(self, target: int) -> List[int]:
        row = self._hops.get(target)
        if row is None:
            min_hops = self._min_hops
            row = [min_hops(rid, target) for rid in range(self.router_count)]
            self._hops[target] = row
        return row

    # ------------------------------------------------------------------
    # Mirror synchronization (event funnel + full resync)
    # ------------------------------------------------------------------
    def on_reserved(self, router, vc) -> None:
        """A VC was reserved (fields already settled on the object)."""
        rid = router.id
        self.occupied += 1
        self.r_dirty[rid] = 1
        self.r_any_dirty = True
        self.c_dirty[rid] = 1
        self.c_any_dirty = True
        vid = self.vid_of[id(vc)]
        self.vc_pkt[vid] = 1
        self.vc_ready[vid] = vc.ready_at
        insort(self.active[rid], vid)

    def on_released(self, router, vc) -> None:
        """A VC was released (``free_at`` already settled on the object)."""
        rid = router.id
        self.occupied -= 1
        self.r_dirty[rid] = 1
        self.r_any_dirty = True
        self.c_dirty[rid] = 1
        self.c_any_dirty = True
        vid = self.vid_of[id(vc)]
        self.vc_pkt[vid] = 0
        free = vc.free_at
        self.vc_free[vid] = free
        self.active[rid].remove(vid)
        uid = self.up_rid[vid]
        if uid >= 0:
            if self.r_wake[uid] > free:
                self.r_wake[uid] = free
                if self.r_min_wake > free:
                    self.r_min_wake = free
        else:
            node = self.nic_of[vid]
            if node >= 0 and self.nic_wake[node] > free:
                self.nic_wake[node] = free

    def nic_backlogged(self, node: int) -> None:
        self.active_nics.add(node)
        # A new head-of-queue packet may target a different vnet whose VCs
        # are idle: re-attempt immediately.
        self.nic_wake[node] = 0

    def resync(self) -> None:
        """Rebuild every dynamic table from the authoritative objects.

        Used at compile time and after a legacy *vc-less* event (scenario
        deadlock planting mutates VC fields directly); also wakes every
        router, controller and NIC, dropping all cached skip analysis.
        """
        self.resyncs += 1
        vc_pkt = self.vc_pkt
        vc_ready = self.vc_ready
        vc_free = self.vc_free
        occupied = 0
        vid = 0
        for rid, router in enumerate(self.routers):
            act = self.active[rid]
            del act[:]
            for inport, vcs in router.all_inports():
                for vc in vcs:
                    if vc.packet is not None:
                        vc_pkt[vid] = 1
                        vc_ready[vid] = vc.ready_at
                        act.append(vid)
                        occupied += 1
                    else:
                        vc_pkt[vid] = 0
                        vc_free[vid] = vc.free_at
                    vid += 1
        self.occupied = occupied
        count = self.router_count
        self.r_dirty = bytearray(b"\x01" * count)
        self.r_wake = [0] * count
        self.r_any_dirty = True
        self.r_min_wake = 0
        self.c_dirty = bytearray(b"\x01" * count)
        self.c_due = [0] * count
        self.c_any_dirty = True
        self.c_min_due = 0
        self.nic_wake = [0] * len(self.nic_wake)
        self.active_nics = {nic.node for nic in self.nics if nic.backlog()}

    def verify_against_objects(self) -> List[str]:
        """Check the mirror invariant; returns human-readable mismatches.

        The invariant covers exactly what the hot loops consult: the
        occupancy bitmap everywhere, ``vc_ready`` for occupied VCs,
        ``vc_free`` for empty VCs, the sorted per-router active rows, and
        the global occupancy count.
        """
        problems = []
        vid = 0
        occupied = 0
        for rid, router in enumerate(self.routers):
            expect_active = []
            for inport, vcs in router.all_inports():
                for vc in vcs:
                    if self.vc_obj[vid] is not vc:
                        problems.append(f"vid {vid}: object identity drifted")
                    held = vc.packet is not None
                    if bool(self.vc_pkt[vid]) != held:
                        problems.append(
                            f"vid {vid} (r{rid} p{inport}.{vc.index}): "
                            f"vc_pkt={self.vc_pkt[vid]} but "
                            f"packet={'set' if held else 'None'}")
                    if held:
                        occupied += 1
                        expect_active.append(vid)
                        if self.vc_ready[vid] != vc.ready_at:
                            problems.append(
                                f"vid {vid}: vc_ready={self.vc_ready[vid]} "
                                f"!= ready_at={vc.ready_at}")
                    elif self.vc_free[vid] != vc.free_at:
                        problems.append(
                            f"vid {vid}: vc_free={self.vc_free[vid]} "
                            f"!= free_at={vc.free_at}")
                    vid += 1
            if self.active[rid] != expect_active:
                problems.append(
                    f"router {rid}: active row {self.active[rid]} "
                    f"!= occupancy scan {expect_active}")
        if self.occupied != occupied:
            problems.append(
                f"occupied={self.occupied} != scanned {occupied}")
        return problems

    # ------------------------------------------------------------------
    # Phase: inject (inlined NetworkInterface.try_inject)
    # ------------------------------------------------------------------
    def phase_inject(self, cycle: int) -> None:
        active = self.active_nics
        if not active:
            return
        nics = self.nics
        routers = self.routers
        nic_wake = self.nic_wake
        vc_pkt = self.vc_pkt
        vc_free = self.vc_free
        vc_ready = self.vc_ready
        stats = self.stats
        router_latency = self.router_latency
        r_dirty = self.r_dirty
        c_dirty = self.c_dirty
        inj_port = self.inj_port
        inj_rid = self.inj_rid
        for node in sorted(active):
            if cycle < nic_wake[node]:
                continue
            nic = nics[node]
            rid = inj_rid[node]
            router = routers[rid]
            iport = inj_port[node]
            port_busy = router.port_busy
            queues = nic.queues
            injected = False
            if cycle > port_busy[iport]:
                num_vnets = len(queues)
                nxt = nic._next_vnet
                vid_rows = self.inj_vids[node]
                vc_rows = self.inj_vcs[node]
                for offset in range(num_vnets):
                    vnet = (nxt + offset) % num_vnets
                    queue = queues[vnet]
                    if not queue:
                        continue
                    packet = queue[0]
                    # Base-class injection_vc_choices is the full slice in
                    # index order (routing whitelist).
                    vids = vid_rows[packet.vnet]
                    vc = None
                    for j, dvid in enumerate(vids):
                        if not vc_pkt[dvid] and vc_free[dvid] <= cycle:
                            vc = vc_rows[packet.vnet][j]
                            vid = dvid
                            break
                    if vc is None:
                        continue
                    queue.popleft()
                    nic._next_vnet = (vnet + 1) % num_vnets
                    # routing.on_inject: base no-op under the whitelist.
                    length = packet.length
                    # vc.reserve(packet, cycle, 1, router_latency), idleness
                    # pre-verified through the mirrors.
                    vc.packet = packet
                    vc.head_arrival = cycle + 1
                    ready = cycle + 1 + router_latency
                    vc.ready_at = ready
                    vc.tail_arrival = cycle + length
                    vc.active_since = cycle
                    port_busy[iport] = cycle + length - 1
                    packet.inject_cycle = cycle
                    # note_vc_reserved(router, vc), inlined.
                    router.active_vcs += 1
                    self.occupied += 1
                    r_dirty[rid] = 1
                    c_dirty[rid] = 1
                    vc_pkt[vid] = 1
                    vc_ready[vid] = ready
                    insort(self.active[rid], vid)
                    stats.record_injection(packet, cycle)
                    injected = True
                    break
                if injected:
                    self.r_any_dirty = True
                    self.c_any_dirty = True
            # Wake analysis (identical to the idle-skip layer): failed
            # try_inject calls are pure, so sleeping over them is exact.
            for queue in queues:
                if queue:
                    break
            else:
                active.discard(node)
                nic_wake[node] = 0
                continue
            busy = port_busy[iport]
            if injected or cycle <= busy:
                nic_wake[node] = busy + 1
                continue
            wake = _NEVER
            vid_rows = self.inj_vids[node]
            for queue in queues:
                if not queue:
                    continue
                head = queue[0]
                for dvid in vid_rows[head.vnet]:
                    if not vc_pkt[dvid]:
                        free = vc_free[dvid]
                        if free < wake:
                            wake = free
            nic_wake[node] = wake

    # ------------------------------------------------------------------
    # Phase: allocate (inlined Router.allocate + grants + wake analysis)
    # ------------------------------------------------------------------
    def router_cycle(self, rid: int, cycle: int) -> None:
        """One allocation cycle over the compiled rows.

        Semantically a line-for-line replica of ``Router.allocate`` (route
        compute over ready unfrozen VCs, separable switch allocation with
        round-robin output arbitration, grant timing) with the module-level
        decision inlining; ends by computing the router's next wake time.
        """
        r_dirty = self.r_dirty
        r_dirty[rid] = 0
        act = self.active[rid]
        if not act:
            self.r_wake[rid] = _NEVER
            return
        router = self.routers[rid]
        routing = self.routing
        vc_obj = self.vc_obj
        vc_ready = self.vc_ready
        vc_pkt = self.vc_pkt
        vc_free = self.vc_free
        vc_arbkey = self.vc_arbkey
        eject_of = self.eject_of
        port_busy = router.port_busy
        cand_row = self.cand_rows[rid]
        requests: Dict[int, list] = {}
        decide_called = False
        wake = _NEVER
        next_cycle = cycle + 1
        for vid in act:
            vc = vc_obj[vid]
            if vc.frozen:
                continue
            ready_at = vc_ready[vid]
            if cycle < ready_at:
                if ready_at < wake:
                    wake = ready_at
                continue
            packet = vc.packet
            request = packet.current_request
            if packet.phase == 1 and packet.dst_router == rid:
                outport = eject_of[packet.dst_node]
                packet.current_request = outport
                t = port_busy[vc.inport]
                eject = router.eject_busy[outport]
                if eject > t:
                    t = eject
                t += 1
                if t < wake:
                    wake = t
            elif packet.phase == 0:
                # Non-minimal phase-0 packets mutate phase inside
                # reached_phase_target; not worth inlining (whitelisted
                # algorithms never create them).
                outport = routing.decide(router, vc.inport, packet, cycle)
                decide_called = True
            else:
                cached = cand_row[packet.dst_router]
                if cached is None:
                    cached = self._compile_candidates(router, packet,
                                                      cand_row)
                entries, ports = cached
                vnet = packet.vnet
                if len(entries) == 1:
                    entry = entries[0]
                    outport = entry[0]
                    packet.current_request = outport
                    # Wake: next grant opportunity through this port.
                    idle = False
                    earliest = _NEVER
                    for dvid in entry[4][vnet]:
                        if not vc_pkt[dvid]:
                            free = vc_free[dvid]
                            if free <= cycle:
                                idle = True
                                break
                            if free < earliest:
                                earliest = free
                    if idle:
                        if next_cycle < wake:
                            wake = next_cycle
                    elif earliest < wake:
                        wake = earliest
                elif entries:
                    # Inlined RoutingAlgorithm.select: the free list in
                    # candidate order, then the same RNG draw.
                    free_ports = []
                    earliest = _NEVER
                    for entry in entries:
                        for dvid in entry[4][vnet]:
                            if not vc_pkt[dvid]:
                                free = vc_free[dvid]
                                if free <= cycle:
                                    free_ports.append(entry[0])
                                    break
                                if free < earliest:
                                    earliest = free
                    if free_ports:
                        if len(free_ports) == 1:
                            outport = free_ports[0]
                        else:
                            outport = self.rng_choice(free_ports)
                        packet.current_request = outport
                        decide_called = True
                    elif request is not None and request in ports:
                        # Sticky while fully blocked: select() would return
                        # the previous request unchanged.
                        outport = request
                        if earliest < wake:
                            wake = earliest
                    else:
                        # First decision (or an invalidated sticky request)
                        # with every permitted VC busy: inlined wait_choice —
                        # the candidate whose downstream VCs have the least
                        # "active for" time, ties to the lower port.  Empty
                        # (draining) VCs count as age 0, like active_time().
                        best_age = _NEVER
                        outport = -1
                        for entry in entries:
                            dvcs_row = entry[3][vnet]
                            age = _NEVER
                            for j, dvid in enumerate(entry[4][vnet]):
                                if vc_pkt[dvid]:
                                    a = cycle - dvcs_row[j].active_since
                                else:
                                    a = 0
                                if a < age:
                                    age = a
                                    if a == 0:
                                        break
                            if age < best_age:
                                best_age = age
                                outport = entry[0]
                        packet.current_request = outport
                        if earliest < wake:
                            wake = earliest
                else:
                    outport = routing.decide(router, vc.inport, packet,
                                             cycle)
                    decide_called = True
            if outport is None:
                continue
            if cycle > port_busy[vc.inport]:
                item = (vc_arbkey[vid], vid, vc)
                bucket = requests.get(outport)
                if bucket is None:
                    requests[outport] = [item]
                else:
                    bucket.append(item)

        if requests:
            self._grant(router, rid, requests, cycle)

        if decide_called or r_dirty[rid]:
            # Randomness/selection was exercised, or our own grants moved
            # packets (their bookkeeping re-dirties this router): re-run
            # next cycle.
            self.r_wake[rid] = next_cycle
        else:
            self.r_wake[rid] = wake

    def _compile_candidates(self, router, packet, cand_row) -> tuple:
        """Build and cache the candidate info for one (router, target)."""
        ports = tuple(self.routing.candidate_outports(router, packet))
        outinfo = self.outinfo
        rid = router.id
        entries = []
        for port in ports:
            info = outinfo.get((rid, port))
            if info is None:
                # A candidate that is not a plain network port (should not
                # happen for whitelisted algorithms): refuse to inline.
                entries = ()
                break
            entries.append(info)
        else:
            entries = tuple(entries)
        cached = (entries, ports)
        cand_row[packet.dst_router] = cached
        return cached

    def _grant(self, router, rid: int, requests: Dict[int, list],
               cycle: int) -> None:
        """Separable output-port arbitration + grants over one request set.

        Inlines ``Router._arbitrate``/``_grant_network``/``_grant_ejection``
        with identical field writes and event bookkeeping.
        """
        net = self.net
        vc_pkt = self.vc_pkt
        vc_free = self.vc_free
        vc_ready = self.vc_ready
        r_dirty = self.r_dirty
        c_dirty = self.c_dirty
        r_wake = self.r_wake
        nic_wake = self.nic_wake
        up_rid = self.up_rid
        nic_of = self.nic_of
        active = self.active
        rr = router._rr
        router_latency = self.router_latency
        hop_row_of = self._hops.get
        granted_inports = set()
        moved = False
        flit_hops = 0
        for outport in sorted(requests):
            bucket = requests[outport]
            ejection = outport >= EJECT_PORT_BASE
            if ejection:
                if cycle <= router.eject_busy[outport]:
                    continue
                link = None
                entry = None
            else:
                entry = self.outinfo[(rid, outport)]
                link = entry[1]
                if not (link.up and cycle > link.busy_until):
                    continue
            viable = []
            for item in bucket:
                vc = item[2]
                if vc.inport in granted_inports:
                    continue
                if ejection:
                    viable.append((item[0], item[1], vc, None, -1))
                else:
                    vnet = vc.packet.vnet
                    dvids = entry[4][vnet]
                    dvcs = entry[3][vnet]
                    for j, dvid in enumerate(dvids):
                        if not vc_pkt[dvid] and vc_free[dvid] <= cycle:
                            viable.append(
                                (item[0], item[1], vc, dvcs[j], dvid))
                            break
            if not viable:
                continue
            # Round-robin arbitration (Router._arbitrate): stable order by
            # (inport, index) == arbkey, first key at/after the pointer.
            if len(viable) == 1:
                key, vid, vc, dvc, dvid = viable[0]
            else:
                viable.sort()
                pointer = rr.get(outport, 0)
                chosen = viable[0]
                for item in viable:
                    if item[0] >= pointer:
                        chosen = item
                        break
                key, vid, vc, dvc, dvid = chosen
            rr[outport] = key + 1
            granted_inports.add(vc.inport)
            moved = True

            # --- release the winner (VirtualChannel.release) ---
            packet = vc.packet
            length = packet.length
            vc.packet = None
            free = cycle + length
            vc.free_at = free
            if vc.frozen:
                vc.clear_freeze()
            router.port_busy[vc.inport] = free - 1
            packet.current_request = None
            # note_vc_released(router, vc), inlined with the known vid.
            router.active_vcs -= 1
            self.occupied -= 1
            vc_pkt[vid] = 0
            vc_free[vid] = free
            active[rid].remove(vid)
            r_dirty[rid] = 1
            c_dirty[rid] = 1
            uid = up_rid[vid]
            if uid >= 0:
                if r_wake[uid] > free:
                    r_wake[uid] = free
                    if self.r_min_wake > free:
                        self.r_min_wake = free
            else:
                node = nic_of[vid]
                if node >= 0 and nic_wake[node] > free:
                    nic_wake[node] = free

            if ejection:
                # --- Router._grant_ejection ---
                router.eject_busy[outport] = free - 1
                packet.eject_cycle = free
                net.deliver(packet, rid, outport, cycle)
            else:
                # --- Router._grant_network ---
                target = packet.routing_target
                row = hop_row_of(target)
                if row is None:
                    row = self._hop_row(target)
                was_min = row[rid]
                latency = link.latency
                # dvc.reserve(packet, cycle, latency, router_latency);
                # idleness pre-verified through the mirrors.
                dvc.packet = packet
                dvc.head_arrival = cycle + latency
                ready = cycle + latency + router_latency
                dvc.ready_at = ready
                dvc.tail_arrival = cycle + latency + length - 1
                dvc.active_since = cycle
                link.busy_until = cycle + length - 1
                link.flit_cycles += length
                packet.hops += 1
                nrid = dvc.router
                if row[nrid] >= was_min:
                    packet.misroutes += 1
                # routing.on_hop: base no-op under the whitelist.
                flit_hops += length
                # note_vc_reserved(neighbor, dvc), inlined.
                self.routers[nrid].active_vcs += 1
                self.occupied += 1
                vc_pkt[dvid] = 1
                vc_ready[dvid] = ready
                insort(active[nrid], dvid)
                r_dirty[nrid] = 1
                c_dirty[nrid] = 1
        if flit_hops:
            # One aggregated increment per router per cycle; the counter's
            # final value matches the reference's per-grant increments.
            self._count_event("flit_hops", flit_hops)
        if moved:
            net.last_movement = cycle
            self.r_any_dirty = True
            self.c_any_dirty = True
