"""Unit tests for packets, virtual channels and links."""

import pytest

from repro.errors import ProtocolError
from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.vc import VirtualChannel


def make_packet(length=1, dst_router=3):
    return Packet(src_node=0, dst_node=dst_router, src_router=0,
                  dst_router=dst_router, length=length, create_cycle=10)


class TestPacket:
    def test_uids_are_unique(self):
        assert make_packet().uid != make_packet().uid

    def test_routing_target_follows_phase(self):
        packet = make_packet(dst_router=5)
        packet.intermediate_router = 2
        packet.phase = 0
        assert packet.routing_target == 2
        assert not packet.reached_phase_target(2)  # flips to phase 1
        assert packet.routing_target == 5
        assert packet.reached_phase_target(5)

    def test_reached_phase_target_at_destination(self):
        packet = make_packet(dst_router=5)
        assert packet.reached_phase_target(5)
        assert not packet.reached_phase_target(4)

    def test_latency_requires_delivery(self):
        packet = make_packet()
        with pytest.raises(ValueError):
            packet.latency()
        packet.eject_cycle = 42
        assert packet.latency() == 32

    def test_network_latency_excludes_queueing(self):
        packet = make_packet()
        packet.inject_cycle = 15
        packet.eject_cycle = 40
        assert packet.network_latency() == 25
        assert packet.latency() == 30


class TestVirtualChannel:
    def test_reserve_timing_contract(self):
        vc = VirtualChannel(router=1, inport=0, index=0, vnet=0)
        packet = make_packet(length=5)
        vc.reserve(packet, now=100, link_latency=2, router_latency=1)
        assert vc.head_arrival == 102
        assert vc.ready_at == 103
        assert vc.tail_arrival == 106
        assert vc.is_active()
        assert not vc.is_ready(102)
        assert vc.is_ready(103)
        assert not vc.fully_arrived(105)
        assert vc.fully_arrived(106)

    def test_double_reserve_raises(self):
        vc = VirtualChannel(1, 0, 0, 0)
        vc.reserve(make_packet(), now=0, link_latency=1, router_latency=1)
        with pytest.raises(ProtocolError):
            vc.reserve(make_packet(), now=5, link_latency=1, router_latency=1)

    def test_release_frees_after_drain(self):
        vc = VirtualChannel(1, 0, 0, 0)
        packet = make_packet(length=5)
        vc.reserve(packet, now=0, link_latency=1, router_latency=1)
        released = vc.release(now=10)
        assert released is packet
        assert not vc.is_idle(14)   # tail drains through cycle 14
        assert vc.is_idle(15)

    def test_release_empty_raises(self):
        vc = VirtualChannel(1, 0, 0, 0)
        with pytest.raises(ProtocolError):
            vc.release(0)

    def test_freeze_and_clear(self):
        vc = VirtualChannel(1, 0, 0, 0)
        vc.reserve(make_packet(), now=0, link_latency=1, router_latency=1)
        vc.freeze(outport=2, source=7, spin_cycle=50, path_index=3)
        assert vc.frozen
        assert vc.freeze_outport == 2
        vc.clear_freeze()
        assert not vc.frozen
        assert vc.freeze_source == -1

    def test_freeze_empty_raises(self):
        vc = VirtualChannel(1, 0, 0, 0)
        with pytest.raises(ProtocolError):
            vc.freeze(0, 0, 0, 0)

    def test_release_clears_freeze(self):
        vc = VirtualChannel(1, 0, 0, 0)
        vc.reserve(make_packet(), now=0, link_latency=1, router_latency=1)
        vc.freeze(2, 7, 50, 3)
        vc.release(10)
        assert not vc.frozen

    def test_active_time(self):
        vc = VirtualChannel(1, 0, 0, 0)
        assert vc.active_time(100) == 0
        vc.reserve(make_packet(), now=40, link_latency=1, router_latency=1)
        assert vc.active_time(100) == 60


class TestLink:
    def test_occupancy_window(self):
        link = Link(0, 1, 2, 3, latency=1)
        assert link.is_free(0)
        link.occupy(now=10, flits=5)
        assert not link.is_free(14)
        assert link.is_free(15)

    def test_utilization_split(self):
        link = Link(0, 1, 2, 3, latency=1)
        link.reset_utilization(0)
        link.occupy(0, flits=30)
        for _ in range(10):
            link.record_sm()
        flit, sm, idle = link.utilization(now=100)
        assert flit == pytest.approx(0.3)
        assert sm == pytest.approx(0.1)
        assert idle == pytest.approx(0.6)

    def test_reset_utilization(self):
        link = Link(0, 1, 2, 3, latency=1)
        link.occupy(0, flits=50)
        link.reset_utilization(100)
        flit, sm, idle = link.utilization(150)
        assert flit == 0.0
        assert idle == 1.0
