"""Unit tests for telemetry exporters, validation, and trace reports."""

import json

import pytest

from repro.config import SpinParams, SimulationConfig
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.telemetry import (
    CHROME_FORMAT,
    JSONL_FORMAT,
    TelemetryConfig,
    TelemetryObserver,
    TraceReport,
    build_records,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_jsonl,
)
from repro.telemetry.export import main as validate_main
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_square_deadlock, make_mesh_network


@pytest.fixture(scope="module")
def records():
    """One deadlock-recovery run serialized to records."""
    network = make_mesh_network(spin=SpinParams(tdd=8))
    craft_square_deadlock(network)
    simulator = Simulator()
    simulator.register(network)
    observer = TelemetryObserver(
        network,
        TelemetryConfig(sample_interval=16, packet_traces=True),
    ).attach(simulator)
    simulator.run(300)
    observer.finalize(simulator.cycle)
    return build_records(observer, {"design": "test", "topology": "mesh",
                                    "mesh_side": 4, "cycles": 300,
                                    "seed": 1})


class TestJsonl:
    def test_record_order(self, records):
        assert records[0]["type"] == "header"
        assert records[0]["format"] == JSONL_FORMAT
        assert records[-1]["type"] == "summary"
        kinds = {record["type"] for record in records}
        assert {"header", "sample", "span", "summary"} <= kinds

    def test_summary_counts(self, records):
        summary = records[-1]
        assert summary["samples"] == sum(
            1 for r in records if r["type"] == "sample")
        assert summary["spans"] == sum(
            1 for r in records if r["type"] == "span")
        assert "telemetry_spans" not in summary["counters"]  # registry only
        assert "detection_latency" in summary["histograms"]

    def test_write_read_roundtrip(self, records, tmp_path):
        path = tmp_path / "run.jsonl"
        count = write_jsonl(str(path), records)
        assert count == len(records)
        loaded = read_jsonl(str(path))
        assert loaded == json.loads(
            json.dumps(records))  # JSON-safe and identical

    def test_read_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"sample","cycle":0}\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))

    def test_read_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"header","format":"other/v9"}\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))

    def test_read_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"header","format":"%s"}\nnot json\n'
                        % JSONL_FORMAT)
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))


class TestChromeTrace:
    def test_valid_and_self_describing(self, records):
        trace = chrome_trace(records)
        assert validate_chrome_trace(trace) == []
        assert trace["metadata"]["format"] == CHROME_FORMAT
        assert trace["metadata"]["design"] == "test"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X", "C", "i"} <= phases

    def test_span_slices_carry_cycle_bounds(self, records):
        trace = chrome_trace(records)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        spans = [r for r in records if r["type"] == "span"]
        assert len(slices) == len(spans)
        for event in slices:
            assert event["dur"] >= 0
            assert event["tid"] == event["args"]["router"] + 1

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": {}}) != []
        base = {"metadata": {"format": CHROME_FORMAT}}
        bad_events = [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": 0, "dur": 1},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "C", "name": "x", "pid": "0", "tid": 0, "ts": 0},
            {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": 0, "s": "q"},
            {"ph": "C", "name": "x", "pid": 0, "tid": 0, "ts": 0,
             "args": 3},
            "not an event",
        ]
        for event in bad_events:
            trace = dict(base, traceEvents=[event])
            assert validate_chrome_trace(trace) != [], event

    def test_validator_main(self, records, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(chrome_trace(records)))
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": 3}')
        assert validate_main([str(good)]) == 0
        assert validate_main([str(bad)]) == 1
        assert validate_main([str(tmp_path / "absent.json")]) == 1
        assert validate_main([]) == 2


class TestTraceReport:
    def test_report_views(self, records):
        report = TraceReport(records)
        assert len(report.episodes) >= 1
        recovered = [s for s in report.episodes
                     if s.outcome == "recovered"]
        assert len(recovered) == 1
        assert report.total_spins() == 1
        assert report.outcome_counts()["recovered"] == 1
        assert report.detection_latencies().count == len(report.episodes)
        assert report.detection_latencies().mean > 0

    def test_wedge_timeline_covers_deadlock(self, records):
        report = TraceReport(records)
        wedges = report.wedge_timeline()
        assert wedges, "a planted deadlock must show zero progress"
        start, end = wedges[0]
        assert 0 < start < end

    def test_heatmap_is_mesh_shaped(self, records):
        report = TraceReport(records)
        rows = report.heatmap().splitlines()
        assert len(rows) == 4
        assert all(len(row) == 4 for row in rows)

    def test_render_mentions_spans_and_links(self, records):
        text = TraceReport(records).render()
        assert "SPIN episodes" in text
        assert "recovered" in text
        assert "detection latency" in text
        assert "occupancy heatmap" in text

    def test_load_roundtrip(self, records, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(str(path), records)
        report = TraceReport.load(str(path))
        assert len(report.spans) == sum(
            1 for r in records if r["type"] == "span")
        assert report.hop_count == sum(
            1 for r in records if r["type"] in ("hop", "deliver"))
