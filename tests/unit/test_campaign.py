"""Unit tests for the crash-safe campaign engine.

Everything here runs in-process (serial engine, jobs=1) or with tiny
worker pools; the full kill -9 / resume byte-identity proof lives in the
chaos suite (tests/integration/test_campaign_resume.py, ``-m chaos``).
"""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.harness.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    CampaignEngine,
    CampaignJournal,
    JOURNAL_NAME,
    MANIFEST_NAME,
    assemble_curve,
    failed_record,
    load_manifest,
    ok_record,
    write_manifest,
)
from repro.harness.chaos import CHAOS_ENV, tear_journal_tail
from repro.harness.parallel import ParallelRunner, SpecResult
from repro.harness.runner import ExperimentSpec
from repro.harness.supervision import RetryPolicy
from repro.stats.results import results_to_json

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200,
                        drain_cycles=150, deadlock_abort_cycles=300)


def tiny_spec(**overrides):
    kwargs = dict(design="spin_mesh", pattern="uniform", injection_rate=0.05,
                  mesh_side=4, tdd=32, sim=TINY)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


def tiny_curve(rates=(0.02, 0.05, 0.08)):
    return tiny_spec().curve(list(rates))


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)


class TestContentKey:
    def test_stable_and_hexadecimal(self):
        key = tiny_spec().content_key()
        assert key == tiny_spec().content_key()
        assert len(key) == 16
        int(key, 16)

    def test_distinguishes_specs(self):
        assert (tiny_spec(injection_rate=0.02).content_key()
                != tiny_spec(injection_rate=0.05).content_key())
        assert (tiny_spec(seed=1).content_key()
                != tiny_spec(seed=2).content_key())

    def test_roundtrip_preserves_key(self):
        spec = tiny_spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.content_key() == spec.content_key()


class TestJournal:
    def _result(self, spec):
        return ParallelRunner(backend="serial").run([spec])[0]

    def test_append_load_roundtrip(self, tmp_path):
        spec = tiny_spec()
        result = self._result(spec)
        journal = CampaignJournal(tmp_path).open()
        journal.append(ok_record(spec.content_key(), 0, result))
        journal.append(failed_record(
            "deadbeef00000000", 2,
            SpecResult(spec, None, error="worker crashed: exit code 9")))
        journal.close()
        records, torn = CampaignJournal(tmp_path).load()
        assert torn == 0
        assert len(records) == 2
        assert records[0]["status"] == "ok"
        assert records[0]["key"] == spec.content_key()
        assert records[1]["status"] == "failed"
        assert records[1]["class"] == "transient"

    def test_append_requires_open(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not open"):
            CampaignJournal(tmp_path).append({"key": "k"})

    def test_missing_journal_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path).load() == ([], 0)

    def test_torn_tail_forgiven(self, tmp_path):
        spec = tiny_spec()
        result = self._result(spec)
        journal = CampaignJournal(tmp_path).open()
        for attempt in range(3):
            journal.append(ok_record(f"{attempt:016x}", attempt, result))
        journal.close()
        tear_journal_tail(tmp_path / JOURNAL_NAME)
        records, torn = CampaignJournal(tmp_path).load()
        assert torn == 1
        assert [r["key"] for r in records] == [f"{a:016x}" for a in (0, 1)]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        good = json.dumps({"key": "a", "status": "ok"})
        path.write_text(good + "\n{torn-gar" + "\n" + good + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            CampaignJournal(tmp_path).load()


class TestManifest:
    def test_roundtrip(self, tmp_path):
        specs = tiny_curve()
        meta = {"design": "spin_mesh", "rates": [0.02, 0.05, 0.08]}
        write_manifest(tmp_path, specs, meta, {"output": "out.json"})
        loaded, got_meta, settings = load_manifest(tmp_path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in specs]
        assert got_meta == meta
        assert settings == {"output": "out.json"}
        payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert payload["schema"] == CAMPAIGN_SCHEMA

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        write_manifest(tmp_path, tiny_curve(), {})
        assert not list(tmp_path.glob("*.tmp"))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="manifest"):
            load_manifest(tmp_path)

    def test_bad_schema_rejected(self, tmp_path):
        write_manifest(tmp_path, tiny_curve(), {})
        path = tmp_path / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.campaign/v999"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema"):
            load_manifest(tmp_path)

    def test_key_tamper_detected(self, tmp_path):
        write_manifest(tmp_path, tiny_curve(), {})
        path = tmp_path / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["specs"][1]["spec"]["injection_rate"] = 0.99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="key mismatch"):
            load_manifest(tmp_path)

    def test_invalid_json_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ConfigurationError, match="JSON"):
            load_manifest(tmp_path)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            CampaignConfig(jobs=0)
        with pytest.raises(ConfigurationError, match="max_failures"):
            CampaignConfig(max_failures=-1)
        with pytest.raises(ConfigurationError, match="hang_timeout"):
            CampaignConfig(hang_timeout=0)
        with pytest.raises(ConfigurationError, match="latency_cap"):
            CampaignConfig(latency_cap=1.0)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            CampaignEngine([])


class TestAssembleCurve:
    def _results(self, specs):
        return ParallelRunner(backend="serial").run(specs)

    def test_clean_full_prefix(self):
        results = self._results(tiny_curve())
        points, saturation, clean = assemble_curve(results)
        assert clean
        assert [p.injection_rate for p in points] == [0.02, 0.05, 0.08]
        assert saturation == 0.08

    def test_missing_point_marks_dirty(self):
        results = self._results(tiny_curve())
        results[1] = None
        points, _, clean = assemble_curve(results)
        assert not clean
        assert [p.injection_rate for p in points] == [0.02]

    def test_failed_point_marks_dirty(self):
        results = self._results(tiny_curve())
        results[0] = SpecResult(results[0].spec, None, error="boom")
        points, _, clean = assemble_curve(results)
        assert not clean and points == []

    def test_saturated_curve_cut_ignores_tail(self):
        # A wedged absurd-rate point saturates the cursor; later slots may
        # even be empty without dirtying the artifact (they are past the cut).
        specs = tiny_spec().curve([0.02, 0.9, 0.95])
        results = self._results(specs[:2]) + [None]
        points, _, clean = assemble_curve(results)
        assert clean
        assert len(points) == 2


class TestEngineSerial:
    def test_ephemeral_run_matches_parallel_runner(self):
        specs = tiny_curve()
        report = CampaignEngine(specs).run()
        assert report.completed and report.clean
        baseline = ParallelRunner(backend="serial").run(specs)
        assert [p for p in report.points] == [r.point for r in baseline]
        assert report.saturation_rate == 0.08
        assert report.failed == []

    def test_campaign_directory_journal_written(self, tmp_path):
        specs = tiny_curve()
        report = CampaignEngine(specs, directory=tmp_path).run()
        assert report.completed
        records, torn = CampaignJournal(tmp_path).load()
        assert torn == 0
        assert [r["key"] for r in records] == [s.content_key() for s in specs]
        assert all(r["status"] == "ok" for r in records)

    def test_resume_skips_completed_points(self, tmp_path):
        specs = tiny_curve()
        CampaignEngine(specs, directory=tmp_path).run()
        resumed = CampaignEngine(specs, directory=tmp_path).run()
        assert resumed.completed and resumed.clean
        assert resumed.counters.get("points_resumed") == len(specs)

    def test_resume_from_journal_prefix_is_byte_identical(self, tmp_path):
        specs = tiny_curve()
        golden = CampaignEngine(specs, directory=tmp_path / "gold").run()
        golden_text = results_to_json(golden.points, {"m": 1})
        # Simulate a crash after the first fsync'd record: keep only the
        # journal's first line, then resume into the same artifact.
        gold_journal = (tmp_path / "gold" / JOURNAL_NAME).read_text()
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / JOURNAL_NAME).write_text(
            gold_journal.split("\n")[0] + "\n")
        resumed = CampaignEngine(specs, directory=partial).run()
        assert resumed.counters.get("points_resumed") == 1
        assert results_to_json(resumed.points, {"m": 1}) == golden_text

    def test_resume_after_torn_tail(self, tmp_path):
        specs = tiny_curve()
        golden = CampaignEngine(specs, directory=tmp_path).run()
        tear_journal_tail(tmp_path / JOURNAL_NAME)
        resumed = CampaignEngine(specs, directory=tmp_path).run()
        assert resumed.counters.get("journal_torn_records") == 1
        assert resumed.counters.get("points_resumed") == len(specs) - 1
        assert resumed.points == golden.points

    def test_deterministic_failure_journaled_not_retried(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(pattern="nonexistent")]
        report = CampaignEngine(specs, directory=tmp_path).run()
        assert report.completed and not report.clean
        assert len(report.failed) == 1
        assert report.counters.get("retries", 0) == 0
        records, _ = CampaignJournal(tmp_path).load()
        failed = [r for r in records if r["status"] == "failed"]
        assert len(failed) == 1 and failed[0]["class"] == "deterministic"

    def test_failed_records_rerun_on_resume(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(pattern="nonexistent")]
        CampaignEngine(specs, directory=tmp_path).run()
        resumed = CampaignEngine(specs, directory=tmp_path).run()
        # Only the ok point is replayed; the failure is attempted again.
        assert resumed.counters.get("points_resumed") == 1
        assert len(resumed.failed) == 1

    def test_failure_budget_aborts(self):
        specs = [tiny_spec(pattern="nonexistent"),
                 tiny_spec(pattern="nonexistent", injection_rate=0.06),
                 tiny_spec(injection_rate=0.07)]
        config = CampaignConfig(max_failures=0)
        report = CampaignEngine(specs, config=config).run()
        assert report.status == "failure-budget"
        assert not report.completed

    def test_transient_failures_retried_with_backoff(self, monkeypatch):
        from repro.harness import campaign as campaign_module

        spec = tiny_spec()
        calls = []

        def flaky(run_spec, attempt):
            calls.append(attempt)
            if attempt < 2:
                return SpecResult(run_spec, None,
                                  error="worker crashed: synthetic")
            from repro.harness.supervision import run_attempt as real
            return real(run_spec, attempt)

        monkeypatch.setattr(campaign_module, "run_attempt", flaky)
        monkeypatch.setattr(campaign_module.time, "sleep", lambda _s: None)
        config = CampaignConfig(retry=RetryPolicy(retries=2, base=0.01))
        report = CampaignEngine([spec], config=config).run()
        assert report.completed and report.clean
        assert calls == [0, 1, 2]
        assert report.counters.get("retries") == 2

    def test_retries_exhausted_becomes_permanent(self, monkeypatch):
        from repro.harness import campaign as campaign_module

        monkeypatch.setattr(
            campaign_module, "run_attempt",
            lambda spec, attempt: SpecResult(
                spec, None, error="worker crashed: synthetic"))
        monkeypatch.setattr(campaign_module.time, "sleep", lambda _s: None)
        config = CampaignConfig(retry=RetryPolicy(retries=1, base=0.01))
        report = CampaignEngine([tiny_spec()], config=config).run()
        assert report.completed and not report.clean
        assert len(report.failed) == 1
        assert report.counters.get("retries") == 1
        assert report.counters.get("failures_permanent") == 1


class TestEnginePool:
    def test_pool_matches_serial_bytes(self):
        specs = tiny_curve()
        serial = CampaignEngine(specs, config=CampaignConfig(jobs=1)).run()
        pooled = CampaignEngine(specs, config=CampaignConfig(jobs=2)).run()
        assert pooled.completed and pooled.clean
        assert (results_to_json(pooled.points, {})
                == results_to_json(serial.points, {}))

    def test_chaos_crashes_recovered_by_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:p=1.0,seed=5")
        specs = tiny_curve()
        config = CampaignConfig(jobs=2, retry=RetryPolicy(retries=2,
                                                          base=0.01))
        report = CampaignEngine(specs, directory=tmp_path,
                                config=config).run()
        assert report.completed and report.clean
        assert report.counters.get("retries", 0) >= len(specs)
        assert report.counters.get("workers_respawned", 0) >= len(specs)
        monkeypatch.delenv(CHAOS_ENV)
        golden = CampaignEngine(specs).run()
        assert report.points == golden.points

    def test_pool_failure_budget_aborts(self):
        specs = [tiny_spec(pattern="nonexistent", injection_rate=r)
                 for r in (0.02, 0.05)] + [tiny_spec(injection_rate=0.08)]
        config = CampaignConfig(jobs=2, max_failures=0)
        report = CampaignEngine(specs, config=config).run()
        assert report.status == "failure-budget"


class TestAtomicSave:
    def test_save_results_leaves_no_temp_file(self, tmp_path):
        from repro.stats.results import load_results, save_results

        results = ParallelRunner(backend="serial").run(tiny_curve())
        target = tmp_path / "out.json"
        save_results(target, [r.point for r in results], {"design": "x"})
        assert not list(tmp_path.glob("*.tmp"))
        points, meta = load_results(target)
        assert len(points) == 3 and meta["design"] == "x"

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        from repro.stats.results import atomic_write_text

        target = tmp_path / "out.json"
        target.write_text("much longer previous content than the new one")
        atomic_write_text(target, "short")
        assert target.read_text() == "short"
        assert not list(tmp_path.glob("*.tmp"))


class TestTelemetryBridge:
    def test_counters_mirrored_into_registry(self):
        from repro.telemetry.campaign import campaign_counter_totals
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        specs = tiny_curve()
        CampaignEngine(specs, registry=registry).run()
        totals = campaign_counter_totals(registry)
        assert all(name.startswith("campaign_") for name in totals)

    def test_record_skips_zero_counters(self):
        from repro.telemetry.campaign import (
            campaign_counter_totals,
            record_campaign_counters,
        )
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        record_campaign_counters(registry, {"retries": 0, "points_resumed": 3})
        totals = campaign_counter_totals(registry)
        assert totals == {"campaign_points_resumed": 3}
