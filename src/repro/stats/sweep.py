"""Injection-rate sweeps: latency curves and saturation throughput.

The paper's Figs. 6 and 7 are latency-vs-injection curves; the numbers it
quotes are *saturation throughputs* — the offered load beyond which latency
diverges.  :class:`InjectionSweep` runs one simulation per rate (fresh
network each time), stops once saturation is passed, and reports the curve
plus the measured saturation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.sim.engine import Simulator


@dataclass
class SweepPoint:
    """Measurements of one simulation at one offered load."""

    injection_rate: float
    mean_latency: float
    p99_latency: float
    throughput: float
    delivery_ratio: float
    wedged: bool
    delivered: int
    events: Dict[str, int] = field(default_factory=dict)
    link_utilization: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    #: Packets destroyed in flight (fault injection / stranded reclamation).
    packets_lost: int = 0

    def saturated(self, zero_load_latency: float,
                  latency_cap: float = 4.0,
                  min_delivery: float = 0.85) -> bool:
        """Heuristic saturation test against the zero-load latency."""
        if self.wedged:
            return True
        if self.delivered == 0:
            return True
        if self.delivery_ratio < min_delivery:
            return True
        return self.mean_latency > latency_cap * max(1.0, zero_load_latency)


def run_point(network_factory: Callable[[], object],
              traffic_factory: Callable[[object, Optional[int]], object],
              sim_config: SimulationConfig,
              injection_rate: float = 0.0,
              fault_factory: Optional[Callable[[], object]] = None,
              raise_on_wedge: bool = False) -> Tuple[object, SweepPoint]:
    """Simulate one configuration at one load.

    Args:
        network_factory: Builds a fresh network.
        traffic_factory: ``(network, stop_at) -> component`` building the
            traffic source (already bound to the rate).
        sim_config: Warmup/measure/drain windows, wedge threshold.
        injection_rate: Recorded in the resulting point (informational).
        fault_factory: Optional ``() -> FaultInjector`` building the fault
            injection component (docs/FAULTS.md); it is bound to the network
            and scheduled *between* the traffic source and the network so
            faults land before the same cycle's control planes react.
        raise_on_wedge: Raise :class:`~repro.errors.SimulationError` with a
            wedge snapshot instead of returning a ``wedged=True`` point.
            Use in tests/experiments where an unrecovered deadlock is a
            failure, not a data point.

    Returns:
        The simulated network (for post-hoc inspection) and its point.
    """
    network = network_factory()
    simulator = Simulator()
    stop_at = sim_config.warmup_cycles + sim_config.measure_cycles
    traffic = traffic_factory(network, stop_at)
    simulator.register(traffic)
    if fault_factory is not None:
        injector = fault_factory()
        injector.bind(network)
        simulator.register(injector)
    simulator.register(network)
    network.stats.open_window(sim_config.warmup_cycles, stop_at)

    simulator.run(sim_config.warmup_cycles)
    network.reset_link_utilization()

    wedged = False
    remaining = sim_config.measure_cycles + sim_config.drain_cycles
    abort_after = sim_config.deadlock_abort_cycles
    chunk = 200
    while remaining > 0:
        step = min(chunk, remaining)
        simulator.run(step)
        remaining -= step
        if (
            abort_after
            and network.idle_cycles() > abort_after
            and network.packets_in_flight() > 0
        ):
            wedged = True
            if raise_on_wedge:
                raise SimulationError(
                    "network wedged: no flit moved within the abort window",
                    **_wedge_snapshot(network, simulator.cycle, abort_after))
            break

    stats = network.stats
    latency = stats.latency()
    point = SweepPoint(
        injection_rate=injection_rate,
        mean_latency=latency.mean,
        p99_latency=latency.p99,
        throughput=stats.throughput(sim_config.measure_cycles,
                                    network.topology.num_nodes),
        delivery_ratio=stats.delivery_ratio(),
        wedged=wedged,
        delivered=stats.measured_delivered,
        events=dict(stats.events),
        link_utilization=network.mean_link_utilization(),
        packets_lost=stats.packets_lost,
    )
    return network, point


def _wedge_snapshot(network, cycle: int, abort_after: int) -> Dict[str, object]:
    """Diagnostic context for an unrecovered-deadlock abort.

    Names the stuck routers and (when SPIN is attached) their FSM states so
    the failure message alone localizes the wedge.
    """
    stuck_routers = sorted(
        router.id for router in network.routers if router.active_vcs)
    context: Dict[str, object] = {
        "cycle": cycle,
        "idle_cycles": abort_after,
        "packets_in_flight": network.packets_in_flight(),
        "stuck_routers": stuck_routers[:8],
        "dead_links": network.dead_link_count,
    }
    if network.spin is not None:
        context["fsm_states"] = {
            router_id: network.spin.controller_of(router_id).state.name
            for router_id in stuck_routers[:8]
        }
        context["frozen_vcs"] = network.spin.frozen_vc_count()
    return context


class InjectionSweep:
    """Sweeps offered load upward until the network saturates.

    Args:
        network_factory: Builds a fresh network per point.
        traffic_factory: ``(network, rate, stop_at) -> component``.
        sim_config: Per-point run windows.
        rates: Ascending offered loads in flits/node/cycle.
        latency_cap: Saturation multiplier on the zero-load latency.
        points_past_saturation: Extra points to run beyond saturation (to
            show the divergence in latency curves).
        fault_factory: Optional ``() -> FaultInjector`` applied to every
            point of the sweep (each point gets a fresh injector so the
            fault schedule replays identically at every load).
    """

    def __init__(self, network_factory, traffic_factory,
                 sim_config: SimulationConfig, rates: List[float],
                 latency_cap: float = 4.0,
                 points_past_saturation: int = 0,
                 fault_factory=None) -> None:
        self.network_factory = network_factory
        self.traffic_factory = traffic_factory
        self.sim_config = sim_config
        self.rates = list(rates)
        self.latency_cap = latency_cap
        self.points_past_saturation = points_past_saturation
        self.fault_factory = fault_factory

    def run(self) -> List[SweepPoint]:
        """Simulate ascending loads; stop shortly after saturation."""
        points: List[SweepPoint] = []
        zero_load = None
        extra = self.points_past_saturation
        for rate in self.rates:
            _, point = run_point(
                self.network_factory,
                lambda network, stop_at, r=rate: self.traffic_factory(
                    network, r, stop_at),
                self.sim_config,
                injection_rate=rate,
                fault_factory=self.fault_factory,
            )
            points.append(point)
            if zero_load is None:
                zero_load = point.mean_latency
            if point.saturated(zero_load, self.latency_cap):
                if extra <= 0:
                    break
                extra -= 1
        return points

    def saturation_rate(self, points: List[SweepPoint]) -> float:
        """Highest offered load sustained without saturating."""
        if not points:
            return 0.0
        zero_load = points[0].mean_latency
        sustained = 0.0
        for point in points:
            if point.saturated(zero_load, self.latency_cap):
                break
            sustained = point.injection_rate
        return sustained

    def saturation_throughput(self, points: List[SweepPoint]) -> float:
        """Received throughput at the last non-saturated point."""
        if not points:
            return 0.0
        zero_load = points[0].mean_latency
        best = 0.0
        for point in points:
            if point.saturated(zero_load, self.latency_cap):
                break
            best = max(best, point.throughput)
        return best
