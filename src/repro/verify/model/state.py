"""Abstract global states of the SPIN control plane.

The model checker abstracts a deadlocked dependency loop of ``n`` routers
(the paper's Fig. 2 cycle) and tracks, per loop position, only the state
the control plane itself manipulates:

* the SPIN counter-FSM state (:class:`repro.core.fsm.SpinState`);
* whether the router's loop VC is frozen, and by which initiator;
* the move-manager latch (``is_deadlock`` + ``latched_source``), collapsed
  into one field: the latched initiator's loop index, or -1;
* a detection budget — how many more probes this router may originate.
  Successive probes of one router are at least ``tDD`` apart in real time,
  so a finite budget is the step-bounded window the theory's
  recovery-latency bound already assumes (its ``8 x (tDD + rtt)`` factor).

Datapath state (packets, flits, credits) is abstracted away: the loop is
deadlocked until a spin rotates it (``resolved``), and every loop VC holds
exactly one fully-arrived packet whose unique request is the next loop
edge.  Time is abstracted to interleavings: timers fire nondeterministically
and a watchdog may only fire once the message it waits for is provably gone
(timeouts exceed the round-trip bound, so a timeout implies a loss).

In-flight special messages are a sorted tuple (a multiset — two identical
retransmissions must not collapse into one).  ``hops`` counts recorded path
ports for a probe and the hop index for the move family, mirroring
:class:`repro.core.messages.PathFollowingMessage`.

Canonicalization exploits the loop's rotational symmetry: the initial
state is invariant under rotation, so every reachable state is explored
once per rotation orbit (:func:`canonical`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

from repro.core.fsm import SpinState

#: Stable order of FSM states for encoding/decoding.
STATE_ORDER: Tuple[SpinState, ...] = (
    SpinState.OFF, SpinState.DD, SpinState.MOVE, SpinState.FROZEN,
    SpinState.FORWARD_PROGRESS, SpinState.PROBE_MOVE, SpinState.KILL_MOVE,
)

#: No initiator (for ``frozen_by`` / ``latched``).
NOBODY = -1


@dataclass(frozen=True, order=True)
class Message:
    """One in-flight special message on the loop.

    Attributes:
        kind: ``"probe"``, ``"move"``, ``"probe_move"`` or ``"kill_move"``.
        origin: Loop index of the initiator that emitted it.
        at: Loop index of the router that will process it next.
        hops: Ports recorded so far (probe) / hop index (move family).
    """

    kind: str
    origin: int
    at: int
    hops: int

    def rotated(self, shift: int, n: int) -> "Message":
        return replace(self, origin=(self.origin - shift) % n,
                       at=(self.at - shift) % n)


@dataclass(frozen=True, order=True)
class RouterModel:
    """Control-plane state of one loop router.

    Attributes:
        fsm: SPIN counter-FSM state.
        frozen_by: Loop index of the initiator whose token froze this
            router's loop VC, or :data:`NOBODY`.
        latched: ``latched_source`` as a loop index (:data:`NOBODY` when
            ``is_deadlock`` is clear — the controller couples the two).
        probes_left: Remaining detection budget.
    """

    fsm: SpinState = SpinState.DD
    frozen_by: int = NOBODY
    latched: int = NOBODY
    probes_left: int = 1

    def rotated(self, shift: int, n: int) -> "RouterModel":
        def remap(owner: int) -> int:
            return owner if owner == NOBODY else (owner - shift) % n
        return replace(self, frozen_by=remap(self.frozen_by),
                       latched=remap(self.latched))


@dataclass(frozen=True)
class GlobalState:
    """One canonicalizable global state of the abstract control plane.

    Attributes:
        routers: Per-loop-position router states.
        messages: In-flight SMs, kept sorted (multiset semantics).
        drops_left: Remaining adversarial SM-loss budget.
        resolved: A spin has rotated the loop; the deadlock is gone.
    """

    routers: Tuple[RouterModel, ...]
    messages: Tuple[Message, ...] = ()
    drops_left: int = 0
    resolved: bool = False

    @property
    def size(self) -> int:
        return len(self.routers)

    def with_router(self, index: int, router: RouterModel) -> "GlobalState":
        routers = list(self.routers)
        routers[index] = router
        return replace(self, routers=tuple(routers))

    def with_messages(self, messages: Iterable[Message]) -> "GlobalState":
        return replace(self, messages=tuple(sorted(messages)))

    def rotated(self, shift: int) -> "GlobalState":
        """This state with loop position ``shift`` moved to position 0."""
        n = self.size
        routers = tuple(self.routers[(i + shift) % n].rotated(shift, n)
                        for i in range(n))
        messages = tuple(sorted(m.rotated(shift, n) for m in self.messages))
        return replace(self, routers=routers, messages=messages)

    def __hash__(self) -> int:  # dataclass-generated eq, explicit hash
        return hash((self.routers, self.messages, self.drops_left,
                     self.resolved))


def initial_state(size: int, probe_budget: int = 1, drop_budget: int = 0,
                  initiators: int = None) -> GlobalState:
    """The post-formation state: every loop router detecting (DD).

    The concrete controller leaves OFF the first cycle a VC is occupied,
    so the deadlocked loop starts with all counters armed.  ``initiators``
    restricts the detection budget to the first ``k`` loop routers —
    ``initiators=1`` is the single-recovery mode the liveness bounds are
    proved in (the paper's rotating priority guarantees one surviving
    initiator per round; the model pins that winner instead of modeling
    the rotation).  ``None`` arms everyone: the multi-initiator race mode
    the safety properties are checked under.
    """
    armed = size if initiators is None else max(0, min(initiators, size))
    routers = tuple(
        RouterModel(fsm=SpinState.DD,
                    probes_left=probe_budget if i < armed else 0)
        for i in range(size))
    return GlobalState(routers=routers, drops_left=drop_budget)


def canonical(state: GlobalState) -> GlobalState:
    """The lexicographically-least rotation of ``state``.

    The abstract loop is rotation-symmetric (every action commutes with
    rotating all loop indices), so exploring only canonical representatives
    cuts the state space by up to a factor of ``n`` without losing
    reachability or violating any property — all checked properties are
    rotation-invariant.
    """
    best = state
    best_key = _sort_key(state)
    for shift in range(1, state.size):
        candidate = state.rotated(shift)
        key = _sort_key(candidate)
        if key < best_key:
            best, best_key = candidate, key
    return best


def _sort_key(state: GlobalState):
    return (
        tuple((STATE_ORDER.index(r.fsm), r.frozen_by, r.latched,
               r.probes_left) for r in state.routers),
        tuple((m.kind, m.origin, m.at, m.hops) for m in state.messages),
    )


def project(state: GlobalState) -> Tuple[Tuple[str, bool, str], ...]:
    """Orientation-agnostic per-router projection for soundness checks.

    Collapses each router to ``(fsm name, frozen?, latch kind)`` where the
    latch kind is ``"-"`` (none), ``"self"`` or ``"other"`` — the shape a
    concrete simulator state can be projected onto without knowing which
    loop rotation (or orientation) the abstract model used.
    """
    out = []
    for i, r in enumerate(state.routers):
        if r.latched == NOBODY:
            latch = "-"
        elif r.latched == i:
            latch = "self"
        else:
            latch = "other"
        out.append((r.fsm.name, r.frozen_by != NOBODY, latch))
    return tuple(out)
