"""SPIN special messages (SMs).

SMs travel on the regular network links, bufferlessly, with strict priority
over flits and among themselves (paper Sec. IV-C1):

    probe_move  >  move = kill_move  >  probe  >  flit

A *probe* accumulates the outport taken at every router it traverses; the
loop-shaped path it returns with is the deadlocked dependency chain.  The
*move*, *probe_move* and *kill_move* messages replay that path, stripping
the leading port id at each hop, so every router sees its own outport first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Class priorities (higher wins output-link contention).
PROBE_PRIORITY = 1
MOVE_PRIORITY = 2
KILL_MOVE_PRIORITY = 2
PROBE_MOVE_PRIORITY = 3


def _clone(sm: "SpecialMessage", **changes) -> "SpecialMessage":
    """Copy a frozen SM with field overrides.

    SM copies sit on the probe/move hot path (one per loop hop per probed
    dependency), so this skips ``dataclasses.replace``'s per-call field
    introspection: every field of these frozen dataclasses is ``init=True``
    and lives in ``__dict__``, making a dict merge an exact substitute.
    """
    clone = object.__new__(type(sm))
    # In-place dict update: frozen dataclasses also veto ``__dict__``
    # rebinding through their generated ``__setattr__``.
    clone.__dict__.update(sm.__dict__)
    clone.__dict__.update(changes)
    return clone


@dataclass(frozen=True)
class SpecialMessage:
    """Common SM fields.

    Attributes:
        sender: Router id of the recovery initiator.
        send_cycle: Cycle the initiator emitted the SM.
        path: Outport ids of the routers the SM has yet to visit (for a
            probe: the ports visited so far instead).
        vnet: Virtual network (message class) the recovery concerns.
            Routing deadlocks form within one message class (packets can
            only wait on VCs of their own vnet), so all SM processing —
            probe forking, dependency checks, freezing — is scoped to it;
            idle buffers of *other* vnets at a port say nothing about the
            probed chain.
    """

    sender: int
    send_cycle: int
    path: Tuple[int, ...] = ()
    vnet: int = 0

    kind = "sm"
    class_priority = 0

    def with_path(self, path: Tuple[int, ...]) -> "SpecialMessage":
        """Copy of this SM with a different path."""
        return _clone(self, path=path)


@dataclass(frozen=True)
class ProbeMessage(SpecialMessage):
    """Traces (and confirms) a deadlocked dependency chain.

    Attributes:
        origin_inport: Input port of the VC the initiator probed.
        origin_outport: Output port the probe was first sent through.  The
            recorded path aligns hop-by-hop with a walk starting through
            this port, so the move must use it; carrying it in the probe
            keeps acceptance correct even when the initiator has since
            re-probed a different dependency (tDD shorter than the loop).
    """

    kind = "probe"
    class_priority = PROBE_PRIORITY

    origin_inport: int = -1
    origin_outport: int = -1

    def forked(self, outport: int) -> "ProbeMessage":
        """Copy forked out of ``outport``, with the port appended."""
        return _clone(self, path=self.path + (outport,))


@dataclass(frozen=True)
class PathFollowingMessage(SpecialMessage):
    """Base for SMs that replay a latched loop path (move family).

    Attributes:
        spin_cycle: Absolute cycle of the synchronized spin this SM arranges
            (unused by kill_move).
        hop_index: Position along the loop, 0 at the initiator.
    """

    spin_cycle: int = -1
    hop_index: int = 1

    def advanced(self) -> "PathFollowingMessage":
        """Copy with the leading port stripped and the hop index bumped."""
        return _clone(self, path=self.path[1:], hop_index=self.hop_index + 1)

    @property
    def first_port(self) -> int:
        """The receiving router's outport on the loop."""
        return self.path[0]


@dataclass(frozen=True)
class MoveMessage(PathFollowingMessage):
    """Conveys the spin cycle; freezes one VC per loop router."""

    kind = "move"
    class_priority = MOVE_PRIORITY


@dataclass(frozen=True)
class ProbeMoveMessage(PathFollowingMessage):
    """Joint probe+move for repeat spins (the Sec. IV-B4 optimization)."""

    kind = "probe_move"
    class_priority = PROBE_MOVE_PRIORITY


@dataclass(frozen=True)
class KillMoveMessage(PathFollowingMessage):
    """Cancels a pending spin; unfreezes VCs along the loop."""

    kind = "kill_move"
    class_priority = KILL_MOVE_PRIORITY
