"""The spin: synchronized one-hop rotation of a frozen dependency ring.

At the agreed spin cycle every frozen VC of a recovery pushes its packet out
of the requested output port *simultaneously*; each packet lands in the VC
that its downstream neighbour vacates in the same cycle, so no free buffer
is needed anywhere — the central insight of the paper.

The executor performs the rotation atomically once per (initiator,
spin-cycle) group, after validating that the frozen entries still form the
closed chain the move SM arranged (DESIGN.md §3 "spin safety guard").  An
invalid group — a hole left by a dropped kill_move, a busy output link, a
duplicated link — is aborted: every entry unfreezes and its router returns
to detection.  This guarantees the datapath no-loss/no-overwrite invariant
under arbitrary SM races; the paper's own kill_move protocol makes aborts
rare, and the property tests exercise both paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.errors import SimulationError
from repro.network.vc import VirtualChannel


class SpinExecutor:
    """Registry and performer of pending synchronized spins."""

    def __init__(self, framework) -> None:
        self.framework = framework
        #: spin_cycle -> initiator -> frozen VCs registered for that spin.
        self._pending: Dict[int, Dict[int, List[VirtualChannel]]] = (
            defaultdict(lambda: defaultdict(list)))

    def register(self, vc: VirtualChannel) -> None:
        """Enroll a freshly frozen VC for its spin cycle."""
        self._pending[vc.freeze_spin_cycle][vc.freeze_source].append(vc)

    def pending_spins(self) -> int:
        """Number of (cycle, initiator) groups awaiting execution."""
        return sum(len(groups) for groups in self._pending.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, now: int) -> int:
        """Run every spin scheduled for this cycle; returns spins performed."""
        groups = self._pending.pop(now, None)
        if not groups:
            return 0
        performed = 0
        links_used = set()
        for source in sorted(groups):
            entries = [
                vc for vc in groups[source]
                if vc.frozen and vc.freeze_source == source
                and vc.freeze_spin_cycle == now and vc.packet is not None
            ]
            if self._spin_group(source, entries, links_used, now):
                performed += 1
        return performed

    def _spin_group(self, source: int, entries: List[VirtualChannel],
                    links_used: set, now: int) -> bool:
        network = self.framework.network
        stats = self.framework.stats
        if len(entries) < 2:
            self._abort(entries, now, "undersized")
            return False
        entries.sort(key=lambda vc: vc.freeze_path_index)
        indices = [vc.freeze_path_index for vc in entries]
        if indices != list(range(len(entries))):
            self._abort(entries, now, "broken_chain")
            return False
        # Verify the ring is closed and every output link is usable.
        count = len(entries)
        for i, vc in enumerate(entries):
            router = network.routers[vc.router]
            outport = vc.freeze_outport
            neighbor_entry = router.out_neighbors.get(outport)
            if neighbor_entry is None:
                self._abort(entries, now, "bad_port")
                return False
            neighbor, dst_inport = neighbor_entry
            target = entries[(i + 1) % count]
            if neighbor.id != target.router or dst_inport != target.inport:
                self._abort(entries, now, "broken_chain")
                return False
            link_key = (vc.router, outport)
            if link_key in links_used or not router.out_links[outport].is_free(now):
                self._abort(entries, now, "link_busy")
                return False
        for vc in entries:
            links_used.add((vc.router, vc.freeze_outport))

        if self.framework.collect_ground_truth:
            self._classify_ground_truth(entries, now)

        # Capture per-router initiator flags before the rotation wipes the
        # freeze metadata (release() clears it as each packet departs).
        initiators = {}
        for vc in entries:
            was = initiators.get(vc.router, False)
            initiators[vc.router] = was or vc.freeze_path_index == 0

        self._rotate(entries, now)
        stats.count("spins")
        stats.count("spin_hops", len(entries))
        injector = getattr(network, "fault_injector", None)
        if injector is not None and injector.faults_fired > 0:
            # A recovery completed on a fabric that has seen injected
            # faults — the headline robustness metric (docs/FAULTS.md).
            stats.count("recoveries_after_fault")
        for router_id, was_initiator in initiators.items():
            self.framework.controllers[router_id].on_spin_complete(
                now, was_initiator)
        return True

    def _rotate(self, entries: List[VirtualChannel], now: int) -> None:
        network = self.framework.network
        routing = network.routing
        config = network.config
        count = len(entries)
        # Capture per-entry context before release() clears the freeze state.
        packets = [vc.packet for vc in entries]
        outports = [vc.freeze_outport for vc in entries]
        initiator = entries[0].freeze_source
        for vc, outport in zip(entries, outports):
            router = network.routers[vc.router]
            packet = vc.release(now)
            router.out_links[outport].occupy(now, packet.length)
            router.port_busy[vc.inport] = now + packet.length - 1
            network.note_vc_released(router, vc)
        for i, vc in enumerate(entries):
            router = network.routers[vc.router]
            outport = outports[i]
            packet = packets[i]
            target = entries[(i + 1) % count]
            link = router.out_links[outport]
            was_min = network.topology.min_hops(vc.router, packet.routing_target)
            # The slot frees exactly as its resident drains: the simultaneity
            # of the spin is what makes this safe (paper Sec. III).
            target.free_at = now
            target.reserve(packet, now, link.latency, config.router_latency)
            packet.hops += 1
            packet.spins += 1
            if packet.spins > self.framework.params.max_spins:
                # Simulation-only safety valve (SpinParams.max_spins): the
                # theory bounds the spins one deadlock needs, so exceeding
                # the valve indicates a simulator or protocol bug.
                controller = self.framework.controllers[vc.router]
                raise SimulationError(
                    "packet exceeded max_spins — likely a protocol bug",
                    cycle=now, router=vc.router, packet=packet.uid,
                    spins=packet.spins, fsm_state=controller.state.name,
                    initiator=initiator)
            now_min = network.topology.min_hops(target.router,
                                                packet.routing_target)
            if now_min >= was_min:
                packet.misroutes += 1
            packet.current_request = None
            routing.on_hop(packet, router, outport)
            network.stats.count("flit_hops", packet.length)
            network.note_vc_reserved(network.routers[target.router], target)
        network.note_movement()

    def _classify_ground_truth(self, entries: List[VirtualChannel],
                               now: int) -> None:
        """Label this spin as resolving a true deadlock or a false positive."""
        from repro.deadlock.waitgraph import find_deadlocked_packets

        deadlocked = find_deadlocked_packets(self.framework.network, now)
        uids = {vc.packet.uid for vc in entries if vc.packet is not None}
        if uids & deadlocked:
            self.framework.stats.count("spins_true_deadlock")
        else:
            self.framework.stats.count("spins_false_positive")

    def _abort(self, entries: List[VirtualChannel], now: int,
               reason: str) -> None:
        self.framework.stats.count("spins_aborted")
        self.framework.stats.count(f"spins_aborted_{reason}")
        routers = []
        for vc in entries:
            vc.clear_freeze()
            if vc.router not in routers:
                routers.append(vc.router)
        for router_id in routers:
            self.framework.controllers[router_id].on_spin_aborted(now)

