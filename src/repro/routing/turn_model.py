"""Turn-model routing (Glass & Ni): west-first and north-last.

Turn models are the most popular direct application of Dally's theory on a
mesh: prohibiting one turn per rotation sense makes the channel dependency
graph acyclic while leaving partial adaptivity.  ``WestFirstRouting`` is the
paper's mesh avoidance baseline (Table III); ``NorthLastRouting`` is included
for the CDG analysis tests and as a second escape-function option.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm
from repro.topology.mesh import NORTH, WEST


class TurnModelRouting(RoutingAlgorithm):
    """Common scaffolding for mesh turn-model algorithms."""

    theory = "Dally"
    minimal = True
    max_misroutes = 0

    def _setup(self) -> None:
        if not hasattr(self.topology, "directions_toward"):
            raise ConfigurationError(
                f"{self.name} routing needs a mesh-like topology")


class WestFirstRouting(TurnModelRouting):
    """West-first: take all westward hops before anything else.

    Once a packet stops traveling west it may route adaptively among the
    remaining productive directions (north/east/south), none of which can
    ever require a turn back to west on a minimal path.
    """

    name = "WestFirst"

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        productive = self.topology.directions_toward(
            router.id, packet.routing_target)
        if WEST in productive:
            return (WEST,)
        return tuple(productive)


class NorthLastRouting(TurnModelRouting):
    """North-last: a packet that turns north must keep going north.

    Adaptive among productive non-north directions while any exist; north is
    taken only when it is the sole productive direction left, after which no
    further turns are possible on a minimal path.
    """

    name = "NorthLast"

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        productive = self.topology.directions_toward(
            router.id, packet.routing_target)
        non_north = tuple(d for d in productive if d != NORTH)
        if non_north:
            return non_north
        return tuple(productive)
