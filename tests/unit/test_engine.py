"""Unit tests for the cycle-loop simulator kernel."""

from repro.sim.engine import Simulator


class Recorder:
    """Component recording which phases ran at which cycle."""

    def __init__(self, log, name):
        self.log = log
        self.name = name

    def phase_deliver(self, cycle):
        self.log.append((cycle, self.name, "deliver"))

    def phase_control(self, cycle):
        self.log.append((cycle, self.name, "control"))

    def phase_allocate(self, cycle):
        self.log.append((cycle, self.name, "allocate"))


class InjectOnly:
    def __init__(self, log):
        self.log = log

    def phase_inject(self, cycle):
        self.log.append((cycle, "inject-only", "inject"))


class TestPhaseOrdering:
    def test_phases_run_in_order_within_cycle(self):
        log = []
        sim = Simulator()
        sim.register(Recorder(log, "a"))
        sim.register(InjectOnly(log))
        sim.step()
        phases = [entry[2] for entry in log]
        assert phases == ["deliver", "control", "inject", "allocate"]

    def test_components_run_in_registration_order(self):
        log = []
        sim = Simulator()
        sim.register(Recorder(log, "first"))
        sim.register(Recorder(log, "second"))
        sim.step()
        controls = [e[1] for e in log if e[2] == "control"]
        assert controls == ["first", "second"]

    def test_cycle_counter_advances(self):
        sim = Simulator()
        sim.run(5)
        assert sim.cycle == 5

    def test_missing_hooks_are_skipped(self):
        sim = Simulator()
        sim.register(object())
        sim.run(3)  # must not raise
        assert sim.cycle == 3

    def test_register_after_running_rebuilds_schedule(self):
        log = []
        sim = Simulator()
        sim.register(Recorder(log, "a"))
        sim.step()
        sim.register(Recorder(log, "b"))
        sim.step()
        cycle1 = [e for e in log if e[0] == 1]
        assert any(e[1] == "b" for e in cycle1)


class TestRunUntil:
    def test_stops_when_predicate_true(self):
        sim = Simulator()
        assert sim.run_until(lambda: sim.cycle >= 4, max_cycles=100)
        assert sim.cycle == 4

    def test_returns_false_on_exhaustion(self):
        sim = Simulator()
        assert not sim.run_until(lambda: False, max_cycles=10)
        assert sim.cycle == 10
