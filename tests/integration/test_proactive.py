"""Tests for proactive spinning (the paper's footnote-3 avoidance mode)."""

import pytest

from repro.config import NetworkConfig, SpinParams
from repro.core.proactive import ProactiveSpinPlane
from repro.deadlock.waitgraph import has_deadlock
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_ring_deadlock, craft_square_deadlock


def proactive_network(topology=None, stall_threshold=32, period=8, seed=1):
    return Network(topology or MeshTopology(4, 4),
                   NetworkConfig(vcs_per_vnet=1),
                   MinimalAdaptiveRouting(seed),
                   control_planes=(ProactiveSpinPlane(stall_threshold,
                                                      period),),
                   seed=seed)


class TestChainConstruction:
    def test_chain_covers_every_router(self):
        network = proactive_network()
        plane = network.control_planes[0]
        routers = {router for router, _, _ in plane._chain}
        assert routers == set(range(16))

    def test_chain_buffers_are_unique(self):
        network = proactive_network()
        plane = network.control_planes[0]
        buffers = [(r, p) for r, p, _ in plane._chain]
        assert len(buffers) == len(set(buffers))

    def test_chain_is_contiguous_walk(self):
        network = proactive_network()
        plane = network.control_planes[0]
        chain = plane._chain
        for i, (router, _inport, outport) in enumerate(chain):
            neighbor, dst_inport = (
                network.routers[router].out_neighbors[outport])
            next_router, next_inport, _ = chain[(i + 1) % len(chain)]
            assert neighbor.id == next_router
            assert dst_inport == next_inport

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ProactiveSpinPlane(stall_threshold=0)


class TestDrainResolvesDeadlocks:
    def test_crafted_square_deadlock_cleared_without_probes(self):
        network = proactive_network(stall_threshold=16)
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done, dict(network.stats.events)
        plane = network.control_planes[0]
        assert plane.drains_performed >= 1
        # No reactive machinery ran at all.
        assert network.stats.events.get("probes_sent", 0) == 0

    def test_ring_deadlock_cleared(self):
        network = Network(RingTopology(6), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(1),
                          control_planes=(ProactiveSpinPlane(16, 8),),
                          seed=1)
        packets = craft_ring_deadlock(network, dst_ahead=2)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=8000)
        assert done, dict(network.stats.events)

    def test_sustained_load_stays_live(self):
        network = proactive_network(stall_threshold=32, seed=5)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.3, seed=5,
            stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(15000)
        stats = network.stats
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog())
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())

    def test_no_drains_at_light_load(self):
        network = proactive_network(stall_threshold=64, seed=3)
        network.stats.open_window(0, 2000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.05, seed=3,
            stop_at=2000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(4000)
        assert network.control_planes[0].drains_performed == 0
        assert network.is_drained()


class TestCoexistenceWithReactiveSpin:
    def test_both_planes_together(self):
        # Proactive drains coexist with the reactive framework: frozen VCs
        # are skipped by the drain, and neither loses packets.
        network = Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                          MinimalAdaptiveRouting(7),
                          spin=SpinParams(tdd=48),
                          control_planes=(ProactiveSpinPlane(96, 16),),
                          seed=7)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.3, seed=7,
            stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(12000)
        stats = network.stats
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog())
