"""Runtime verification for the SPIN network core.

Three layers (see docs/VERIFY.md for the full catalog and usage):

* :mod:`repro.verify.invariants` — the invariant catalog: stateless
  per-snapshot checkers, each yielding
  :class:`~repro.errors.InvariantViolation` tagged with its family name.
* :mod:`repro.verify.oracle` — :class:`InvariantOracle`, the simulator
  observer that runs the catalog every cycle plus the history-dependent
  checks (conservation, teleport, FSM legality, deadlock persistence).
  Zero-cost when not attached; enabled globally via ``REPRO_VERIFY``.
* :mod:`repro.verify.trace` / :mod:`repro.verify.golden` — golden-trace
  digests and the pinned regression scenarios.
* :mod:`repro.verify.differential` — the cross-theory conformance runner
  (``repro-sim verify``).
"""

from repro.verify.invariants import INVARIANTS
from repro.verify.oracle import InvariantOracle, OracleConfig, oracle_from_env
from repro.verify.trace import TraceRecorder, divergence_report

__all__ = [
    "INVARIANTS",
    "InvariantOracle",
    "OracleConfig",
    "oracle_from_env",
    "TraceRecorder",
    "divergence_report",
]
