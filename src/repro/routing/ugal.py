"""Dragonfly routing: minimal and UGAL (Universal Globally-Adaptive Load-balanced).

``UgalRouting`` decides minimal-vs-Valiant once at the source by comparing
weighted congestion estimates of the two first hops (Kim et al., ISCA 2008).
Its deadlock-avoidance baseline form applies the standard Dally-style VC
ordering for dragonflies: a packet must move to the next VC class every time
it crosses a global (inter-group) channel, which needs 2 VC classes for
minimal and 3 for non-minimal traffic.  With ``vc_discipline=False`` the
same algorithm runs unrestricted — the paper's "UGAL with SPIN" design that
"allows packets to freely use any available VC" (Sec. VI-C).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.base import RoutingAlgorithm
from repro.topology.dragonfly import DragonflyTopology


class MinimalDragonflyRouting(MinimalAdaptiveRouting):
    """Minimal adaptive routing on a dragonfly (Fig. 6's 1-VC baseline)."""

    name = "Minimal"

    def _setup(self) -> None:
        if not isinstance(self.topology, DragonflyTopology):
            raise ConfigurationError("this algorithm needs a dragonfly topology")


class UgalRouting(RoutingAlgorithm):
    """UGAL-L source-adaptive routing for dragonflies.

    Args:
        seed: RNG seed for intermediate-group selection and tie-breaks.
        vc_discipline: Apply the Dally VC-ordering (the avoidance baseline).
            When False, deadlock freedom must come from a recovery control
            plane such as SPIN.
        threshold: Bias toward minimal routing in the UGAL comparison.
    """

    name = "UGAL"
    minimal = False
    max_misroutes = 1  # UGAL misroutes a packet at most once (Sec. III)
    theory = "Dally"

    def __init__(self, seed: int = 0, vc_discipline: bool = True,
                 threshold: int = 0) -> None:
        super().__init__(seed)
        self.vc_discipline = vc_discipline
        self.threshold = threshold
        if vc_discipline:
            self.name = "UGAL-Dally"
        else:
            self.name = "UGAL-SPIN"
            self.theory = "SPIN"

    def _setup(self) -> None:
        if not isinstance(self.topology, DragonflyTopology):
            raise ConfigurationError("UGAL needs a dragonfly topology")
        if self.vc_discipline:
            # Classes 0..2: before, between and after the two global hops of
            # a Valiant path.
            self._require_vcs(3)

    # ------------------------------------------------------------------
    # Source decision
    # ------------------------------------------------------------------
    def on_inject(self, packet: Packet, now: int) -> None:
        packet.vc_class = 0
        packet.route_state["globals"] = 0
        source = self.network.routers[packet.src_router]
        if packet.dst_router == packet.src_router:
            return
        topology: DragonflyTopology = self.topology
        src_group = topology.group_of(packet.src_router)
        dst_group = topology.group_of(packet.dst_router)
        if src_group == dst_group:
            return  # intra-group traffic is always minimal (single hop)
        min_ports = self.productive_ports(source, packet.dst_router)
        q_min = self._port_congestion(source, packet, min_ports, now)
        if q_min == 0:
            return  # an idle minimal first hop: route minimally
        intermediate_group = self._random_other_group(src_group, dst_group)
        intermediate = topology.router_in_group(
            intermediate_group, self.rng.randint(0, topology.a - 1))
        h_min = topology.min_hops(packet.src_router, packet.dst_router)
        h_non = (topology.min_hops(packet.src_router, intermediate)
                 + topology.min_hops(intermediate, packet.dst_router))
        non_ports = self.productive_ports(source, intermediate)
        q_non = self._port_congestion(source, packet, non_ports, now)
        if h_min * q_min > h_non * q_non + self.threshold:
            packet.intermediate_router = intermediate
            packet.phase = 0

    def _random_other_group(self, src_group: int, dst_group: int) -> int:
        topology: DragonflyTopology = self.topology
        while True:
            group = self.rng.randint(0, topology.num_groups - 1)
            if group not in (src_group, dst_group):
                return group

    def _port_congestion(self, router, packet: Packet,
                         ports: Sequence[int], now: int) -> int:
        """Congestion proxy: occupied-VC count at the best candidate port.

        Classic UGAL compares output-queue depths; the closest observable
        on this substrate is the number of busy VCs at the downstream input
        port.  Measured over *all* VCs of the port — identically for the
        Dally-disciplined and the SPIN variants — so both make the same
        minimal-vs-Valiant decisions and the designs differ only in how
        freely packets may use the VCs (the paper's Sec. VI-C comparison).
        """
        if not ports:
            return 0
        vcs_per_vnet = self.network.config.vcs_per_vnet
        best = None
        for port in ports:
            neighbor, dst_port = router.out_neighbors[port]
            vcs = neighbor.vnet_slice(dst_port, packet.vnet)
            occupied = sum(1 for vc in vcs if not vc.is_idle(now))
            if best is None or occupied < best:
                best = occupied
        if best == vcs_per_vnet:
            # Every VC busy: refine by how long the youngest has been busy.
            best += min(
                router.downstream_min_active_time(
                    port, packet.vnet, range(vcs_per_vnet), now)
                for port in ports
            )
        return best

    # ------------------------------------------------------------------
    # Per-hop routing
    # ------------------------------------------------------------------
    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        return self.productive_ports(router, packet.routing_target)

    def vc_choices(self, packet: Packet, router, outport: int) -> Sequence[int]:
        if not self.vc_discipline:
            return range(self.network.config.vcs_per_vnet)
        vc = min(packet.vc_class, self.network.config.vcs_per_vnet - 1)
        return (vc,)

    def injection_vc_choices(self, packet: Packet) -> Sequence[int]:
        if not self.vc_discipline:
            return range(self.network.config.vcs_per_vnet)
        return (0,)

    def on_hop(self, packet: Packet, router, outport: int) -> None:
        topology: DragonflyTopology = self.topology
        if topology.is_global_port(outport):
            packet.route_state["globals"] = packet.route_state.get("globals", 0) + 1
            packet.vc_class = packet.route_state["globals"]
