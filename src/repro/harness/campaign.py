"""Crash-safe sweep campaigns: durable journal, resume, failure budgets.

A *campaign* is a sweep that survives anything short of losing the disk.
The engine wraps spec execution in a durable, content-addressed journal:

* ``manifest.json`` — the campaign header, written atomically once: the
  schema tag, the artifact metadata, and every spec (with its
  :meth:`~repro.harness.runner.ExperimentSpec.content_key`) in order.  A
  resume reconstructs the whole campaign from this file alone.
* ``journal.jsonl`` — append-only completions, one fsync'd JSON record per
  finished point keyed by spec content hash.  A crash can tear at most the
  final record, and the loader tolerates exactly that (a torn *interior*
  record means real corruption and fails loudly).

Because each point is a deterministic seeded simulation, a resumed
campaign that skips journaled points and re-runs the rest produces a
results artifact **byte-identical** to an uninterrupted run — the
recovery path is proven by differential byte-identity (chaos suite,
``pytest -m chaos``), not assumed.

On top of durability the engine supervises its workers
(:mod:`repro.harness.supervision`): hung-worker detection and respawn,
transient-vs-deterministic failure classification, bounded
exponential-backoff retries with deterministic jitter, a per-campaign
failure budget, and graceful SIGINT/SIGTERM draining that always leaves a
valid resumable journal.  See docs/CAMPAIGNS.md.
"""

from __future__ import annotations

import heapq
import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.harness.parallel import SpecResult
from repro.harness.runner import ExperimentSpec
from repro.harness.supervision import (
    TRANSIENT,
    RetryPolicy,
    SupervisedPool,
    classify_failure,
    error_class,
    run_attempt,
)
from repro.stats.results import atomic_write_text
from repro.stats.sweep import (
    SaturationCursor,
    SweepPoint,
    curve_saturation_rate,
)

#: Version tag of the campaign directory layout.
CAMPAIGN_SCHEMA = "repro.campaign/v1"

#: File names inside a campaign directory.
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class CampaignJournal:
    """The append-only, fsync'd record of completed campaign points.

    Every :meth:`append` is flushed and fsync'd before returning, so a
    record either survives whole or (for the one being written at the
    instant of death) is torn at the tail — the only corruption
    :meth:`load` forgives.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self._handle = None

    # -- writing -------------------------------------------------------
    def open(self) -> "CampaignJournal":
        """Open for appending (creating the directory if needed)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self._handle is None:
            raise ConfigurationError("journal is not open for appending")
        self._handle.write(json.dumps(record, **_COMPACT) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    def load(self) -> Tuple[List[Dict[str, object]], int]:
        """Read back all intact records; returns ``(records, torn)``.

        ``torn`` counts trailing records dropped because they were cut
        mid-write (0 or 1 by construction).  A malformed record anywhere
        *before* the tail is genuine corruption and raises.
        """
        if not self.path.exists():
            return [], 0
        raw = self.path.read_text(encoding="utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: List[Dict[str, object]] = []
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "key" not in record:
                    raise ValueError("not a journal record")
            except ValueError:
                if index == len(lines) - 1:
                    return records, 1  # torn tail: the crash we survive
                raise ConfigurationError(
                    "campaign journal is corrupt before its tail",
                    path=str(self.path), line=index + 1) from None
            records.append(record)
        return records, 0


def ok_record(key: str, attempt: int, result: SpecResult
              ) -> Dict[str, object]:
    """Journal record for a completed point.

    ``engine`` records which simulation engine actually produced the point
    (the spec's engine after precedence — a spec that leaves the field
    unset still resolves through environment/default at run time).  The
    journal is provenance: engines are bit-identical, but a resumed
    campaign must not silently mix engines (see ``_replay``).
    """
    return {"key": key, "attempt": attempt, "status": "ok",
            "engine": result.spec.effective_engine(),
            "point": result.point.to_dict(),
            "wall_time": result.wall_time}

def failed_record(key: str, attempt: int, result: SpecResult
                  ) -> Dict[str, object]:
    """Journal record for a permanently failed point."""
    return {"key": key, "attempt": attempt, "status": "failed",
            "error": result.error,
            "class": classify_failure(result.error)}


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def write_manifest(directory: Union[str, Path],
                   specs: Sequence[ExperimentSpec],
                   meta: Dict[str, object],
                   settings: Optional[Dict[str, object]] = None) -> Path:
    """Atomically write the campaign header.

    The manifest is the single source of truth for a resume: schema tag,
    artifact ``meta`` (reused verbatim when the artifact is finally
    written, so resumed artifacts carry identical metadata), optional
    ``settings`` (output path, latency cap), and the full ordered spec
    list with content keys.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CAMPAIGN_SCHEMA,
        "meta": meta,
        "settings": settings or {},
        "specs": [{"key": spec.content_key(), "spec": spec.to_dict()}
                  for spec in specs],
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return atomic_write_text(directory / MANIFEST_NAME, text)


def load_manifest(directory: Union[str, Path]
                  ) -> Tuple[List[ExperimentSpec], Dict[str, object],
                             Dict[str, object]]:
    """Load and validate a manifest; returns ``(specs, meta, settings)``.

    Every spec is revalidated through
    :meth:`~repro.harness.runner.ExperimentSpec.from_dict` and its stored
    content key cross-checked against the recomputed one, so silent
    manifest corruption cannot mispair journal entries with specs.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise ConfigurationError("no campaign manifest found",
                                 path=str(path))
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ConfigurationError(
            f"campaign manifest is not valid JSON ({exc})",
            path=str(path)) from None
    if not isinstance(payload, dict) \
            or payload.get("schema") != CAMPAIGN_SCHEMA:
        raise ConfigurationError("unsupported campaign schema",
                                 got=payload.get("schema")
                                 if isinstance(payload, dict) else None,
                                 expected=CAMPAIGN_SCHEMA)
    entries = payload.get("specs")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("campaign manifest carries no specs",
                                 path=str(path))
    specs: List[ExperimentSpec] = []
    for entry in entries:
        spec = ExperimentSpec.from_dict(entry["spec"])
        if spec.content_key() != entry.get("key"):
            raise ConfigurationError(
                "manifest spec key mismatch (corrupt manifest?)",
                stored=entry.get("key"), computed=spec.content_key())
        specs.append(spec)
    meta = payload.get("meta") or {}
    settings = payload.get("settings") or {}
    if not isinstance(meta, dict) or not isinstance(settings, dict):
        raise ConfigurationError("manifest meta/settings must be objects")
    return specs, meta, settings


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """Execution policy for one campaign run.

    ``stream`` controls the live observability plane
    (:mod:`repro.telemetry.live`): when True *and* the campaign has a
    directory, workers stream progress frames to the supervisor, which
    maintains a rolling ``status.json`` next to the journal for
    ``cli watch`` / ``cli serve-metrics``.  Streaming is observation
    only — result artifacts, journal records and content keys are
    byte-identical with it on or off (``--no-stream``).
    """

    jobs: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_failures: Optional[int] = None
    hang_timeout: Optional[float] = None
    poll_interval: float = 0.05
    latency_cap: float = 4.0
    stream: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1", jobs=self.jobs)
        if self.max_failures is not None and self.max_failures < 0:
            raise ConfigurationError("max_failures must be >= 0",
                                     max_failures=self.max_failures)
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ConfigurationError("hang_timeout must be positive",
                                     hang_timeout=self.hang_timeout)
        if self.latency_cap <= 1.0:
            raise ConfigurationError("latency_cap must exceed 1.0",
                                     latency_cap=self.latency_cap)


@dataclass
class CampaignReport:
    """Outcome of one :meth:`CampaignEngine.run` invocation.

    Attributes:
        results: One ordered slot per spec; ``None`` for specs the
            campaign never reached (drain or abort) — resumable later.
        points: The saturation-cut curve prefix (artifact contents).
        saturation_rate: Saturation of the cut curve.
        status: ``"completed"``, ``"failure-budget"`` or
            ``"interrupted:<SIGNAME>"``.
        clean: True when every point up to the saturation cut succeeded —
            the precondition for writing the results artifact.
        counters: Durability telemetry (resumed points, retries, worker
            respawns/hangs, failure classes, torn journal records).
    """

    results: List[Optional[SpecResult]]
    points: List[SweepPoint]
    saturation_rate: float
    status: str
    clean: bool
    counters: Dict[str, int]

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def failed(self) -> List[SpecResult]:
        """Permanently failed results, in spec order."""
        return [r for r in self.results if r is not None and not r.ok]


def assemble_curve(results: Sequence[Optional[SpecResult]],
                   latency_cap: float = 4.0
                   ) -> Tuple[List[SweepPoint], float, bool]:
    """Cut an ordered result list into the serial-curve prefix.

    Walks results in ascending-rate order through the same
    :class:`~repro.stats.sweep.SaturationCursor` every sweep driver uses,
    so the returned points are exactly what an uninterrupted serial sweep
    reports.  Returns ``(points, saturation_rate, clean)`` where ``clean``
    is False when a missing or failed point interrupted the prefix before
    the saturation cut (no trustworthy artifact exists then).
    """
    cursor = SaturationCursor(latency_cap)
    points: List[SweepPoint] = []
    clean = True
    for result in results:
        if result is None or not result.ok:
            clean = False
            break
        points.append(result.point)
        if cursor.push(result.point):
            break
    return points, curve_saturation_rate(points, latency_cap), clean


class CampaignEngine:
    """Runs a spec list to completion, durably, under supervision.

    Args:
        specs: Ordered specs (ascending-rate curves for sweeps).
        directory: Campaign directory for the durable journal; ``None``
            runs ephemerally (same engine, no files) — the path plain
            ``cli sweep`` uses.
        config: Execution policy (:class:`CampaignConfig`).
        registry: Optional :class:`~repro.telemetry.MetricsRegistry`; when
            given, the engine's counters are mirrored into ``campaign_*``
            counter families on completion
            (:mod:`repro.telemetry.campaign`).
    """

    def __init__(self, specs: Sequence[ExperimentSpec],
                 directory: Optional[Union[str, Path]] = None,
                 config: Optional[CampaignConfig] = None,
                 registry=None) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ConfigurationError("campaign needs at least one spec")
        self.keys = [spec.content_key() for spec in self.specs]
        self.directory = Path(directory) if directory is not None else None
        self.config = config or CampaignConfig()
        self.registry = registry
        self.counters: Dict[str, int] = {}
        self._drain = False
        self._signal: Optional[int] = None
        self._plane = None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute (or resume) the campaign; always leaves a valid journal."""
        results: List[Optional[SpecResult]] = [None] * len(self.specs)
        journal: Optional[CampaignJournal] = None
        if self.directory is not None:
            journal = CampaignJournal(self.directory)
            self._replay(journal, results)
            journal.open()
        pending = [i for i, r in enumerate(results) if r is None]
        self._drain = False
        self._signal = None
        self._plane = self._start_plane(results)
        previous = self._install_signal_handlers()
        status = "error"
        try:
            if pending:
                if self.config.jobs == 1:
                    status = self._run_serial(pending, results, journal)
                else:
                    status = self._run_pool(pending, results, journal)
            else:
                status = "completed"
        finally:
            self._restore_signal_handlers(previous)
            if journal is not None:
                journal.close()
            if self._plane is not None:
                self._plane.stop(status)
                self._plane = None
        points, saturation, clean = assemble_curve(
            results, self.config.latency_cap)
        if self.registry is not None:
            from repro.telemetry.campaign import record_campaign_counters

            record_campaign_counters(self.registry, self.counters)
        return CampaignReport(results=results, points=points,
                              saturation_rate=saturation, status=status,
                              clean=clean, counters=dict(self.counters))

    # ------------------------------------------------------------------
    # Live observability plane
    # ------------------------------------------------------------------
    def _start_plane(self, results: List[Optional[SpecResult]]):
        """Start the live status plane (directory campaigns only).

        Failure to start degrades to an unobserved campaign — the plane
        can never take a sweep down with it.
        """
        if self.directory is None or not self.config.stream:
            return None
        from repro.telemetry.live import DEFAULT_HANG_AFTER, LiveStatusPlane

        plane = LiveStatusPlane(
            self.directory,
            keys=self.keys,
            rates=[spec.injection_rate for spec in self.specs],
            hang_after=self.config.hang_timeout or DEFAULT_HANG_AFTER,
            max_failures=self.config.max_failures,
            latency_cap=self.config.latency_cap,
        )
        plane.start()
        resumed = [(self.keys[i], r.point)
                   for i, r in enumerate(results)
                   if r is not None and r.ok]
        if resumed:
            plane.mark_resumed([key for key, _ in resumed],
                               dict(resumed))
        return plane

    def _notify_done(self, key: str, result: SpecResult) -> None:
        if self._plane is not None:
            self._plane.point_done(
                key, result.ok, point=result.point,
                wall_time=result.wall_time,
                error_class=(None if result.ok
                             else error_class(result.error)))

    def _notify_retry(self, key: str, attempt: int) -> None:
        if self._plane is not None:
            self._plane.point_retry(key, attempt)

    # ------------------------------------------------------------------
    # Journal replay (resume)
    # ------------------------------------------------------------------
    def _replay(self, journal: CampaignJournal,
                results: List[Optional[SpecResult]]) -> None:
        """Skip every point the journal already proves complete.

        Only ``ok`` records are replayed: permanent failures are re-run on
        resume, because resuming usually follows exactly the kind of chaos
        (a dead machine, a broken pool) that caused them.
        """
        records, torn = journal.load()
        if torn:
            self._bump("journal_torn_records", torn)
        completed: Dict[str, Dict[str, object]] = {}
        for record in records:
            if record.get("status") == "ok":
                completed[record["key"]] = record
        for index, key in enumerate(self.keys):
            record = completed.get(key)
            if record is None:
                continue
            journaled = record.get("engine")
            expected = self.specs[index].effective_engine()
            if journaled is not None and journaled != expected:
                # Engines are bit-identical, but a resume that silently
                # mixed engines would falsify the journal's provenance —
                # refuse and make the operator pick one.  (Pre-engine
                # journals carry no engine field and resume under any.)
                raise ConfigurationError(
                    "campaign journal was written under a different "
                    "engine; resume with the original engine or start a "
                    "fresh campaign directory",
                    journaled=journaled, resuming=expected,
                    directory=str(self.directory))
            point = SweepPoint.from_dict(record["point"])
            results[index] = SpecResult(
                self.specs[index], point,
                wall_time=float(record.get("wall_time", 0.0)))
            self._bump("points_resumed")

    # ------------------------------------------------------------------
    # Serial execution (jobs == 1)
    # ------------------------------------------------------------------
    def _run_serial(self, pending: List[int],
                    results: List[Optional[SpecResult]],
                    journal: Optional[CampaignJournal]) -> str:
        failures = len([r for r in results if r is not None and not r.ok])
        for index in pending:
            if self._drain:
                return self._interrupted()
            spec, key = self.specs[index], self.keys[index]
            attempt = 0
            while True:
                result = run_attempt(spec, attempt)
                if result.ok:
                    self._journal(journal, ok_record(key, attempt, result))
                    results[index] = result
                    self._notify_done(key, result)
                    break
                if self._retryable(result, attempt):
                    self._bump("retries")
                    self._notify_retry(key, attempt)
                    time.sleep(self.config.retry.delay(key, attempt))
                    attempt += 1
                    continue
                self._journal(journal, failed_record(key, attempt, result))
                results[index] = result
                self._notify_done(key, result)
                failures += 1
                self._bump("failures_permanent")
                if self._budget_exhausted(failures):
                    return "failure-budget"
                break
        return self._interrupted() if self._drain else "completed"

    # ------------------------------------------------------------------
    # Supervised pool execution (jobs > 1)
    # ------------------------------------------------------------------
    def _run_pool(self, pending: List[int],
                  results: List[Optional[SpecResult]],
                  journal: Optional[CampaignJournal]) -> str:
        config = self.config
        pool = SupervisedPool(max_workers=config.jobs,
                              hang_timeout=config.hang_timeout,
                              poll_interval=config.poll_interval,
                              counters=self.counters,
                              stream=(self._plane.aggregator
                                      if self._plane is not None else None))
        pool.start()
        status = "completed"
        failures = len([r for r in results if r is not None and not r.ok])
        feed = deque(pending)           # never submitted yet
        retry_heap: List[Tuple[float, int]] = []  # backoff-waiting retries
        submitted: set = set()          # handed to the pool, result owed
        attempts: Dict[int, int] = {}
        # A small submission window keeps the shared task queue nearly
        # empty, so draining or aborting stops promptly instead of letting
        # workers chew through a deep backlog of doomed tasks.
        window = config.jobs + 2
        try:
            while True:
                now = time.monotonic()
                halted = self._drain or status != "completed"
                if not halted:
                    while (retry_heap and retry_heap[0][0] <= now
                           and len(submitted) < window):
                        _, index = heapq.heappop(retry_heap)
                        pool.submit(index, attempts[index],
                                    self.specs[index])
                        submitted.add(index)
                    while feed and len(submitted) < window:
                        index = feed.popleft()
                        attempts.setdefault(index, 0)
                        pool.submit(index, attempts[index],
                                    self.specs[index])
                        submitted.add(index)
                if not submitted and (halted
                                      or (not feed and not retry_heap)):
                    break
                timeout = 0.2
                if retry_heap and not submitted:
                    timeout = max(0.01, min(0.2, retry_heap[0][0] - now))
                for index, attempt, result in pool.events(timeout=timeout):
                    if index not in submitted or attempt != attempts[index]:
                        continue  # stale duplicate from a failed-over task
                    submitted.discard(index)
                    key = self.keys[index]
                    if result.ok:
                        self._journal(journal,
                                      ok_record(key, attempt, result))
                        results[index] = result
                        self._notify_done(key, result)
                        continue
                    if not halted and self._retryable(result, attempt):
                        self._bump("retries")
                        self._notify_retry(key, attempt)
                        attempts[index] = attempt + 1
                        ready = (time.monotonic()
                                 + self.config.retry.delay(key, attempt))
                        heapq.heappush(retry_heap, (ready, index))
                        continue
                    self._journal(journal,
                                  failed_record(key, attempt, result))
                    results[index] = result
                    self._notify_done(key, result)
                    failures += 1
                    self._bump("failures_permanent")
                    if self._budget_exhausted(failures):
                        status = "failure-budget"
        finally:
            pool.stop(force=self._drain or status != "completed")
        if self._drain:
            return self._interrupted()
        return status

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _journal(self, journal: Optional[CampaignJournal],
                 record: Dict[str, object]) -> None:
        if journal is not None:
            journal.append(record)

    def _retryable(self, result: SpecResult, attempt: int) -> bool:
        if classify_failure(result.error) != TRANSIENT:
            return False
        self._bump("failures_transient")
        return attempt < self.config.retry.retries and not self._drain

    def _budget_exhausted(self, failures: int) -> bool:
        budget = self.config.max_failures
        return budget is not None and failures > budget

    def _interrupted(self) -> str:
        try:
            name = signal.Signals(self._signal).name
        except (ValueError, TypeError):  # pragma: no cover
            name = str(self._signal)
        return f"interrupted:{name}"

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _handle_signal(self, signum, frame) -> None:
        self._drain = True
        if self._signal is None:
            self._signal = signum

    def _install_signal_handlers(self):
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum,
                                                 self._handle_signal)
            except (ValueError, OSError):
                # Not the main thread (tests, embedding): run without
                # graceful draining rather than refusing to run at all.
                pass
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
