"""Cycle-level simulation kernel: clock loop and deterministic RNG."""

from repro.sim.rng import DeterministicRng
from repro.sim.engine import Simulator

__all__ = ["DeterministicRng", "Simulator"]
