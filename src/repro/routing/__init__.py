"""Routing algorithms.

Every algorithm implements :class:`~repro.routing.base.RoutingAlgorithm`.
The registry groups them by the deadlock-freedom theory they rely on
(Table I of the paper):

* Dally's theory — :class:`DimensionOrderRouting` (XY), :class:`WestFirstRouting`,
  :class:`UgalRouting` (with its VC-ordering discipline), :class:`UpDownRouting`.
* Duato's theory — :class:`EscapeVcRouting`.
* SPIN — :class:`MinimalAdaptiveRouting`, :class:`FavorsMinimal`,
  :class:`FavorsNonMinimal` (no restrictions; rely on recovery).
"""

from repro.routing.base import RoutingAlgorithm
from repro.routing.dor import DimensionOrderRouting
from repro.routing.turn_model import WestFirstRouting, NorthLastRouting
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.escape import EscapeVcRouting
from repro.routing.ugal import UgalRouting, MinimalDragonflyRouting
from repro.routing.favors import FavorsMinimal, FavorsNonMinimal
from repro.routing.table import UpDownRouting

__all__ = [
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "WestFirstRouting",
    "NorthLastRouting",
    "MinimalAdaptiveRouting",
    "EscapeVcRouting",
    "UgalRouting",
    "MinimalDragonflyRouting",
    "FavorsMinimal",
    "FavorsNonMinimal",
    "UpDownRouting",
]
