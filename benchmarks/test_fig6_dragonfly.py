"""Fig. 6 — dragonfly latency vs injection rate.

Regenerates the latency curves and saturation throughputs for the paper's
dragonfly designs:

* 3-VC pair: UGAL with Dally VC ordering (avoidance baseline) vs UGAL with
  SPIN (no VC-use restriction).  Paper: SPIN wins by 50% (bit complement),
  20% (transpose), 83% (tornado), 25% (neighbor); identical at low load.
* 1-VC pair: FAvORS-NMin vs minimal routing (both deadlock-free via SPIN).
  Paper: FAvORS wins by 78% (tornado) and 62% (bit complement); identical
  for transpose/neighbor; +5% uniform.

Shape assertions check the *ordering* of saturation points; absolute rates
differ from the paper's testbed (see EXPERIMENTS.md).
"""

from repro.harness.runner import latency_curve
from repro.harness.tables import format_table

from benchmarks._common import DRAGONFLY, TDD, run_once, scale, sim_config, write_result

RATES = scale(
    [0.05, 0.10, 0.15, 0.20],
    [0.04, 0.08, 0.12, 0.16, 0.22, 0.30],
    [0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50],
)
PATTERNS = ["uniform", "bit_complement", "tornado", "neighbor"]
DESIGNS_3VC = [("UGAL-Dally 3VC", "dfly:ugal-dally-3vc"),
               ("UGAL-SPIN 3VC", "dfly:ugal-spin-3vc")]
DESIGNS_1VC = [("Minimal-SPIN 1VC", "dfly:minimal-spin-1vc"),
               ("FAvORS-NMin-SPIN 1VC", "dfly:favors-nmin-spin-1vc")]


def run_experiment():
    sim = sim_config()
    results = {}
    lines = []
    for pattern in PATTERNS:
        for label, design in DESIGNS_3VC + DESIGNS_1VC:
            points, saturation = latency_curve(
                design, pattern, RATES, sim, dragonfly=DRAGONFLY, tdd=TDD)
            results[(pattern, label)] = (points, saturation)
            curve = "  ".join(
                f"{p.injection_rate:.2f}->{p.mean_latency:.0f}"
                for p in points)
            lines.append([pattern, label, saturation, curve])
    table = format_table(
        ["Pattern", "Design", "Saturation", "Latency curve (rate->cycles)"],
        lines,
        title="Fig. 6: 1024-node-class dragonfly latency vs injection "
              f"(dragonfly p,a,h={DRAGONFLY})")
    return table, results


def test_fig6(benchmark):
    table, results = run_once(benchmark, run_experiment)
    write_result("fig6_dragonfly", table)

    def sat(pattern, label):
        return results[(pattern, label)][1]

    # SPIN's lifted VC-use restriction never hurts the 3-VC design, and
    # wins under the restriction-sensitive patterns (paper Sec. VI-C).
    for pattern in PATTERNS:
        assert sat(pattern, "UGAL-SPIN 3VC") >= sat(pattern, "UGAL-Dally 3VC")
    assert (sat("neighbor", "UGAL-SPIN 3VC")
            >= sat("neighbor", "UGAL-Dally 3VC"))
    # FAvORS-NMin >= minimal at 1 VC for the adversarial patterns, and at
    # least equal elsewhere (it falls back to minimal routing).
    assert (sat("tornado", "FAvORS-NMin-SPIN 1VC")
            >= sat("tornado", "Minimal-SPIN 1VC"))
    # Low-load latency identical between the 3-VC designs (within 20%).
    for pattern in PATTERNS:
        low_dally = results[(pattern, "UGAL-Dally 3VC")][0][0].mean_latency
        low_spin = results[(pattern, "UGAL-SPIN 3VC")][0][0].mean_latency
        assert abs(low_dally - low_spin) / low_dally < 0.2
