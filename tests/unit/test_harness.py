"""Unit tests for the experiment harness: Table I data, Table III configs."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.configs import (
    ALL_DESIGNS,
    DRAGONFLY_DESIGNS,
    MESH_DESIGNS,
    build_network,
    get_design,
)
from repro.harness.tables import format_table
from repro.harness.theories import TABLE_I, spin_row


class TestTableI:
    def test_five_theories(self):
        assert [row.theory for row in TABLE_I] == [
            "Dally's Theory", "Duato's Theory", "Flow Control",
            "Deflection Routing", "SPIN"]

    def test_spin_row_matches_paper(self):
        row = spin_row()
        assert not row.injection_restrictions
        assert not row.acyclic_cdg_required
        assert not row.topology_dependent
        assert row.vc_fully_adaptive_mesh == 1
        assert row.vc_fully_adaptive_dragonfly == 1
        assert row.livelock_freedom_cost == "None"

    def test_spin_has_least_vc_cost(self):
        spin = spin_row()
        for row in TABLE_I[:-1]:
            if row.vc_fully_adaptive_mesh is not None and row.vc_fully_adaptive_mesh > 0:
                assert spin.vc_fully_adaptive_mesh <= row.vc_fully_adaptive_mesh

    def test_deflection_cannot_do_minimal_deterministic(self):
        deflection = TABLE_I[3]
        assert deflection.vc_min_deterministic_mesh is None

    def test_dally_fully_adaptive_mesh_costs_six(self):
        assert TABLE_I[0].vc_fully_adaptive_mesh == 6


class TestDesignRegistry:
    def test_paper_table3_designs_present(self):
        expected = [
            "dfly:ugal-dally-3vc",      # UGAL, Dally avoidance
            "dfly:minimal-spin-1vc",    # Minimal + SPIN recovery
            "dfly:favors-nmin-spin-1vc",
            "mesh:westfirst-3vc",       # Dally avoidance
            "mesh:escapevc-3vc",        # Duato avoidance
            "mesh:staticbubble-3vc",    # FlowCtrl recovery
            "mesh:favors-min-spin-1vc",
        ]
        for name in expected:
            assert name in ALL_DESIGNS

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigurationError):
            get_design("mesh:nonexistent")

    def test_spin_designs_get_control_plane(self):
        network = build_network("mesh:favors-min-spin-1vc", mesh_side=4)
        assert network.spin is not None

    def test_avoidance_designs_have_no_spin(self):
        network = build_network("mesh:westfirst-3vc", mesh_side=4)
        assert network.spin is None

    def test_static_bubble_gets_its_plane(self):
        from repro.deadlock.static_bubble import StaticBubbleControlPlane

        network = build_network("mesh:staticbubble-3vc", mesh_side=4)
        assert any(isinstance(p, StaticBubbleControlPlane)
                   for p in network.control_planes)

    def test_vc_counts_respected(self):
        network = build_network("mesh:escapevc-2vc", mesh_side=4)
        assert network.config.vcs_per_vnet == 2

    def test_dragonfly_designs_build(self):
        for name in DRAGONFLY_DESIGNS:
            network = build_network(name, dragonfly=(2, 4, 2))
            assert network.topology.name == "dragonfly"

    def test_mesh_designs_build(self):
        for name in MESH_DESIGNS:
            network = build_network(name, mesh_side=4)
            assert network.topology.name == "mesh"

    def test_tdd_override(self):
        network = build_network("mesh:minadaptive-spin-1vc", mesh_side=4,
                                tdd=17)
        assert network.spin.params.tdd == 17


class TestTableFormatting:
    def test_basic_render(self):
        table = format_table(["a", "bee"], [[1, 2.5], [None, True]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.500" in lines[3]
        assert "-" in lines[4] and "yes" in lines[4]

    def test_alignment(self):
        table = format_table(["col"], [["x"], ["longer"]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
