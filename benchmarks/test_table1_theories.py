"""Table I — qualitative comparison of deadlock-freedom theories.

Regenerates the paper's Table I from the property registry and cross-checks
the VC-cost columns against the configuration validation the implemented
algorithms actually enforce.
"""

from repro.config import NetworkConfig
from repro.errors import ConfigurationError
from repro.harness.tables import format_table
from repro.harness.theories import TABLE_I
from repro.network.network import Network
from repro.routing.escape import EscapeVcRouting
from repro.routing.ugal import UgalRouting
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology

from benchmarks._common import run_once, write_result


def regenerate_table():
    headers = [
        "Theory", "Inj. restr.", "Acyclic CDG", "Topo. dep.",
        "Det. mesh", "Det. dfly", "FA mesh", "FA dfly", "Livelock cost",
    ]
    rows = [
        [row.theory, row.injection_restrictions, row.acyclic_cdg_required,
         row.topology_dependent, row.vc_min_deterministic_mesh,
         row.vc_min_deterministic_dragonfly, row.vc_fully_adaptive_mesh,
         row.vc_fully_adaptive_dragonfly, row.livelock_freedom_cost]
        for row in TABLE_I
    ]
    table = format_table(
        headers, rows,
        title="Table I: Comparison of Deadlock Freedom Theories "
              "(VC cost per message class)")

    # Cross-check the claimed minimums against enforced configuration:
    # Duato's escape-VC needs >= 2 VCs on a mesh ...
    try:
        Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                EscapeVcRouting(0))
        raise AssertionError("escape-VC accepted 1 VC")
    except ConfigurationError:
        pass
    # ... UGAL under Dally's theory needs >= 3 on a dragonfly ...
    try:
        Network(DragonflyTopology(2, 4, 2), NetworkConfig(vcs_per_vnet=2),
                UgalRouting(0, vc_discipline=True))
        raise AssertionError("Dally UGAL accepted 2 VCs")
    except ConfigurationError:
        pass
    # ... while SPIN's fully adaptive designs build with a single VC.
    from repro.routing.favors import FavorsNonMinimal

    Network(DragonflyTopology(2, 4, 2), NetworkConfig(vcs_per_vnet=1),
            FavorsNonMinimal(0))
    return table


def test_table1(benchmark):
    table = run_once(benchmark, regenerate_table)
    write_result("table1_theories", table)
    assert "SPIN" in table
