"""Named design configurations (paper Table III).

Each :class:`DesignConfig` bundles a topology, routing algorithm, VC count
and control planes into a reproducible factory.  The registry names follow
``<topology>:<design>-<vcs>vc`` and cover every design point of the paper's
evaluation plus the no-recovery variants used by Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import NetworkConfig, SpinParams
from repro.deadlock.static_bubble import (
    StaticBubbleControlPlane,
    StaticBubbleRouting,
)
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.escape import EscapeVcRouting
from repro.routing.favors import FavorsMinimal, FavorsNonMinimal
from repro.routing.turn_model import WestFirstRouting
from repro.routing.ugal import MinimalDragonflyRouting, UgalRouting
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.mesh import MeshTopology

#: Default mesh side (the paper's 8x8).
MESH_SIDE = 8
#: Default dragonfly parameters.  The paper's "1024-node" dragonfly is the
#: balanced p=4, a=8, h=4 (33 groups, 1056 terminals); benchmarks default to
#: a reduced instance for pure-Python tractability (DESIGN.md note 4) and
#: accept these parameters explicitly for full-size runs.
DRAGONFLY_FULL = (4, 8, 4)
DRAGONFLY_SMALL = (2, 4, 2)


@dataclass(frozen=True)
class DesignConfig:
    """A reproducible network design point.

    Attributes:
        name: Registry key.
        topology: "mesh" or "dragonfly".
        routing_factory: ``seed -> RoutingAlgorithm``.
        vcs_per_vnet: VCs per message class.
        spin: Whether the SPIN control plane is attached.
        control_plane_factories: Extra control planes (e.g. Static Bubble).
        theory: Deadlock-freedom theory (Table III column).
        scheme: "avoidance" or "recovery" (or "none" for Fig. 3 variants).
        adaptive: Routing adaptivity label.
        tdd: Detection threshold when SPIN (or a timeout plane) is present.
    """

    name: str
    topology: str
    routing_factory: Callable[[int], object]
    vcs_per_vnet: int
    spin: bool
    theory: str
    scheme: str
    adaptive: str
    control_plane_factories: Tuple[Callable[[int], object], ...] = ()
    tdd: int = 128


def _mesh_designs() -> Dict[str, DesignConfig]:
    designs = {}

    def add(name, routing_factory, vcs, spin, theory, scheme, adaptive,
            planes=()):
        designs[name] = DesignConfig(
            name=name, topology="mesh", routing_factory=routing_factory,
            vcs_per_vnet=vcs, spin=spin, theory=theory, scheme=scheme,
            adaptive=adaptive, control_plane_factories=planes)

    for vcs in (1, 2, 3):
        add(f"mesh:westfirst-{vcs}vc", lambda seed: WestFirstRouting(seed),
            vcs, False, "Dally", "avoidance", "partial")
    for vcs in (2, 3):
        add(f"mesh:escapevc-{vcs}vc", lambda seed: EscapeVcRouting(seed),
            vcs, False, "Duato", "avoidance", "full")
        add(f"mesh:staticbubble-{vcs}vc",
            lambda seed: StaticBubbleRouting(seed),
            vcs, False, "FlowCtrl", "recovery", "full",
            planes=(lambda tdd: StaticBubbleControlPlane(tdd),))
        add(f"mesh:minadaptive-spin-{vcs}vc",
            lambda seed: MinimalAdaptiveRouting(seed),
            vcs, True, "SPIN", "recovery", "full")
    add("mesh:favors-min-spin-1vc", lambda seed: FavorsMinimal(seed),
        1, True, "SPIN", "recovery", "full")
    add("mesh:favors-nmin-spin-1vc", lambda seed: FavorsNonMinimal(seed),
        1, True, "SPIN", "recovery", "full")
    add("mesh:minadaptive-spin-1vc", lambda seed: MinimalAdaptiveRouting(seed),
        1, True, "SPIN", "recovery", "full")
    # No-recovery variants: used by Fig. 3 (deadlock occurrence) and the
    # "deadlocks really wedge the network" demonstrations.
    for vcs in (1, 3):
        add(f"mesh:minadaptive-nospin-{vcs}vc",
            lambda seed: MinimalAdaptiveRouting(seed),
            vcs, False, "none", "none", "full")
    return designs


def _dragonfly_designs() -> Dict[str, DesignConfig]:
    designs = {}

    def add(name, routing_factory, vcs, spin, theory, scheme, adaptive):
        designs[name] = DesignConfig(
            name=name, topology="dragonfly", routing_factory=routing_factory,
            vcs_per_vnet=vcs, spin=spin, theory=theory, scheme=scheme,
            adaptive=adaptive)

    add("dfly:ugal-dally-3vc",
        lambda seed: UgalRouting(seed, vc_discipline=True),
        3, False, "Dally", "avoidance", "full")
    add("dfly:ugal-spin-3vc",
        lambda seed: UgalRouting(seed, vc_discipline=False),
        3, True, "SPIN", "recovery", "full")
    add("dfly:minimal-spin-1vc",
        lambda seed: MinimalDragonflyRouting(seed),
        1, True, "SPIN", "recovery", "none")
    add("dfly:favors-nmin-spin-1vc",
        lambda seed: FavorsNonMinimal(seed),
        1, True, "SPIN", "recovery", "full")
    add("dfly:minimal-spin-3vc",
        lambda seed: MinimalDragonflyRouting(seed),
        3, True, "SPIN", "recovery", "none")
    # Fig. 3 variant: unrestricted UGAL without recovery.
    add("dfly:ugal-nospin-3vc",
        lambda seed: UgalRouting(seed, vc_discipline=False),
        3, False, "none", "none", "full")
    add("dfly:minimal-nospin-1vc",
        lambda seed: MinimalDragonflyRouting(seed),
        1, False, "none", "none", "none")
    return designs


MESH_DESIGNS: Dict[str, DesignConfig] = _mesh_designs()
DRAGONFLY_DESIGNS: Dict[str, DesignConfig] = _dragonfly_designs()
ALL_DESIGNS: Dict[str, DesignConfig] = {**MESH_DESIGNS, **DRAGONFLY_DESIGNS}

#: Convenience aliases for the headline design points (shorthand accepted
#: anywhere a registry name is: CLI ``--design``, :func:`get_design`).
DESIGN_ALIASES: Dict[str, str] = {
    "spin_mesh": "mesh:minadaptive-spin-1vc",
    "spin_dragonfly": "dfly:minimal-spin-1vc",
}


def resolve_design_name(name: str) -> str:
    """Canonical registry name for a design (aliases resolved).

    Raises :class:`~repro.errors.ConfigurationError` for unknown names, so
    a declarative :class:`~repro.harness.runner.ExperimentSpec` fails at
    construction — before any worker process is spawned — and serialized
    specs/results always carry the canonical name rather than an alias.
    """
    resolved = DESIGN_ALIASES.get(name, name)
    if resolved not in ALL_DESIGNS:
        raise ConfigurationError(
            f"unknown design {name!r}; known: {sorted(ALL_DESIGNS)} "
            f"(aliases: {sorted(DESIGN_ALIASES)})")
    return resolved


def get_design(name: str) -> DesignConfig:
    """Look up a design by registry name (aliases accepted)."""
    return ALL_DESIGNS[resolve_design_name(name)]


def build_network(design, seed: int = 1, mesh_side: int = MESH_SIDE,
                  dragonfly: Tuple[int, int, int] = DRAGONFLY_SMALL,
                  num_vnets: int = 1, tdd: Optional[int] = None,
                  spin_params: Optional[SpinParams] = None) -> Network:
    """Instantiate a network for a design point.

    Args:
        design: A :class:`DesignConfig` or registry name.
        seed: Seed shared by network and routing RNGs.
        mesh_side: Mesh dimension (paper: 8).
        dragonfly: (p, a, h) parameters (paper: (4, 8, 4)).
        num_vnets: Message classes (1 for synthetic, 3 for PARSEC proxy).
        tdd: Detection threshold override.
        spin_params: Full SPIN parameter override (implies design.spin).
    """
    if isinstance(design, str):
        design = get_design(design)
    if design.topology == "mesh":
        topology = MeshTopology(mesh_side, mesh_side)
    elif design.topology == "dragonfly":
        p, a, h = dragonfly
        topology = DragonflyTopology(p, a, h)
    else:
        raise ConfigurationError(f"unknown topology {design.topology!r}")
    config = NetworkConfig(vcs_per_vnet=design.vcs_per_vnet,
                           num_vnets=num_vnets)
    effective_tdd = tdd if tdd is not None else design.tdd
    spin = spin_params
    if spin is None and design.spin:
        spin = SpinParams(tdd=effective_tdd)
    planes = tuple(factory(effective_tdd)
                   for factory in design.control_plane_factories)
    return Network(
        topology=topology,
        config=config,
        routing=design.routing_factory(seed),
        spin=spin,
        control_planes=planes,
        seed=seed,
    )
