"""Phase profiler: zero perturbation, phase coverage, fast-core counters.

The contract (docs/OBSERVE.md): attaching a
:class:`~repro.sim.profile.PhaseProfiler` never changes the simulated
point — the schedule is only wrapped at build time when a profiler is
attached, and the fast-core skip counters hide behind ``is not None``
guards on already-expensive paths.
"""

import json

import pytest

from repro.config import SimulationConfig
from repro.harness.runner import ExperimentSpec
from repro.sim import PROFILE_ENV, PROFILE_SCHEMA, PhaseProfiler
from repro.sim.profile import (
    profiler_from_env,
    render_report,
    summary_line,
    write_report,
)

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200,
                        drain_cycles=150, deadlock_abort_cycles=300)

#: A design on the fast core's whitelist (stock minimal-adaptive routing).
FAST_OK_DESIGN = "mesh:minadaptive-spin-1vc"


def tiny_spec(engine="", design=FAST_OK_DESIGN, rate=0.1):
    return ExperimentSpec(design=design, pattern="uniform",
                          injection_rate=rate, mesh_side=4, sim=TINY,
                          engine=engine)


PHASES = {"deliver", "control", "inject", "allocate", "collect"}


class TestPhaseCoverage:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_all_phases_timed_every_cycle(self, engine):
        profiler = PhaseProfiler()
        _, point = tiny_spec(engine).run(profiler=profiler)
        assert set(profiler.phase_seconds) == PHASES
        # Fast-forwarded quiescent cycles never enter the phase loop, so
        # the fast engine legitimately times fewer calls than cycles.
        expected = point.cycles - profiler.counters.get(
            "cycles_fast_forwarded", 0)
        for phase in PHASES:
            assert profiler.phase_calls[phase] == expected
            assert profiler.phase_seconds[phase] >= 0.0

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_report_shape_and_shares(self, engine):
        profiler = PhaseProfiler()
        _, point = tiny_spec(engine).run(profiler=profiler)
        report = profiler.report(engine, point.cycles, wall_seconds=1.0)
        assert report["schema"] == PROFILE_SCHEMA
        assert report["engine"] == engine
        assert report["cycles"] == point.cycles
        assert set(report["phases"]) == PHASES
        shares = sum(entry["share"] for entry in report["phases"].values())
        assert shares == pytest.approx(1.0, abs=0.01)

    def test_render_and_summary_are_printable(self):
        profiler = PhaseProfiler()
        _, point = tiny_spec("fast").run(profiler=profiler)
        report = profiler.report("fast", point.cycles)
        text = render_report(report)
        assert "allocate" in text and "share" in text
        line = summary_line(report)
        assert line.startswith("[profile]")
        assert "engine=fast" in line


class TestNoPerturbation:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_profiled_point_identical(self, engine):
        _, bare = tiny_spec(engine).run()
        _, profiled = tiny_spec(engine).run(profiler=PhaseProfiler())
        assert bare == profiled

    def test_engines_agree_under_profiling(self):
        _, reference = tiny_spec("reference").run(profiler=PhaseProfiler())
        _, fast = tiny_spec("fast").run(profiler=PhaseProfiler())
        assert reference == fast


class TestFastCoreCounters:
    def test_skip_counters_recorded(self, monkeypatch):
        # An env-attached oracle observer disables quiescence fast-forward
        # (by design); this test is about the skip counters, so pin the
        # observer-free regime.
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        profiler = PhaseProfiler()
        _, point = tiny_spec("fast").run(profiler=profiler)
        counters = profiler.counters
        # The run covers both regimes: busy cycles that tick routers and
        # quiescent stretches the event core skips or fast-forwards.
        assert counters["router_cycles_run"] > 0
        assert counters["router_cycles_skipped"] > 0
        assert counters["cycles_fast_forwarded"] > 0
        assert counters["controller_ticks_skipped"] > 0
        run = counters.get("alloc_cycles_run", 0)
        skipped = counters.get("alloc_cycles_skipped", 0)
        assert run + skipped + counters["cycles_fast_forwarded"] \
            == point.cycles

    def test_reference_engine_has_no_fast_counters(self):
        profiler = PhaseProfiler()
        tiny_spec("reference").run(profiler=profiler)
        assert profiler.counters == {}

    def test_counters_in_report(self):
        profiler = PhaseProfiler()
        _, point = tiny_spec("fast").run(profiler=profiler)
        report = profiler.report("fast", point.cycles)
        assert report["counters"] == dict(profiler.counters)


class TestEnvActivation:
    def test_falsey_values_disable(self):
        for value in ("", "0", "off", "false", "no"):
            assert profiler_from_env({PROFILE_ENV: value}) is None
        assert profiler_from_env({}) is None

    def test_truthy_value_enables(self):
        assert isinstance(profiler_from_env({PROFILE_ENV: "1"}),
                          PhaseProfiler)

    def test_env_profiler_emits_summary_to_stderr(self, monkeypatch,
                                                  capsys):
        monkeypatch.setenv(PROFILE_ENV, "1")
        _, point = tiny_spec("reference").run()
        err = capsys.readouterr().err
        assert "[profile]" in err
        assert "engine=reference" in err

    def test_env_profiler_does_not_perturb(self, monkeypatch):
        _, bare = tiny_spec("reference").run()
        monkeypatch.setenv(PROFILE_ENV, "1")
        _, profiled = tiny_spec("reference").run()
        assert bare == profiled


class TestWriteReport:
    def test_write_report_roundtrip(self, tmp_path):
        profiler = PhaseProfiler()
        _, point = tiny_spec("fast").run(profiler=profiler)
        report = profiler.report("fast", point.cycles)
        path = tmp_path / "profile.json"
        write_report(path, report)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(report))
