"""Differential conformance: SPIN vs Static Bubble vs escape-VC agree.

The acceptance gate of the conformance harness: on seeded sub-saturation
loads, all three deadlock-freedom theories deliver the identical multiset
of packets with identical deadlock verdicts and zero invariant
violations.  Disagreement output is self-describing via
``DifferentialReport.summary()``.
"""

import json

import pytest

from repro.config import SimulationConfig
from repro.verify.differential import (
    DEFAULT_TRIAD,
    run_conformance,
)

# Full delivery needs a drain window generous enough for the slowest
# scheme; keep the measure window modest so three designs x three seeds
# stay fast.
SIM = SimulationConfig(warmup_cycles=150, measure_cycles=450,
                       drain_cycles=2000, deadlock_abort_cycles=1200)


class TestTriadAgreement:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_uniform_triad_agrees(self, seed, engine):
        report = run_conformance(pattern="uniform", injection_rate=0.10,
                                 seed=seed, sim=SIM, engine=engine)
        assert report.agreed, report.summary()
        assert len(report.results) == len(DEFAULT_TRIAD)
        reference = report.results[0]
        assert sum(reference.delivered.values()) > 0
        for result in report.results:
            assert result.violations == 0
            assert not result.wedged
            assert result.delivered == reference.delivered

    @pytest.mark.parametrize("seed", [1, 2])
    def test_engines_bit_identical_across_triad(self, seed):
        """Reference and fast engines agree on every SweepPoint field —
        the cross-engine axis of the differential harness."""
        by_engine = {
            engine: run_conformance(pattern="uniform", injection_rate=0.10,
                                    seed=seed, sim=SIM, engine=engine)
            for engine in ("reference", "fast")
        }
        ref, fast = by_engine["reference"], by_engine["fast"]
        for ref_result, fast_result in zip(ref.results, fast.results):
            assert ref_result.design == fast_result.design
            assert ref_result.point.to_dict() == fast_result.point.to_dict()
            assert ref_result.delivered == fast_result.delivered

    def test_transpose_triad_agrees(self):
        report = run_conformance(pattern="transpose", injection_rate=0.08,
                                 seed=4, sim=SIM)
        assert report.agreed, report.summary()

    def test_report_serializes(self):
        report = run_conformance(injection_rate=0.08, seed=5, sim=SIM)
        payload = report.to_dict()
        # The whole report must be JSON-serializable for `--output`.
        text = json.dumps(payload, sort_keys=True)
        back = json.loads(text)
        assert back["agreed"] == report.agreed
        assert [r["design"] for r in back["results"]] == list(DEFAULT_TRIAD)


class TestCliVerify:
    def test_cli_verify_exits_zero_and_writes_report(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        out = tmp_path / "conformance.json"
        code = main(["verify", "--rate", "0.08", "--seeds", "6",
                     "--output", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "AGREED" in captured
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro.verify-conformance/v1"
        assert payload["agreed"] is True
        assert len(payload["reports"]) == 1

    def test_cli_verify_rejects_bad_rate(self):
        from repro.cli import main
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="offered load"):
            main(["verify", "--rate", "1.5"])
        with pytest.raises(ConfigurationError, match="at least two"):
            main(["verify", "--designs", "mesh:escapevc-2vc"])
        with pytest.raises(ConfigurationError, match="--seeds"):
            main(["verify", "--seeds", "-1"])
