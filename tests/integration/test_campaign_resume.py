"""Chaos suite: kill -9 / Ctrl-C a live campaign, resume, demand bytes.

The acceptance property behind docs/CAMPAIGNS.md: a ``cli sweep`` campaign
SIGKILLed at an arbitrary point and re-run with ``--resume`` produces a
``repro.sweep-results/v1`` artifact **byte-identical** to an uninterrupted
run.  Five seeds pick five different kill points; every one must converge.

These tests drive the real CLI in subprocesses (signals and kill -9 are
process-level facts), so they carry the ``chaos`` marker and a dedicated
CI job runs them (``pytest -m chaos``).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.campaign import CampaignJournal

pytestmark = pytest.mark.chaos

RATES = "0.01,0.02,0.03,0.04,0.05,0.06,0.07,0.08"
NUM_POINTS = 8
SRC = Path(__file__).resolve().parents[2] / "src"


def sweep_args(campaign: Path, output: Path, jobs: int):
    return [sys.executable, "-m", "repro.cli", "sweep",
            "--design", "spin_mesh", "--pattern", "uniform",
            "--rates", RATES, "--mesh-side", "4", "--tdd", "32",
            "--warmup", "50", "--measure", "400", "--drain", "200",
            "--abort-cycles", "300", "--jobs", str(jobs),
            "--campaign", str(campaign), "--output", str(output)]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    return env


def run_cli(args, timeout=180):
    return subprocess.run(args, env=cli_env(), stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True,
                          timeout=timeout)


def start_and_signal(args, journal: Path, lines: int, signum,
                     deadline_seconds=120):
    """Start a sweep, wait for ``lines`` journaled points, hit it."""
    proc = subprocess.Popen(args, env=cli_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + deadline_seconds
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before the kill point: nothing to signal
            if (journal.exists()
                    and journal.read_bytes().count(b"\n") >= lines):
                proc.send_signal(signum)
                break
            time.sleep(0.002)
        else:
            pytest.fail(f"campaign never journaled {lines} points")
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return proc.returncode


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One uninterrupted --jobs 4 campaign: the reference artifact."""
    root = tmp_path_factory.mktemp("golden")
    output = root / "out.json"
    completed = run_cli(sweep_args(root / "camp", output, jobs=4))
    assert completed.returncode == 0, completed.stdout
    return output.read_bytes()


class TestKillResumeByteIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_sigkill_then_resume_matches_golden(self, seed, tmp_path,
                                                golden):
        # Each seed picks a different kill point across the campaign.
        kill_after = 1 + (seed * 3) % (NUM_POINTS - 1)
        campaign, output = tmp_path / "camp", tmp_path / "out.json"
        rc = start_and_signal(
            sweep_args(campaign, output, jobs=4),
            campaign / "journal.jsonl", kill_after, signal.SIGKILL)
        # kill -9 if we caught it in flight; 0 if it won the race.
        assert rc in (-signal.SIGKILL, 0)
        # The fsync'd journal must load cleanly (at worst a torn tail).
        records, torn = CampaignJournal(campaign).load()
        assert torn in (0, 1)
        assert all(r["status"] == "ok" for r in records)
        resumed = run_cli([sys.executable, "-m", "repro.cli", "sweep",
                           "--resume", str(campaign)])
        assert resumed.returncode == 0, resumed.stdout
        assert output.read_bytes() == golden

    def test_sigkill_then_resume_jobs1_matches_golden(self, tmp_path,
                                                      golden):
        campaign, output = tmp_path / "camp", tmp_path / "out.json"
        rc = start_and_signal(
            sweep_args(campaign, output, jobs=1),
            campaign / "journal.jsonl", 3, signal.SIGKILL)
        assert rc in (-signal.SIGKILL, 0)
        resumed = run_cli([sys.executable, "-m", "repro.cli", "sweep",
                           "--resume", str(campaign), "--jobs", "1"])
        assert resumed.returncode == 0, resumed.stdout
        assert output.read_bytes() == golden


class TestSigintDrain:
    def test_sigint_exits_130_with_resumable_journal(self, tmp_path,
                                                     golden):
        campaign, output = tmp_path / "camp", tmp_path / "out.json"
        rc = start_and_signal(
            sweep_args(campaign, output, jobs=2),
            campaign / "journal.jsonl", 2, signal.SIGINT)
        # Drained gracefully (128 + SIGINT), unless it won the race.
        assert rc in (128 + signal.SIGINT, 0)
        records, torn = CampaignJournal(campaign).load()
        assert torn == 0  # a drain closes the journal cleanly
        assert all(r["status"] == "ok" for r in records)
        resumed = run_cli([sys.executable, "-m", "repro.cli", "sweep",
                           "--resume", str(campaign)])
        assert resumed.returncode == 0, resumed.stdout
        assert output.read_bytes() == golden


class TestChaosWorkerFailures:
    def test_crashing_workers_still_converge_to_golden(self, tmp_path,
                                                       golden):
        """Every point's first attempt dies; retries rebuild the artifact."""
        campaign, output = tmp_path / "camp", tmp_path / "out.json"
        env = cli_env()
        env["REPRO_CHAOS"] = "crash:p=0.6,seed=13"
        completed = subprocess.run(
            sweep_args(campaign, output, jobs=4), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=180)
        assert completed.returncode == 0, completed.stdout
        assert "workers_respawned" in completed.stdout
        assert output.read_bytes() == golden
