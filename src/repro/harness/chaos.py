"""Chaos harness: seeded adversity for the campaign durability layer.

The paper's claim is that SPIN keeps the *fabric* making progress under
arbitrary interleavings; this module applies the same philosophy to our own
experiment harness.  It injects the failure modes a production sweep
actually meets — worker processes dying outright, workers hanging forever,
journal writes torn mid-record, whole campaigns SIGKILLed — so the chaos
test suite (``pytest -m chaos``) can *prove* that a resumed campaign
converges to the byte-identical artifact of an uninterrupted run.

Injection is **deterministic**: every decision is a pure function of
``(chaos seed, spec content key, attempt, mode)`` via a stable SHA-256
draw, never of wall-clock time or pool scheduling.  The same chaos spec
therefore reproduces the same failure pattern on every run, which is what
makes chaos failures debuggable rather than flaky.

Workers pick the policy up from the ``REPRO_CHAOS`` environment variable
(see :func:`chaos_from_env`), so chaos reaches across the process boundary
without widening any API.  The grammar mirrors docs/FAULTS.md::

    REPRO_CHAOS="crash:p=0.5,seed=7"        # half of all first attempts die
    REPRO_CHAOS="hang:p=1.0,hang=2.5"       # every first attempt hangs 2.5s
    REPRO_CHAOS="fail@1:p=0.25"             # a quarter of *second* attempts
    REPRO_CHAOS="crash@*:p=1.0"             # every attempt crashes (budget
                                            # exhaustion paths)

Modes:

* ``crash`` — ``os._exit`` without cleanup: the OOM-kill / segfault model.
* ``hang``  — sleep far past any heartbeat: the wedged-worker model.
* ``fail``  — raise a normal exception: the deterministic-bug model (it
  classifies as non-retryable, unlike the two above).

By default a rule fires on attempt 0 only, so bounded retries are expected
to succeed — the property most chaos tests assert.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError

#: Environment variable the worker-side injection hook reads.
CHAOS_ENV = "REPRO_CHAOS"

#: Recognized injection modes.
CHAOS_MODES = ("crash", "hang", "fail")

#: Exit status a chaos-crashed worker dies with (distinctive in ps/waitpid).
CRASH_EXIT_CODE = 96


def _unit_draw(token: str) -> float:
    """Uniform [0, 1) derived from a stable digest of ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule: a mode, a probability, and a target attempt.

    Attributes:
        mode: One of :data:`CHAOS_MODES`.
        p: Probability the rule fires for a given spec (per the seeded
            draw); 1.0 fires for every spec.
        attempt: Attempt index the rule applies to (0 = first try), or
            ``None`` for every attempt.
    """

    mode: str
    p: float = 1.0
    attempt: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ConfigurationError(f"unknown chaos mode {self.mode!r}",
                                     known=list(CHAOS_MODES))
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError("chaos probability must be in [0, 1]",
                                     p=self.p)
        if self.attempt is not None and self.attempt < 0:
            raise ConfigurationError("chaos attempt must be >= 0",
                                     attempt=self.attempt)


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded set of rules plus the hang duration."""

    rules: Tuple[ChaosRule, ...]
    seed: int = 0
    hang_seconds: float = 3600.0

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The mode to inject for ``(spec key, attempt)``, or ``None``.

        Pure function of the policy and its arguments — no RNG state, no
        clock — so the same campaign replays the same chaos.
        """
        for rule in self.rules:
            if rule.attempt is not None and rule.attempt != attempt:
                continue
            if _unit_draw(f"{self.seed}:{key}:{rule.mode}") < rule.p:
                return rule.mode
        return None

    def inject(self, key: str, attempt: int) -> None:
        """Apply the decided failure, if any, in the calling process.

        ``crash`` never returns; ``hang`` sleeps :attr:`hang_seconds`
        (long enough to trip any reasonable heartbeat timeout); ``fail``
        raises a plain :class:`RuntimeError` so it classifies as a
        deterministic (non-retryable) spec failure.
        """
        mode = self.decide(key, attempt)
        if mode is None:
            return
        if mode == "crash":
            os._exit(CRASH_EXIT_CODE)
        if mode == "hang":
            time.sleep(self.hang_seconds)
            return
        raise RuntimeError(
            f"chaos: injected deterministic failure (key={key}, "
            f"attempt={attempt})")


def parse_chaos_spec(text: str) -> ChaosPolicy:
    """Parse the ``REPRO_CHAOS`` grammar into a :class:`ChaosPolicy`.

    Comma-separated tokens; each is either a rule ``mode[@attempt][:p=P]``
    (``@*`` targets every attempt) or a setting ``seed=N`` / ``hang=S``.
    """
    rules = []
    seed = 0
    hang_seconds = 3600.0
    for token in filter(None, (part.strip() for part in text.split(","))):
        if token.startswith("seed="):
            try:
                seed = int(token[len("seed="):])
            except ValueError:
                raise ConfigurationError("chaos seed must be an integer",
                                         token=token) from None
            continue
        if token.startswith("hang="):
            try:
                hang_seconds = float(token[len("hang="):])
            except ValueError:
                raise ConfigurationError("chaos hang must be seconds",
                                         token=token) from None
            continue
        head, _, tail = token.partition(":")
        p = 1.0
        if tail:
            if not tail.startswith("p="):
                raise ConfigurationError(
                    "chaos rule options must look like ':p=0.5'",
                    token=token)
            try:
                p = float(tail[len("p="):])
            except ValueError:
                raise ConfigurationError("chaos probability must be a float",
                                         token=token) from None
        mode, _, attempt_text = head.partition("@")
        attempt: Optional[int] = 0
        if attempt_text == "*":
            attempt = None
        elif attempt_text:
            try:
                attempt = int(attempt_text)
            except ValueError:
                raise ConfigurationError(
                    "chaos attempt must be an integer or '*'",
                    token=token) from None
        rules.append(ChaosRule(mode=mode, p=p, attempt=attempt))
    if not rules:
        raise ConfigurationError("chaos spec names no rules", spec=text)
    return ChaosPolicy(rules=tuple(rules), seed=seed,
                       hang_seconds=hang_seconds)


def chaos_from_env() -> Optional[ChaosPolicy]:
    """The policy named by :data:`CHAOS_ENV`, or ``None`` when unset."""
    text = os.environ.get(CHAOS_ENV)
    if not text:
        return None
    return parse_chaos_spec(text)


def tear_journal_tail(path: Union[str, Path]) -> int:
    """Corrupt a journal the way a crash mid-``write`` does: tear the tail.

    Truncates the file halfway into its final record, leaving every earlier
    line intact — exactly the state an fsync'd append-only journal is left
    in when the process dies between ``write`` and completion.  Returns the
    number of bytes removed.  Test helper for the torn-write chaos family.
    """
    path = Path(path)
    raw = path.read_bytes()
    if not raw:
        return 0
    body = raw[:-1] if raw.endswith(b"\n") else raw
    cut = body.rfind(b"\n") + 1  # start of the final record (0 if only one)
    tail = len(raw) - cut
    keep = cut + max(0, tail // 2)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return len(raw) - keep
