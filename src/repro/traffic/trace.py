"""Packet-trace recording and replay.

Traces decouple workload generation from simulation: the same packet
sequence can be replayed against different router configurations (the
methodology behind apples-to-apples comparisons such as Fig. 8a), and they
make failures reproducible in tests.

The on-disk format is one JSON object per line.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.network.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One packet-creation event."""

    cycle: int
    src: int
    dst: int
    length: int
    vnet: int = 0
    reply_length: int = 0


def save_trace(records: Iterable[TraceRecord], path: str) -> None:
    """Write a trace as JSON lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record)) + "\n")


def load_trace(path: str) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(TraceRecord(**json.loads(line)))
    return records


def record_from_traffic(network, source, cycles: int) -> List[TraceRecord]:
    """Capture the creation events a traffic source would produce.

    Runs the source against the network's NIC queues for ``cycles`` cycles
    *without simulating the network* and drains the queues into trace
    records.  Useful for building reusable workloads from the synthetic
    generators.
    """
    records = []
    for cycle in range(cycles):
        source.phase_inject(cycle)
        for nic in network.nics:
            for queue in nic.queues:
                while queue:
                    packet = queue.popleft()
                    records.append(TraceRecord(
                        cycle=cycle, src=packet.src_node, dst=packet.dst_node,
                        length=packet.length, vnet=packet.vnet,
                        reply_length=packet.reply_length))
    return records


class TraceTraffic:
    """Simulator component replaying a recorded trace."""

    def __init__(self, network, records: List[TraceRecord],
                 repeat: bool = False) -> None:
        self.network = network
        self.records = sorted(records, key=lambda r: r.cycle)
        self.repeat = repeat
        self._cursor = 0
        self._cycle_offset = 0
        if any(r.src >= network.topology.num_nodes
               or r.dst >= network.topology.num_nodes for r in self.records):
            raise ConfigurationError("trace references nodes beyond topology")

    def phase_inject(self, cycle: int) -> None:
        records = self.records
        if not records:
            return
        while self._cursor < len(records):
            record = records[self._cursor]
            when = record.cycle + self._cycle_offset
            if when > cycle:
                return
            self._emit(record, cycle)
            self._cursor += 1
        if self.repeat and self._cursor >= len(records):
            self._cursor = 0
            self._cycle_offset = cycle + 1

    def _emit(self, record: TraceRecord, cycle: int) -> None:
        network = self.network
        packet = Packet(
            src_node=record.src,
            dst_node=record.dst,
            src_router=network.topology.router_of_node(record.src),
            dst_router=network.topology.router_of_node(record.dst),
            length=record.length,
            vnet=record.vnet,
            create_cycle=cycle,
        )
        packet.reply_length = record.reply_length
        network.stats.record_creation(packet, cycle)
        network.nics[record.src].enqueue(packet)
